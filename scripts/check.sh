#!/usr/bin/env bash
# Fast-suite CI gate: build with ThreadSanitizer and run the tier-1 tests
# (unit tests + exp_smoke + bench_smoke + dispatch_smoke). TSan exercises
# the src/exp thread pool, the runner's in-order JSONL emission, and the
# dispatcher's heartbeat thread + in-process ledger races
# (test_job_ledger); dispatch_smoke additionally fault-injects a SIGKILL
# into a 4-worker sweep. The tier1 label keeps this loop fast enough to
# run on every change.
#
# Usage: scripts/check.sh [-L label] [--perf] [build-dir]
#   -L label    ctest label to run (default: tier1)
#   --perf      additionally build Release (no sanitizer) in build-perf,
#               run the micro benchmark suite, and gate the result against
#               bench/baselines/ via scripts/perf_gate.py. Opt-in because
#               perf numbers are only meaningful on a quiet machine.
#   build-dir   sanitizer build directory (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="tier1"
RUN_PERF=0
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    -L) LABEL="$2"; shift 2 ;;
    --perf) RUN_PERF=1; shift ;;
    -h|--help) grep '^# ' "$0" | sed 's/^# //'; exit 0 ;;
    *) BUILD_DIR="$1"; shift ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCEBINAE_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$JOBS"
echo "+ ctest --test-dir $BUILD_DIR -L $LABEL --output-on-failure -j $JOBS"
ctest --test-dir "$BUILD_DIR" -L "$LABEL" --output-on-failure -j "$JOBS"

if [[ "$RUN_PERF" -eq 1 ]]; then
  PERF_DIR="build-perf"
  cmake -B "$PERF_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$PERF_DIR" -j "$JOBS" --target cebinae_bench
  "./$PERF_DIR/bench/cebinae_bench" --experiment=micro --full --trials=3 \
      --perf-out="$PERF_DIR/BENCH_micro.json"
  python3 scripts/perf_gate.py "$PERF_DIR/BENCH_micro.json"
fi
