#!/usr/bin/env bash
# Fast-suite CI gate: build with ThreadSanitizer and run the tier-1 tests
# (unit tests + exp_smoke + bench_smoke + dispatch_smoke). TSan exercises
# the src/exp thread pool, the runner's in-order JSONL emission, and the
# dispatcher's heartbeat thread + in-process ledger races
# (test_job_ledger); dispatch_smoke additionally fault-injects a SIGKILL
# into a 4-worker sweep. The tier1 label keeps this loop fast enough to
# run on every change.
#
# Usage: scripts/check.sh [build-dir]   (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCEBINAE_SANITIZE=thread
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$JOBS"
