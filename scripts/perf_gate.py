#!/usr/bin/env python3
"""Perf-regression gate for the micro benchmark suite.

Compares a freshly measured ``BENCH_micro.json`` (written by
``cebinae_bench --experiment=micro --full --trials=3 --perf-out=...``)
against the checked-in baseline in ``bench/baselines/``. Only throughput
metrics (``*_per_sec``) are gated: a drop beyond --fail-pct fails the run,
a drop beyond --warn-pct warns. Deterministic companion metrics (event
counts, goodput checksums) are reported when they drift but never gate —
they are covered byte-for-byte by bench_smoke instead.

Baselines are machine-specific. After an intentional perf change (or on a
new CI runner class), regenerate with::

    ./build/bench/cebinae_bench --experiment=micro --full --trials=3 \
        --perf-out=/tmp/BENCH_micro.json
    scripts/perf_gate.py /tmp/BENCH_micro.json --update

Exit status: 0 ok (including warnings), 1 regression past --fail-pct,
2 usage/format error.
"""

import argparse
import json
import pathlib
import shutil
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "bench" / "baselines" / "BENCH_micro.json"

GATED_SUFFIX = "_per_sec"


def load_metrics(path: pathlib.Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"perf_gate: cannot read {path}: {exc}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"perf_gate: {path} has no 'metrics' object "
                 "(was it written with --perf-out by the micro experiment?)")
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", type=pathlib.Path,
                        help="freshly measured BENCH_micro.json")
    parser.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    parser.add_argument("--fail-pct", type=float, default=15.0,
                        help="fail when a *_per_sec metric drops more than this")
    parser.add_argument("--warn-pct", type=float, default=5.0,
                        help="warn when a *_per_sec metric drops more than this")
    parser.add_argument("--update", action="store_true",
                        help="install `fresh` as the new baseline and exit")
    args = parser.parse_args()

    fresh = load_metrics(args.fresh)

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.fresh, args.baseline)
        print(f"perf_gate: baseline updated: {args.baseline}")
        return 0

    baseline = load_metrics(args.baseline)

    failures, warnings = [], []
    for key in sorted(baseline):
        base = baseline[key]
        cur = fresh.get(key)
        if cur is None:
            failures.append(f"{key}: missing from fresh run")
            continue
        if not key.endswith(GATED_SUFFIX):
            if base and abs(cur - base) / abs(base) > 1e-9:
                print(f"  note  {key}: {base:g} -> {cur:g} (informational)")
            continue
        delta_pct = (cur - base) / base * 100.0 if base else 0.0
        line = f"{key}: {base:,.0f} -> {cur:,.0f} events/s ({delta_pct:+.1f}%)"
        if delta_pct < -args.fail_pct:
            failures.append(line)
            print(f"  FAIL  {line}")
        elif delta_pct < -args.warn_pct:
            warnings.append(line)
            print(f"  warn  {line}")
        else:
            print(f"  ok    {line}")

    for key in sorted(set(fresh) - set(baseline)):
        print(f"  note  {key}: new metric (not in baseline); "
              "run --update to start tracking it")

    if failures:
        print(f"perf_gate: FAIL — {len(failures)} metric(s) regressed more "
              f"than {args.fail_pct:.0f}% vs {args.baseline}")
        return 1
    if warnings:
        print(f"perf_gate: ok with {len(warnings)} warning(s) "
              f"(>{args.warn_pct:.0f}% slower than baseline)")
    else:
        print("perf_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
