#!/usr/bin/env python3
"""Plot any cebinae_bench/cebinae_dispatch JSONL stream (--out= results or
--trace-out= sidecars) as a labeled line or CDF figure.

Pure standard library: renders SVG directly, so it works in the bare build
container. When matplotlib happens to be installed, --format=png is also
available; otherwise SVG is the (default) output.

Examples
--------
Fig. 1-style goodput time series from a trace sidecar (one line per flow of
one job):

  scripts/plot_jsonl.py trace.jsonl --x t_s --y 'tput_Bps[0]' --y 'tput_Bps[1]' \
      --filter label='qdisc=Cebinae trial=0' --out fig01.svg

Fig. 8-style goodput CDF from a results file, one curve per qdisc:

  scripts/plot_jsonl.py results.jsonl --y jfi --cdf --group-by qdisc --out fig08.svg

Field selectors accept `name` (scalar) or `name[i]` (array element). With
--group-by KEY, rows are split into one series per distinct value of KEY
(a scalar/string field, or a params.* echo via `params.KEY`).
"""

import argparse
import json
import math
import sys


# --------------------------------------------------------------------------
# data access


def load_rows(path):
    """Parse a JSONL file, silently skipping torn lines (crashed writers)."""
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # truncated final line from a killed run
    return rows


def select(row, field):
    """Resolve `name`, `name[i]`, or `params.name` against one row."""
    if field.endswith("]") and "[" in field:
        name, idx = field[:-1].split("[", 1)
        value = select(row, name)
        try:
            return value[int(idx)] if value is not None else None
        except (IndexError, TypeError, ValueError):
            return None
    obj = row
    for part in field.split("."):
        if not isinstance(obj, dict) or part not in obj:
            return None
        obj = obj[part]
    return obj


def numeric(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool) and math.isfinite(value)


def build_series(rows, xfield, yfields, group_by):
    """-> list of (label, [(x, y), ...]) sorted by label for determinism."""
    series = {}
    for n, row in enumerate(rows):
        x = select(row, xfield) if xfield else n
        if not numeric(x):
            continue
        group = select(row, group_by) if group_by else None
        for yfield in yfields:
            y = select(row, yfield)
            if not numeric(y):
                continue
            key = yfield if group is None else (
                f"{group}" if len(yfields) == 1 else f"{group} {yfield}")
            series.setdefault(key, []).append((x, y))
    return sorted(series.items())


def to_cdf(points):
    ys = sorted(y for _, y in points)
    n = len(ys)
    return [(y, (i + 1) / n) for i, y in enumerate(ys)]


# --------------------------------------------------------------------------
# pure-python SVG renderer


PALETTE = ["#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
           "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0"]


def nice_ticks(lo, hi, n=5):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(1, n)))
    for mult in (1, 2, 2.5, 5, 10, 20):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12 * span:
        ticks.append(round(t, 12))
        t += step
    return ticks


def fmt_tick(v):
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.1e}"
    return f"{v:g}"


def render_svg(series, title, xlabel, ylabel, width=720, height=440):
    ml, mr, mt, mb = 72, 16, 34, 48
    pw, ph = width - ml - mr, height - mt - mb
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    if not xs:
        raise SystemExit("error: no numeric points matched the selection")
    xlo, xhi = min(xs), max(xs)
    ylo, yhi = min(ys), max(ys)
    if xhi == xlo:
        xhi = xlo + 1.0
    if yhi == ylo:
        yhi = ylo + (abs(ylo) or 1.0) * 0.1
    ypad = (yhi - ylo) * 0.05
    ylo, yhi = ylo - ypad, yhi + ypad

    def px(x):
        return ml + (x - xlo) / (xhi - xlo) * pw

    def py(y):
        return mt + ph - (y - ylo) / (yhi - ylo) * ph

    out = []
    out.append(f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
               f'height="{height}" viewBox="0 0 {width} {height}" '
               f'font-family="system-ui, sans-serif" font-size="12">')
    out.append(f'<rect width="{width}" height="{height}" fill="white"/>')
    out.append(f'<text x="{ml + pw / 2}" y="20" text-anchor="middle" '
               f'font-size="14" font-weight="600">{escape(title)}</text>')

    for t in nice_ticks(xlo, xhi):
        x = px(t)
        out.append(f'<line x1="{x:.1f}" y1="{mt}" x2="{x:.1f}" y2="{mt + ph}" '
                   f'stroke="#e3e3e8" stroke-width="1"/>')
        out.append(f'<text x="{x:.1f}" y="{mt + ph + 18}" text-anchor="middle" '
                   f'fill="#555">{fmt_tick(t)}</text>')
    for t in nice_ticks(ylo, yhi):
        y = py(t)
        out.append(f'<line x1="{ml}" y1="{y:.1f}" x2="{ml + pw}" y2="{y:.1f}" '
                   f'stroke="#e3e3e8" stroke-width="1"/>')
        out.append(f'<text x="{ml - 8}" y="{y + 4:.1f}" text-anchor="end" '
                   f'fill="#555">{fmt_tick(t)}</text>')
    out.append(f'<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" '
               f'stroke="#9aa0a6" stroke-width="1"/>')
    out.append(f'<text x="{ml + pw / 2}" y="{height - 10}" text-anchor="middle" '
               f'fill="#333">{escape(xlabel)}</text>')
    out.append(f'<text x="16" y="{mt + ph / 2}" text-anchor="middle" fill="#333" '
               f'transform="rotate(-90 16 {mt + ph / 2})">{escape(ylabel)}</text>')

    for k, (label, pts) in enumerate(series):
        color = PALETTE[k % len(PALETTE)]
        pts = sorted(pts)
        path = " ".join(f"{'M' if i == 0 else 'L'}{px(x):.2f},{py(y):.2f}"
                        for i, (x, y) in enumerate(pts))
        out.append(f'<path d="{path}" fill="none" stroke="{color}" '
                   f'stroke-width="1.8"/>')
        if len(pts) <= 40:  # markers only when they stay readable
            for x, y in pts:
                out.append(f'<circle cx="{px(x):.2f}" cy="{py(y):.2f}" r="2.4" '
                           f'fill="{color}"/>')
        ly = mt + 14 + 16 * k
        out.append(f'<line x1="{ml + pw - 130}" y1="{ly - 4}" x2="{ml + pw - 108}" '
                   f'y2="{ly - 4}" stroke="{color}" stroke-width="2.5"/>')
        out.append(f'<text x="{ml + pw - 102}" y="{ly}" fill="#333">'
                   f'{escape(label)}</text>')

    out.append("</svg>")
    return "\n".join(out)


def escape(s):
    return (str(s).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))


def render_matplotlib(series, title, xlabel, ylabel, out_path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
    fig, ax = plt.subplots(figsize=(7.2, 4.4))
    for k, (label, pts) in enumerate(series):
        pts = sorted(pts)
        ax.plot([x for x, _ in pts], [y for _, y in pts],
                label=label, color=PALETTE[k % len(PALETTE)], linewidth=1.8)
    ax.set_title(title)
    ax.set_xlabel(xlabel)
    ax.set_ylabel(ylabel)
    ax.grid(True, color="#e3e3e8")
    ax.legend(frameon=False)
    fig.tight_layout()
    fig.savefig(out_path, dpi=144)


# --------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("jsonl", help="results (--out=) or trace (--trace-out=) JSONL file")
    ap.add_argument("--x", default=None,
                    help="x field selector (default: t_s if present, else row index)")
    ap.add_argument("--y", action="append", required=True,
                    help="y field selector; repeatable (name or name[i])")
    ap.add_argument("--cdf", action="store_true",
                    help="plot the CDF of the y values instead of y-vs-x")
    ap.add_argument("--group-by", default=None,
                    help="split rows into one series per value of this field")
    ap.add_argument("--filter", action="append", default=[],
                    help="KEY=VALUE; keep only rows whose KEY stringifies to VALUE")
    ap.add_argument("--title", default=None)
    ap.add_argument("--xlabel", default=None)
    ap.add_argument("--ylabel", default=None)
    ap.add_argument("--out", default="plot.svg",
                    help="output path; .svg is dependency-free, .png needs matplotlib")
    args = ap.parse_args()

    rows = load_rows(args.jsonl)
    if not rows:
        raise SystemExit(f"error: no parseable rows in {args.jsonl}")

    for f in args.filter:
        if "=" not in f:
            raise SystemExit(f"error: --filter wants KEY=VALUE, got '{f}'")
        key, want = f.split("=", 1)
        rows = [r for r in rows if str(select(r, key)) == want]
    if not rows:
        raise SystemExit("error: --filter removed every row")

    xfield = args.x
    if xfield is None and not args.cdf:
        xfield = "t_s" if any("t_s" in r for r in rows) else None

    series = build_series(rows, xfield, args.y, args.group_by)
    if args.cdf:
        series = [(label, to_cdf(pts)) for label, pts in series]

    ylist = ", ".join(args.y)
    if args.cdf:
        xlabel = args.xlabel or ylist
        ylabel = args.ylabel or "CDF"
    else:
        xlabel = args.xlabel or (xfield or "row")
        ylabel = args.ylabel or ylist
    title = args.title or f"{ylist} — {args.jsonl}"

    if args.out.lower().endswith(".png"):
        try:
            render_matplotlib(series, title, xlabel, ylabel, args.out)
        except ImportError:
            raise SystemExit("error: PNG output needs matplotlib; use a .svg path")
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(render_svg(series, title, xlabel, ylabel))
    total = sum(len(p) for _, p in series)
    print(f"wrote {args.out}: {len(series)} series, {total} points", file=sys.stderr)


if __name__ == "__main__":
    main()
