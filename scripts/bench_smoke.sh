#!/usr/bin/env bash
# Bench smoke gate (tier-1): every experiment `cebinae_bench --list` reports
# must complete a --smoke run, and a representative subset must produce
# byte-identical stdout at --jobs=1 and --jobs=4 (the registry's determinism
# contract: reports render only from aggregated records, progress goes to
# stderr).
#
# Usage: scripts/bench_smoke.sh [path-to-cebinae_bench]
set -euo pipefail

BENCH="${1:-build/bench/cebinae_bench}"
if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not built" >&2
  exit 1
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

names="$("$BENCH" --list | cut -f1)"
if [[ -z "$names" ]]; then
  echo "error: --list returned no experiments" >&2
  exit 1
fi

for name in $names; do
  echo "== $name --smoke ==" >&2
  "$BENCH" --experiment="$name" --smoke --jobs="$JOBS" >/dev/null
done

# Determinism across worker counts on quick multi-job experiments.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for name in fig07 fig10; do
  echo "== $name --jobs determinism ==" >&2
  "$BENCH" --experiment="$name" --smoke --trials=2 --jobs=1 2>/dev/null \
    >"$tmpdir/$name.j1"
  "$BENCH" --experiment="$name" --smoke --trials=2 --jobs=4 2>/dev/null \
    >"$tmpdir/$name.j4"
  if ! diff -u "$tmpdir/$name.j1" "$tmpdir/$name.j4"; then
    echo "error: $name stdout differs between --jobs=1 and --jobs=4" >&2
    exit 1
  fi
done

echo "bench smoke: all experiments pass" >&2
