#!/usr/bin/env bash
# Perf trajectory: run a representative set of registered experiments
# through `cebinae_bench` at --jobs=1 and --jobs=$(nproc), writing one
# BENCH_<name>.json summary per (experiment, jobs) point under perf/.
# Successive releases diff these files to track wall-clock and
# scenarios/sec over time.
#
# Usage: scripts/perf_trajectory.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
NPROC="$(nproc 2>/dev/null || echo 4)"
OUT_DIR="perf"
mkdir -p "$OUT_DIR"

BENCH="$BUILD_DIR/bench/cebinae_bench"
if [[ ! -x "$BENCH" ]]; then
  echo "error: $BENCH not built" >&2
  exit 1
fi

EXPERIMENTS=(fig01 fig10 fig08 fig12)

for name in "${EXPERIMENTS[@]}"; do
  for jobs in 1 "$NPROC"; do
    echo "== $name --jobs=$jobs ==" >&2
    "$BENCH" --experiment="$name" --jobs="$jobs" \
      --perf-out="$OUT_DIR/BENCH_${name}_j${jobs}.json" >/dev/null
  done
done

# Merge the per-point summaries into one trajectory file when python3 is
# available; the individual JSON files remain the source of truth.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT_DIR" <<'EOF'
import glob, json, os, sys
out_dir = sys.argv[1]
points = []
for path in sorted(glob.glob(os.path.join(out_dir, "BENCH_*_j*.json"))):
    with open(path) as f:
        points.append(json.load(f))
with open(os.path.join(out_dir, "BENCH_trajectory.json"), "w") as f:
    json.dump(points, f, indent=2)
    f.write("\n")
print(f"wrote {os.path.join(out_dir, 'BENCH_trajectory.json')} ({len(points)} points)")
EOF
fi
