#!/usr/bin/env bash
# Dispatch smoke gate (tier-1): the distributed sweep dispatcher must
# produce byte-identical aggregated stdout and merged JSONL (modulo each
# row's wall-clock field) to a single-process `cebinae_bench --jobs=1` run —
# including when a lease-holding worker is SIGKILLed mid-sweep
# (--fault-inject=kill1), whose jobs must be re-stolen and appear in the
# merged output exactly once. Also exercises the traced-experiment path
# (fig01 reports from reconstructed trace rows).
#
# Usage: scripts/dispatch_smoke.sh [path-to-cebinae_bench] [path-to-cebinae_dispatch]
set -euo pipefail

BENCH="${1:-build/bench/cebinae_bench}"
DISPATCH="${2:-build/bench/cebinae_dispatch}"
for bin in "$BENCH" "$DISPATCH"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
done

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

strip_wall() { sed -E 's/"wall_s":[0-9.eE+-]+/"wall_s":0/' "$1"; }

# ---- fig07, fault-injected: byte-identity despite a killed worker ----------
echo "== fig07 --workers=4 --fault-inject=kill1 vs --jobs=1 ==" >&2
"$BENCH" --experiment=fig07 --smoke --trials=2 --jobs=1 \
  --out="$tmpdir/ref.jsonl" >"$tmpdir/ref.stdout" 2>/dev/null
"$DISPATCH" --experiment=fig07 --smoke --trials=2 --workers=4 \
  --lease-ttl=2 --fault-inject=kill1 --ledger="$tmpdir/ledger" \
  --out="$tmpdir/dsp.jsonl" >"$tmpdir/dsp.stdout" 2>"$tmpdir/dsp.stderr"

if ! diff -u "$tmpdir/ref.stdout" "$tmpdir/dsp.stdout"; then
  echo "error: dispatched stdout differs from single-process run" >&2
  exit 1
fi
if ! diff -u <(strip_wall "$tmpdir/ref.jsonl") <(strip_wall "$tmpdir/dsp.jsonl"); then
  echo "error: merged JSONL differs from single-process run (modulo wall_s)" >&2
  exit 1
fi
# Exactly-once: every job_index appears exactly once, in grid order.
if ! diff <(grep -o '"job_index":[0-9]*' "$tmpdir/dsp.jsonl") \
          <(grep -o '"job_index":[0-9]*' "$tmpdir/ref.jsonl"); then
  echo "error: merged JSONL job_index sequence is not the grid order" >&2
  exit 1
fi
# The fault must actually have fired on a lease-holding worker (the tight
# coordinator poll makes this deterministic at smoke job durations).
if ! grep -q "fault-inject: SIGKILL" "$tmpdir/dsp.stderr"; then
  echo "error: --fault-inject=kill1 never killed a worker" >&2
  cat "$tmpdir/dsp.stderr" >&2
  exit 1
fi

# ---- fig01, traced: report renders from reconstructed trace rows -----------
echo "== fig01 --workers=2 trace reconstruction ==" >&2
"$BENCH" --experiment=fig01 --smoke --jobs=1 \
  --trace-out="$tmpdir/ref_trace.jsonl" >"$tmpdir/ref01.stdout" 2>/dev/null
"$DISPATCH" --experiment=fig01 --smoke --workers=2 --lease-ttl=2 \
  --ledger="$tmpdir/ledger01" --trace-out="$tmpdir/dsp_trace.jsonl" \
  >"$tmpdir/dsp01.stdout" 2>/dev/null

if ! diff -u "$tmpdir/ref01.stdout" "$tmpdir/dsp01.stdout"; then
  echo "error: traced experiment stdout differs under dispatch" >&2
  exit 1
fi
if ! diff -u "$tmpdir/ref_trace.jsonl" "$tmpdir/dsp_trace.jsonl"; then
  echo "error: merged trace sidecar differs from single-process run" >&2
  exit 1
fi

echo "dispatch smoke: byte-identical under 4 workers + kill1 fault injection" >&2
