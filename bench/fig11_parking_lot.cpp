// Figure 11: 'Parking Lot' multi-bottleneck topology. 8 NewReno flows
// (0-7) traverse all three 100 Mbps links, contending with 2 Bic (8-9) on
// link 0, 8 Vegas (10-17) on link 1, and 4 Cubic (18-21) on link 2.
// Reports per-flow goodput against the ideal max-min allocation and the
// normalized JFI the paper uses (FIFO ~0.85 -> Cebinae ~0.98).
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/jfi.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioConfig make_config(QdiscKind qdisc, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.chain_links = 3;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = opts.full ? Seconds(100) : Seconds(30);
  cfg.seed = opts.seed;

  // 8 NewReno end-to-end (larger RTT: longer path).
  for (const FlowSpec& f : flows_of(CcaType::kNewReno, 8, Milliseconds(80))) {
    cfg.flows.push_back(f);
  }
  auto local = [&](CcaType cca, int n, int link) {
    for (FlowSpec f : flows_of(cca, n, Milliseconds(40))) {
      f.enter = link;
      f.exit = link + 1;
      cfg.flows.push_back(f);
    }
  };
  local(CcaType::kBic, 2, 0);
  local(CcaType::kVegas, 8, 1);
  local(CcaType::kCubic, 4, 2);
  return cfg;
}

const char* flow_label(std::size_t i) {
  if (i < 8) return "NewReno(e2e)";
  if (i < 10) return "Bic(l0)";
  if (i < 18) return "Vegas(l1)";
  return "Cubic(l2)";
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 11: Parking Lot (3x100 Mbps): 8 NewReno e2e vs local Bic/Vegas/Cubic",
               opts);

  Scenario fifo_scenario(make_config(QdiscKind::kFifo, opts));
  const std::vector<double> ideal = fifo_scenario.ideal_goodputs_Bps();
  const ScenarioResult fifo = fifo_scenario.run();
  const ScenarioResult ceb = Scenario(make_config(QdiscKind::kCebinae, opts)).run();

  std::printf("%4s %-14s %12s %12s %12s\n", "Flow", "Type", "Ideal[Mbps]", "FIFO[Mbps]",
              "Cebinae[Mbps]");
  for (std::size_t i = 0; i < ideal.size(); ++i) {
    std::printf("%4zu %-14s %12.2f %12.2f %12.2f\n", i, flow_label(i), to_mbps(ideal[i]),
                to_mbps(fifo.goodput_Bps[i]), to_mbps(ceb.goodput_Bps[i]));
  }

  std::printf("\nnormalized JFI (distance to max-min ideal): FIFO %.3f -> Cebinae %.3f\n",
              normalized_jain_index(fifo.goodput_Bps, ideal),
              normalized_jain_index(ceb.goodput_Bps, ideal));
  return 0;
}
