// Ablation (paper §3.2): why Cebinae taxes instead of freezing.
//
// The strawman fairness scheme detects saturation and rate-limits all flows
// at the maximal observed per-flow rate with token buckets. Against an
// entrenched aggressor that holds its share (BBRv1 at a sub-BDP buffer, the
// modern stand-in for the paper's hypothetical 6x-aggressive variant), the
// strawman can stop the aggressor growing further but cannot return its
// excess; Cebinae's tax ratchets it down and redistributes.
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/jfi.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

struct TailResult {
  double incumbent_mbps;
  double joiner_mbps;
  double jfi;
};

TailResult run(QdiscKind qdisc, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 250ull * kMtuBytes;  // sub-BDP: BBR holds its share
  cfg.qdisc = qdisc;
  cfg.duration = opts.full ? Seconds(100) : Seconds(40);
  cfg.seed = opts.seed;

  // One incumbent BBR flow grabs the link alone; 4 NewReno flows join at
  // t=5s into the entrenched allocation.
  cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(40)});
  for (FlowSpec f : flows_of(CcaType::kNewReno, 4, Milliseconds(40))) {
    f.start = Seconds(5);
    cfg.flows.push_back(f);
  }

  Scenario scenario(cfg);
  scenario.run();
  // Measure the converged tail (final half) rather than the whole run.
  const auto rates =
      scenario.stats().goodputs_Bps(cfg.duration / 2, cfg.duration);
  TailResult r;
  r.incumbent_mbps = to_mbps(rates[0]);
  double joiners = 0;
  for (std::size_t i = 1; i < rates.size(); ++i) joiners += rates[i];
  r.joiner_mbps = to_mbps(joiners / 4);
  r.jfi = jain_index(rates);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: strawman freeze-at-max vs Cebinae tax (paper 3.2)", opts);
  std::printf("1 incumbent BBR + 4 late NewReno joiners, 100 Mbps, tail-half averages\n\n");

  std::printf("%-10s %16s %17s %8s\n", "scheme", "incumbent[Mbps]", "joiner avg[Mbps]", "JFI");
  for (QdiscKind qdisc :
       {QdiscKind::kFifo, QdiscKind::kStrawman, QdiscKind::kCebinae}) {
    const TailResult r = run(qdisc, opts);
    std::printf("%-10s %16.2f %17.2f %8.3f\n", qdisc_name(qdisc), r.incumbent_mbps,
                r.joiner_mbps, r.jfi);
    std::fflush(stdout);
  }
  std::printf("\n(the strawman cannot make an already-unfair allocation fair;\n"
              " Cebinae's tax actively redistributes the incumbent's excess)\n");
  return 0;
}
