// Figure 9: RTT-asymmetry sweep for Cubic. Four Cubic flows at a fixed
// 256 ms RTT compete with four Cubic flows whose RTT sweeps 16..256 ms over
// a 400 Mbps bottleneck with a 3 MB buffer; JFI and total goodput for
// FIFO / FQ / Cebinae.
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioResult run(int rtt_ms, QdiscKind qdisc, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 400'000'000;
  cfg.buffer_bytes = 3 * 1024 * 1024;
  cfg.qdisc = qdisc;
  // 256 ms RTT flows need tens of seconds to converge even in quick mode.
  cfg.duration = opts.full ? Seconds(100) : Seconds(40);
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kCubic, 4, Milliseconds(256));
  for (const FlowSpec& f : flows_of(CcaType::kCubic, 4, Milliseconds(rtt_ms))) {
    cfg.flows.push_back(f);
  }
  return Scenario(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 9: RTT asymmetry (4+4 Cubic, 400 Mbps, 3 MB buffer)", opts);

  std::printf("%-8s | %8s %8s %8s | %12s %12s %12s\n", "RTT[ms]", "JFI F", "JFI FQ",
              "JFI Ceb", "Gput F[MBps]", "Gput FQ", "Gput Ceb");
  for (int rtt : {16, 32, 64, 128, 256}) {
    const ScenarioResult fifo = run(rtt, QdiscKind::kFifo, opts);
    const ScenarioResult fq = run(rtt, QdiscKind::kFqCoDel, opts);
    const ScenarioResult ceb = run(rtt, QdiscKind::kCebinae, opts);
    std::printf("%-8d | %8.3f %8.3f %8.3f | %12.1f %12.1f %12.1f\n", rtt, fifo.jfi, fq.jfi,
                ceb.jfi, fifo.total_goodput_Bps / 1e6, fq.total_goodput_Bps / 1e6,
                ceb.total_goodput_Bps / 1e6);
    std::fflush(stdout);
  }
  std::printf("\n(goodput in MBps, matching the paper's y-axis)\n");
  return 0;
}
