// Figure 8: per-flow goodput CDFs.
//   (a) 128 NewReno vs 2 BBR over 1 Gbps — Cebinae prevents the BBR flows
//       from claiming an outsized share.
//   (b) 128 NewReno (64 ms RTT) vs 4 Vegas (100 ms RTT) over 1 Gbps —
//       Cebinae mitigates Vegas starvation.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

void print_cdf(const char* label, std::vector<double> fifo, std::vector<double> ceb) {
  std::sort(fifo.begin(), fifo.end());
  std::sort(ceb.begin(), ceb.end());
  std::printf("\n--- %s: goodput CDF [Mbps] ---\n", label);
  std::printf("%8s %14s %14s\n", "CDF", "FIFO", "Cebinae");
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    const auto idx = static_cast<std::size_t>(q * (fifo.size() - 1));
    std::printf("%8.2f %14.3f %14.3f\n", q, to_mbps(fifo[idx]), to_mbps(ceb[idx]));
  }
}

ScenarioResult run(const std::vector<FlowSpec>& flows, QdiscKind qdisc,
                   const BenchOptions& opts, std::uint64_t buf_mtu) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 1'000'000'000;
  cfg.buffer_bytes = buf_mtu * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = opts.full ? Seconds(100) : Seconds(12);
  cfg.seed = opts.seed;
  cfg.flows = flows;
  return Scenario(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 8: goodput CDFs, aggressive/starved CCA mixes at 1 Gbps", opts);

  {
    // (a) 128 NewReno + 2 BBR, equal 100 ms RTTs, 8350 MTU (~1 BDP) buffer
    // (Table 2's row for this mix).
    std::vector<FlowSpec> flows = flows_of(CcaType::kNewReno, 128, Milliseconds(100));
    flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
    flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
    const ScenarioResult fifo = run(flows, QdiscKind::kFifo, opts, 8350);
    const ScenarioResult ceb = run(flows, QdiscKind::kCebinae, opts, 8350);
    print_cdf("(a) 128 NewReno vs 2 BBR", fifo.goodput_Bps, ceb.goodput_Bps);
    const double bbr_fifo = fifo.goodput_Bps[128] + fifo.goodput_Bps[129];
    const double bbr_ceb = ceb.goodput_Bps[128] + ceb.goodput_Bps[129];
    std::printf("BBR aggregate share: FIFO %.1f%%  Cebinae %.1f%%\n",
                100.0 * bbr_fifo / fifo.total_goodput_Bps,
                100.0 * bbr_ceb / ceb.total_goodput_Bps);
    std::printf("JFI: FIFO %.3f  Cebinae %.3f\n", fifo.jfi, ceb.jfi);
  }

  {
    // (b) 128 NewReno @64 ms + 4 Vegas @100 ms.
    std::vector<FlowSpec> flows = flows_of(CcaType::kNewReno, 128, Milliseconds(64));
    for (int i = 0; i < 4; ++i) flows.push_back(FlowSpec{CcaType::kVegas, Milliseconds(100)});
    const ScenarioResult fifo = run(flows, QdiscKind::kFifo, opts, 8500);
    const ScenarioResult ceb = run(flows, QdiscKind::kCebinae, opts, 8500);
    print_cdf("(b) 128 NewReno vs 4 Vegas", fifo.goodput_Bps, ceb.goodput_Bps);
    double vegas_fifo = 0;
    double vegas_ceb = 0;
    for (int i = 128; i < 132; ++i) {
      vegas_fifo += fifo.goodput_Bps[i];
      vegas_ceb += ceb.goodput_Bps[i];
    }
    std::printf("Vegas mean goodput: FIFO %.3f Mbps  Cebinae %.3f Mbps\n",
                to_mbps(vegas_fifo / 4), to_mbps(vegas_ceb / 4));
    std::printf("JFI: FIFO %.3f  Cebinae %.3f\n", fifo.jfi, ceb.jfi);
  }
  return 0;
}
