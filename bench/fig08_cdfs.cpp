// Figure 8: per-flow goodput CDFs.
//   (a) 128 NewReno vs 2 BBR over 1 Gbps — Cebinae prevents the BBR flows
//       from claiming an outsized share.
//   (b) 128 NewReno (64 ms RTT) vs 4 Vegas (100 ms RTT) over 1 Gbps —
//       Cebinae mitigates Vegas starvation.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

void print_cdf(const char* label, std::vector<double> fifo, std::vector<double> ceb) {
  std::sort(fifo.begin(), fifo.end());
  std::sort(ceb.begin(), ceb.end());
  std::printf("\n--- %s: goodput CDF [Mbps] ---\n", label);
  std::printf("%8s %14s %14s\n", "CDF", "FIFO", "Cebinae");
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    const auto idx = static_cast<std::size_t>(q * (fifo.size() - 1));
    std::printf("%8.2f %14.3f %14.3f\n", q, to_mbps(fifo[idx]), to_mbps(ceb[idx]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 8: goodput CDFs, aggressive/starved CCA mixes at 1 Gbps", opts);

  // Both subfigures' flow mixes x {FIFO, Cebinae}, mix-outermost so record
  // index is mix * 2 + qdisc; the 4 scenarios run across --jobs workers.
  ScenarioConfig common;
  common.bottleneck_bps = 1'000'000'000;
  common.duration = opts.full ? Seconds(100) : Seconds(12);
  common.flows = {FlowSpec{}};  // placeholder, replaced per mix
  const std::vector<exp::ExperimentJob> jobs =
      exp::SweepGrid(common)
          .variants(
              "mix",
              {{"reno128_bbr2",
                [](ScenarioConfig& cfg) {
                  // (a) 128 NewReno + 2 BBR, equal 100 ms RTTs, 8350 MTU
                  // (~1 BDP) buffer (Table 2's row for this mix).
                  cfg.buffer_bytes = 8350ull * kMtuBytes;
                  cfg.flows = flows_of(CcaType::kNewReno, 128, Milliseconds(100));
                  cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
                  cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
                }},
               {"reno128_vegas4",
                [](ScenarioConfig& cfg) {
                  // (b) 128 NewReno @64 ms + 4 Vegas @100 ms.
                  cfg.buffer_bytes = 8500ull * kMtuBytes;
                  cfg.flows = flows_of(CcaType::kNewReno, 128, Milliseconds(64));
                  for (int i = 0; i < 4; ++i) {
                    cfg.flows.push_back(FlowSpec{CcaType::kVegas, Milliseconds(100)});
                  }
                }}})
          .qdiscs({QdiscKind::kFifo, QdiscKind::kCebinae})
          .build();
  const std::vector<exp::RunRecord> records = run_batch("fig08_cdfs", jobs, opts);

  {
    const ScenarioResult& fifo = records[0].result;
    const ScenarioResult& ceb = records[1].result;
    print_cdf("(a) 128 NewReno vs 2 BBR", fifo.goodput_Bps, ceb.goodput_Bps);
    const double bbr_fifo = fifo.goodput_Bps[128] + fifo.goodput_Bps[129];
    const double bbr_ceb = ceb.goodput_Bps[128] + ceb.goodput_Bps[129];
    std::printf("BBR aggregate share: FIFO %.1f%%  Cebinae %.1f%%\n",
                100.0 * bbr_fifo / fifo.total_goodput_Bps,
                100.0 * bbr_ceb / ceb.total_goodput_Bps);
    std::printf("JFI: FIFO %.3f  Cebinae %.3f\n", fifo.jfi, ceb.jfi);
  }

  {
    const ScenarioResult& fifo = records[2].result;
    const ScenarioResult& ceb = records[3].result;
    print_cdf("(b) 128 NewReno vs 4 Vegas", fifo.goodput_Bps, ceb.goodput_Bps);
    double vegas_fifo = 0;
    double vegas_ceb = 0;
    for (int i = 128; i < 132; ++i) {
      vegas_fifo += fifo.goodput_Bps[i];
      vegas_ceb += ceb.goodput_Bps[i];
    }
    std::printf("Vegas mean goodput: FIFO %.3f Mbps  Cebinae %.3f Mbps\n",
                to_mbps(vegas_fifo / 4), to_mbps(vegas_ceb / 4));
    std::printf("JFI: FIFO %.3f  Cebinae %.3f\n", fifo.jfi, ceb.jfi);
  }
  return 0;
}
