// Microbenchmarks of the data-path building blocks, backing the scalability
// discussion (§5.5): the per-packet cost of Cebinae's components is flat in
// the number of flows, unlike per-flow-queue schemes.
#include <benchmark/benchmark.h>

#include "core/flow_cache.hpp"
#include "core/lbf.hpp"
#include "metrics/jfi.hpp"
#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queueing/fifo_queue.hpp"
#include "queueing/fq_codel.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "tcp/interval_set.hpp"

namespace {

using namespace cebinae;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler sched;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sched.schedule(Nanoseconds(i * 100), [&sink] { ++sink; });
    }
    sched.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SchedulerScheduleRun);

void BM_SchedulerCancelRearm(benchmark::State& state) {
  // The RTO-timer maintenance pattern: every ACK cancels the armed timer
  // and schedules a fresh one. Exercises the O(1) generation-checked
  // cancel plus slot recycling; most cancelled entries die lazily at the
  // heap root.
  Scheduler sched;
  EventId timer;
  std::int64_t now = 0;
  int fired = 0;
  for (auto _ : state) {
    sched.cancel(timer);
    timer = sched.schedule(Milliseconds(200), [&fired] { ++fired; });
    now += 100'000;
    sched.run_until(Time(now));
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerCancelRearm);

void BM_SchedulerPropagationEvent(benchmark::State& state) {
  // The shape of the hottest event in the simulator: a pooled packet plus
  // a pointer, fired once. Must stay inside the InlineFunction budget —
  // zero mallocs per iteration.
  PacketPool pool;
  Scheduler sched;
  std::uint64_t sink = 0;
  std::int64_t now = 0;
  Packet proto;
  proto.size_bytes = kMtuBytes;
  auto probe = [p = PooledPacket{}, s = &sink]() mutable { *s += (*p).size_bytes; };
  static_assert(Scheduler::Callback::stores_inline<decltype(probe)>());
  (void)probe;
  for (auto _ : state) {
    now += 1'000;
    sched.schedule_at(Time(now), [p = PooledPacket(&pool, proto), s = &sink]() mutable {
      *s += (*p).size_bytes;
    });
    sched.run_until(Time(now));
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchedulerPropagationEvent);

void BM_IntervalSetLossPattern(benchmark::State& state) {
  // The receiver-side reassembly pattern under periodic loss: grow a small
  // set of holes, then drain when the retransmission lands.
  for (auto _ : state) {
    IntervalSet ooo;
    std::uint64_t cursor = 0;
    for (std::uint64_t seg = 1; seg <= 64; ++seg) {
      if (seg % 8 == 0) continue;  // dropped segment -> hole
      ooo.add(seg * kMssBytes, (seg + 1) * kMssBytes);
    }
    for (std::uint64_t seg = 8; seg <= 64; seg += 8) {
      cursor = seg * kMssBytes + kMssBytes;  // retransmission arrives
      ooo.drain_into(cursor);
    }
    benchmark::DoNotOptimize(cursor);
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_IntervalSetLossPattern);

void BM_FlowCacheAdd(benchmark::State& state) {
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  FlowCache cache(2, 2048);
  RandomStream rng(1);
  std::vector<FlowId> ids;
  for (std::uint32_t i = 0; i < flows; ++i) {
    ids.push_back(FlowId{i, i + 1'000'000, 5000, 5000});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.add(ids[i % flows], kMtuBytes));
    if (++i % 100'000 == 0) (void)cache.poll_and_reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowCacheAdd)->Arg(16)->Arg(1024)->Arg(65536);

void BM_FlowCachePollAndReset(benchmark::State& state) {
  FlowCache cache(2, 2048);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::uint32_t i = 0; i < 4096; ++i) {
      cache.add(FlowId{i, i + 1'000'000, 5000, 5000}, kMtuBytes);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(cache.poll_and_reset());
  }
}
BENCHMARK(BM_FlowCachePollAndReset);

void BM_LbfAdmit(benchmark::State& state) {
  CebinaeParams params;
  params.dt = Nanoseconds(1 << 20);
  params.vdt = Nanoseconds(1 << 10);
  LeakyBucketFilter lbf(params, 10'000'000'000ull);
  lbf.enter_saturated(6e8, 6.5e8);
  std::int64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lbf.admit(FlowGroup::kBottom, kMtuBytes, Time(now)));
    now += 1200;
    if (now % (1 << 20) < 1200) lbf.rotate(Time(now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LbfAdmit);

void BM_FifoEnqueueDequeue(benchmark::State& state) {
  FifoQueue q(FifoQueue::unlimited());
  Packet p;
  p.size_bytes = kMtuBytes;
  for (auto _ : state) {
    q.enqueue(p);
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoEnqueueDequeue);

void BM_FqCoDelEnqueueDequeue(benchmark::State& state) {
  // Per-packet cost grows with the number of active flow queues — the
  // scaling contrast with Cebinae's two queues.
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  Scheduler sched;
  FqCoDelParams params;
  FqCoDel q(sched, params);
  std::uint32_t i = 0;
  for (auto _ : state) {
    Packet p;
    p.flow = FlowId{i % flows, 1, 5000, 5000};
    p.size_bytes = kMtuBytes;
    q.enqueue(std::move(p));
    benchmark::DoNotOptimize(q.dequeue());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FqCoDelEnqueueDequeue)->Arg(16)->Arg(1024)->Arg(65536);

void BM_MetricsCounterAdd(benchmark::State& state) {
  // The always-compiled instrumentation cost on a hot path: one null check
  // plus an increment through a cached Counter*.
  obs::MetricsRegistry reg;
  obs::Counter* c = &reg.counter("net.tx_bytes");
  for (auto _ : state) {
    if (c != nullptr) c->add(kMtuBytes);
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_RegistrySampleRow(benchmark::State& state) {
  // Probe-tick cost: snapshot every registered metric into a TraceRow.
  // Paid once per sample period, never per packet.
  const auto metrics = static_cast<int>(state.range(0));
  obs::MetricsRegistry reg;
  for (int i = 0; i < metrics; ++i) {
    reg.counter("counter." + std::to_string(i)).add(static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    obs::TraceRow row(1.0);
    reg.sample_into(row);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations() * metrics);
}
BENCHMARK(BM_RegistrySampleRow)->Arg(8)->Arg(64);

void BM_TraceRowToJson(benchmark::State& state) {
  // Serialization cost of one sidecar row (runner-side, off the sim path).
  obs::TraceRow row(12.0);
  row.set("jfi", 0.987654321);
  std::vector<double> tput(34, 1.25e6);
  row.set("tput_Bps", std::move(tput));
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.to_json().str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRowToJson);

void BM_JainIndex(benchmark::State& state) {
  RandomStream rng(1);
  std::vector<double> rates;
  for (int i = 0; i < 1024; ++i) rates.push_back(rng.uniform(1, 100));
  for (auto _ : state) {
    benchmark::DoNotOptimize(jain_index(rates));
  }
}
BENCHMARK(BM_JainIndex);

}  // namespace

BENCHMARK_MAIN();
