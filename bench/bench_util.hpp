// Shared helpers for the per-figure/table bench binaries.
//
// Every bench runs with no arguments using scaled-down durations so the full
// suite finishes in minutes; pass --full to reproduce the paper's 100 s runs
// (and full trial counts) at the cost of a long wall-clock time.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

namespace cebinae::bench {

struct BenchOptions {
  bool full = false;
  std::uint64_t seed = 1;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opts.full = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) opts.seed = std::strtoull(argv[i] + 7, nullptr, 10);
  }
  return opts;
}

inline double to_mbps(double bytes_per_sec) { return bytes_per_sec * 8.0 / 1e6; }

// Scaled run durations: long enough for convergence behavior to show, short
// enough that the whole suite stays interactive.
inline Time duration_for(std::uint64_t bottleneck_bps, bool full) {
  if (full) return Seconds(100);
  if (bottleneck_bps >= 10'000'000'000ull) return Seconds(5);
  if (bottleneck_bps >= 1'000'000'000ull) return Seconds(12);
  return Seconds(30);
}

inline const char* qdisc_name(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "FIFO";
    case QdiscKind::kFqCoDel:
      return "FQ";
    case QdiscKind::kCebinae:
      return "Cebinae";
    case QdiscKind::kAfq:
      return "AFQ";
    case QdiscKind::kStrawman:
      return "Strawman";
  }
  return "?";
}

inline void print_header(const char* title, const BenchOptions& opts) {
  std::printf("=== %s (%s run) ===\n", title, opts.full ? "full paper-scale" : "quick");
}

}  // namespace cebinae::bench
