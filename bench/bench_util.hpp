// Shared helpers for the per-figure/table bench binaries.
//
// Every bench runs with no arguments using scaled-down durations so the full
// suite finishes in minutes; pass --full to reproduce the paper's 100 s runs
// (and full trial counts) at the cost of a long wall-clock time.
//
// Benches ported to the src/exp harness additionally accept:
//   --jobs=N    run scenarios on N worker threads (0 = all hardware threads);
//               results are bit-identical for any N (per-job derived seeds)
//   --out=PATH  stream one JSONL ResultRow per scenario to PATH ("-" = stdout)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae::bench {

struct BenchOptions {
  bool full = false;
  std::uint64_t seed = 1;
  int jobs = 1;
  std::string out;  // JSONL path; empty = disabled
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opts.full = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) opts.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) opts.jobs = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--out=", 6) == 0) opts.out = argv[i] + 6;
  }
  if (opts.jobs <= 0) {
    opts.jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  return opts;
}

// Run a batch of jobs across opts.jobs workers, streaming JSONL rows to
// opts.out when set. The progress ticker goes to stderr so stdout stays
// byte-identical regardless of --jobs.
inline std::vector<exp::RunRecord> run_batch(const std::vector<exp::ExperimentJob>& jobs,
                                             const BenchOptions& opts) {
  std::optional<exp::JsonlWriter> writer;
  try {
    writer.emplace(opts.out);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
  exp::ExperimentRunner::Options ro;
  ro.jobs = opts.jobs;
  ro.base_seed = opts.seed;
  ro.writer = writer->enabled() ? &*writer : nullptr;
  ro.on_progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r[exp] %zu/%zu scenarios done", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };
  return exp::ExperimentRunner(ro).run(jobs);
}

inline double to_mbps(double bytes_per_sec) { return bytes_per_sec * 8.0 / 1e6; }

// Scaled run durations: long enough for convergence behavior to show, short
// enough that the whole suite stays interactive.
inline Time duration_for(std::uint64_t bottleneck_bps, bool full) {
  if (full) return Seconds(100);
  if (bottleneck_bps >= 10'000'000'000ull) return Seconds(5);
  if (bottleneck_bps >= 1'000'000'000ull) return Seconds(12);
  return Seconds(30);
}

inline const char* qdisc_name(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "FIFO";
    case QdiscKind::kFqCoDel:
      return "FQ";
    case QdiscKind::kCebinae:
      return "Cebinae";
    case QdiscKind::kAfq:
      return "AFQ";
    case QdiscKind::kStrawman:
      return "Strawman";
  }
  return "?";
}

inline void print_header(const char* title, const BenchOptions& opts) {
  std::printf("=== %s (%s run) ===\n", title, opts.full ? "full paper-scale" : "quick");
}

}  // namespace cebinae::bench
