// Shared helpers for the per-figure/table bench binaries.
//
// Every bench runs with no arguments using scaled-down durations so the full
// suite finishes in minutes; pass --full to reproduce the paper's 100 s runs
// (and full trial counts) at the cost of a long wall-clock time.
//
// Benches ported to the src/exp harness additionally accept:
//   --jobs=N         run scenarios on N worker threads (0 = all hardware
//                    threads); results are bit-identical for any N
//   --out=PATH       stream one JSONL ResultRow per scenario to PATH
//                    ("-" = stdout)
//   --trace-out=PATH stream probe time-series rows of traced jobs to a
//                    sidecar JSONL file (byte-stable across --jobs)
//   --resume         re-read an existing --out file and skip jobs whose
//                    rows are already complete (killed-sweep continuation)
//   --perf-out[=P]   write a BENCH_<name>.json perf summary (wall clock,
//                    scenarios/sec) to P, default BENCH_<name>.json
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae::bench {

struct BenchOptions {
  bool full = false;
  std::uint64_t seed = 1;
  int jobs = 1;
  std::string out;        // JSONL path; empty = disabled
  std::string trace_out;  // sidecar time-series JSONL path; empty = disabled
  bool resume = false;    // skip job_indexes already complete in `out`
  bool perf = false;      // write a perf summary after the batch
  std::string perf_out;   // summary path; empty = BENCH_<name>.json
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opts.full = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) opts.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) opts.jobs = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--out=", 6) == 0) opts.out = argv[i] + 6;
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) opts.trace_out = argv[i] + 12;
    if (std::strcmp(argv[i], "--resume") == 0) opts.resume = true;
    if (std::strcmp(argv[i], "--perf-out") == 0) opts.perf = true;
    if (std::strncmp(argv[i], "--perf-out=", 11) == 0) {
      opts.perf = true;
      opts.perf_out = argv[i] + 11;
    }
  }
  if (opts.jobs <= 0) {
    opts.jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  return opts;
}

// Single-run perf summary for the release-over-release trajectory; see
// scripts/perf_trajectory.sh for the --jobs=1 vs --jobs=nproc comparison.
inline void write_perf_summary(const char* bench_name, const BenchOptions& opts,
                               std::size_t scenarios, std::size_t skipped, double wall_s) {
  const std::string path =
      opts.perf_out.empty() ? "BENCH_" + std::string(bench_name) + ".json" : opts.perf_out;
  const std::size_t ran = scenarios - skipped;
  exp::JsonObject o;
  o.set("bench", bench_name);
  o.set("jobs", opts.jobs);
  o.set("scenarios", static_cast<std::uint64_t>(scenarios));
  o.set("skipped", static_cast<std::uint64_t>(skipped));
  o.set("wall_s", wall_s);
  o.set("scenarios_per_sec", wall_s > 0.0 ? static_cast<double>(ran) / wall_s : 0.0);
  std::ofstream f(path, std::ios::out | std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "error: cannot write perf summary %s\n", path.c_str());
    return;
  }
  f << o.str() << '\n';
  std::fprintf(stderr, "[exp] perf summary -> %s\n", path.c_str());
}

// Run a batch of jobs across opts.jobs workers, streaming JSONL rows to
// opts.out (and trace rows to opts.trace_out) when set. The progress ticker
// goes to stderr so stdout stays byte-identical regardless of --jobs.
inline std::vector<exp::RunRecord> run_batch(const char* bench_name,
                                             const std::vector<exp::ExperimentJob>& jobs,
                                             const BenchOptions& opts) {
  exp::ExperimentRunner::Options ro;
  ro.jobs = opts.jobs;
  ro.base_seed = opts.seed;

  if (opts.resume && !opts.out.empty() && opts.out != "-") {
    ro.skip_completed = exp::completed_job_indices_file(opts.out);
    // Indexes beyond this batch (stale file from a different sweep) still
    // count as "skipped nothing"; only in-range hits matter.
    if (!ro.skip_completed.empty()) {
      std::fprintf(stderr, "[exp] resume: %zu/%zu jobs already complete in %s\n",
                   ro.skip_completed.size(), jobs.size(), opts.out.c_str());
    }
  }

  std::optional<exp::JsonlWriter> writer;
  std::optional<exp::JsonlWriter> trace_writer;
  try {
    const auto mode = opts.resume && !ro.skip_completed.empty()
                          ? exp::JsonlWriter::Mode::kAppend
                          : exp::JsonlWriter::Mode::kTruncate;
    writer.emplace(opts.out, mode);
    trace_writer.emplace(opts.trace_out, mode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
  ro.writer = writer->enabled() ? &*writer : nullptr;
  ro.trace_writer = trace_writer->enabled() ? &*trace_writer : nullptr;
  ro.on_progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r[exp] %zu/%zu scenarios done", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<exp::RunRecord> records = exp::ExperimentRunner(ro).run(jobs);
  const auto t1 = std::chrono::steady_clock::now();

  if (opts.perf) {
    std::size_t skipped = 0;
    for (const exp::RunRecord& r : records) skipped += r.skipped ? 1 : 0;
    write_perf_summary(bench_name, opts, records.size(), skipped,
                       std::chrono::duration<double>(t1 - t0).count());
  }
  return records;
}

inline double to_mbps(double bytes_per_sec) { return bytes_per_sec * 8.0 / 1e6; }

// Scaled run durations: long enough for convergence behavior to show, short
// enough that the whole suite stays interactive.
inline Time duration_for(std::uint64_t bottleneck_bps, bool full) {
  if (full) return Seconds(100);
  if (bottleneck_bps >= 10'000'000'000ull) return Seconds(5);
  if (bottleneck_bps >= 1'000'000'000ull) return Seconds(12);
  return Seconds(30);
}

inline const char* qdisc_name(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "FIFO";
    case QdiscKind::kFqCoDel:
      return "FQ";
    case QdiscKind::kCebinae:
      return "Cebinae";
    case QdiscKind::kAfq:
      return "AFQ";
    case QdiscKind::kStrawman:
      return "Strawman";
  }
  return "?";
}

inline void print_header(const char* title, const BenchOptions& opts) {
  std::printf("=== %s (%s run) ===\n", title, opts.full ? "full paper-scale" : "quick");
}

}  // namespace cebinae::bench
