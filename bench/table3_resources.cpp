// Table 3: Cebinae data-plane resource usage on a 32-port Tofino, from the
// calibrated analytic model (documented substitution for the P4 compiler's
// report), plus an extrapolated 4-stage configuration.
#include <cstdio>

#include "bench_util.hpp"
#include "core/resource_model.hpp"

using namespace cebinae;
using namespace cebinae::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Table 3: Tofino data-plane resource usage (analytic model)", opts);

  TofinoResourceModel model(32, 4096);
  std::printf("%-12s %-10s %-8s %-10s %-10s %-8s %-8s\n", "Cache stages",
              "Pipe stages", "PHV", "SRAM[KB]", "TCAM[KB]", "VLIW", "Queues");
  for (std::uint32_t stages : {1u, 2u, 4u}) {
    const TofinoResources r = model.estimate(stages);
    std::printf("%-12u %-10u %ub    %-10u %-10u %-8u %-8u%s\n", r.cache_stages,
                r.pipeline_stages, r.phv_bits, r.sram_kb, r.tcam_kb, r.vliw_instructions,
                r.queues, stages > 2 ? "  (extrapolated)" : "");
  }

  std::printf("\nfractions of chip budget (approximate public Tofino-1 specs):\n");
  for (std::uint32_t stages : {1u, 2u}) {
    const TofinoResources r = model.estimate(stages);
    std::printf("  %u-stage: PHV %.1f%%, SRAM %.1f%%, TCAM %.1f%%\n", stages,
                100 * r.phv_fraction(), 100 * r.sram_fraction(), 100 * r.tcam_fraction());
  }
  std::printf("\n(paper: all resource types < ~25%% of the chip; queues = 2 per port —\n"
              " the provable minimum for delay injection without recirculation)\n");
  return 0;
}
