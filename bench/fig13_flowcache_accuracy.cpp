// Figure 13: false-positive and false-negative rates of ⊤-flow detection
// under a synthetic ISP-backbone trace (the documented substitution for the
// paper's CAIDA traces).
//   (a) sweep the round interval at 2048 slots/stage;
//   (b) sweep the slot count at a 100 ms interval;
// each for 1-, 2-, and 4-stage caches.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "core/flow_cache.hpp"
#include "workload/trace_gen.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

constexpr double kDeltaF = 0.05;  // classification threshold (1 - delta_f)

struct Rates {
  double fpr = 0.0;  // x1e-4, as in the paper's y-axis
  double fnr = 0.0;
};

Rates evaluate(const std::vector<TracePacket>& trace, std::uint32_t stages,
               std::uint32_t slots, Time interval) {
  FlowCache cache(stages, slots);
  std::unordered_map<FlowId, std::uint64_t, FlowIdHash> truth;

  double fp_sum = 0, fn_sum = 0;
  std::uint64_t fp_opportunities = 0, fn_opportunities = 0;

  Time boundary = interval;
  auto settle = [&]() {
    if (truth.empty()) return;
    // Ground truth classification.
    std::uint64_t c_max = 0;
    for (const auto& [f, b] : truth) c_max = std::max(c_max, b);
    const double threshold = static_cast<double>(c_max) * (1.0 - kDeltaF);
    std::unordered_map<FlowId, bool, FlowIdHash> is_top;
    std::uint64_t true_top = 0;
    for (const auto& [f, b] : truth) {
      const bool top = static_cast<double>(b) >= threshold;
      is_top[f] = top;
      if (top) ++true_top;
    }

    // Cache-based classification.
    const auto entries = cache.poll_and_reset();
    std::uint64_t cache_max = 0;
    for (const auto& e : entries) cache_max = std::max(cache_max, e.bytes);
    const double cache_thresh = static_cast<double>(cache_max) * (1.0 - kDeltaF);
    std::uint64_t fp = 0;
    std::unordered_map<FlowId, bool, FlowIdHash> detected;
    for (const auto& e : entries) {
      if (static_cast<double>(e.bytes) >= cache_thresh) {
        detected[e.flow] = true;
        if (!is_top[e.flow]) ++fp;
      }
    }
    std::uint64_t fn = 0;
    for (const auto& [f, top] : is_top) {
      if (top && detected.find(f) == detected.end()) ++fn;
    }

    fp_sum += fp;
    fp_opportunities += truth.size() - true_top;
    fn_sum += fn;
    fn_opportunities += true_top;
    truth.clear();
  };

  for (const TracePacket& pkt : trace) {
    while (pkt.time >= boundary) {
      settle();
      boundary += interval;
    }
    truth[pkt.flow] += pkt.bytes;
    cache.add(pkt.flow, pkt.bytes);
  }
  settle();

  Rates r;
  if (fp_opportunities > 0) r.fpr = fp_sum / static_cast<double>(fp_opportunities);
  if (fn_opportunities > 0) r.fnr = fn_sum / static_cast<double>(fn_opportunities);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 13: flow-cache FPR/FNR on synthetic backbone traces", opts);

  const int trials = opts.full ? 20 : 3;
  TraceConfig tc;
  tc.duration = opts.full ? Seconds(5) : Seconds(2);

  std::vector<std::vector<TracePacket>> traces;
  for (int t = 0; t < trials; ++t) {
    tc.seed = opts.seed + static_cast<std::uint64_t>(t) * 7919;
    traces.push_back(SyntheticTrace::generate(tc));
  }
  const TraceSummary summary = SyntheticTrace::summarize(traces[0]);
  std::printf("trace: %llu packets, %llu flows, %.1f Gbps avg over %.1f s x %d trials\n\n",
              (unsigned long long)summary.packets, (unsigned long long)summary.flows,
              static_cast<double>(summary.bytes) * 8 / tc.duration.seconds() / 1e9,
              tc.duration.seconds(), trials);

  auto sweep = [&](std::uint32_t stages, std::uint32_t slots, Time interval) {
    Rates avg;
    for (const auto& trace : traces) {
      const Rates r = evaluate(trace, stages, slots, interval);
      avg.fpr += r.fpr / trials;
      avg.fnr += r.fnr / trials;
    }
    return avg;
  };

  std::printf("--- (a) varying round interval, 2048 slots/stage ---\n");
  std::printf("%-14s %10s %14s %10s\n", "interval[ms]", "stages", "FPR[x1e-4]", "FNR");
  for (int ms : {10, 20, 40, 60, 80, 100}) {
    for (std::uint32_t stages : {1u, 2u, 4u}) {
      const Rates r = sweep(stages, 2048, Milliseconds(ms));
      std::printf("%-14d %10u %14.3f %10.3f\n", ms, stages, r.fpr * 1e4, r.fnr);
    }
    std::fflush(stdout);
  }

  std::printf("\n--- (b) varying slot count, 100 ms interval ---\n");
  std::printf("%-10s %10s %14s %10s\n", "slots", "stages", "FPR[x1e-4]", "FNR");
  for (std::uint32_t slots : {512u, 1024u, 2048u, 4096u}) {
    for (std::uint32_t stages : {1u, 2u, 4u}) {
      const Rates r = sweep(stages, slots, Milliseconds(100));
      std::printf("%-10u %10u %14.3f %10.3f\n", slots, stages, r.fpr * 1e4, r.fnr);
    }
    std::fflush(stdout);
  }
  return 0;
}
