// cebinae_dispatch: fault-tolerant multi-process sweep dispatcher for every
// registered experiment.
//
//   cebinae_dispatch --experiment=<name> --workers=N [flags]
//
// Shards the experiment's job grid across N worker processes coordinated
// through a filesystem job ledger (src/dispatch). Aggregated stdout and the
// merged --out/--trace-out JSONL are byte-identical to
// `cebinae_bench --experiment=<name> --jobs=1` (modulo per-row wall_s),
// even when workers crash mid-sweep.
//
// Flags beyond the cebinae_bench set:
//   --workers=N       worker processes (0 = all hardware threads)
//   --lease-ttl=S     seconds of heartbeat silence before a job is re-stolen
//   --max-retries=N   distinct-worker failures tolerated before quarantine
//   --ledger=DIR      ledger directory (default <out>.ledger)
//   --fault-inject=M  test hook; "kill1" SIGKILLs one lease-holding worker
//   --resume          keep an existing ledger; done jobs are not re-run
//
// The hidden --worker=<id> mode is the exec target of the coordinator's
// fork/exec; it is not part of the public CLI.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "dispatch/coordinator.hpp"
#include "dispatch/worker.hpp"
#include "exp/registry.hpp"

namespace {

using cebinae::dispatch::DispatchOptions;
using cebinae::dispatch::WorkerOptions;
using cebinae::exp::ExperimentRegistry;
using cebinae::exp::ExperimentSpec;

int usage(FILE* out) {
  std::fprintf(
      out,
      "usage: cebinae_dispatch --experiment=<name> [--workers=N] [--full|--smoke]\n"
      "                        [--trials=N] [--seed=S] [--out=PATH] [--trace-out=PATH]\n"
      "                        [--lease-ttl=SECONDS] [--max-retries=N] [--ledger=DIR]\n"
      "                        [--fault-inject=kill1] [--resume] [--perf-out[=PATH]]\n"
      "       cebinae_dispatch --list\n\nexperiments:\n");
  for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
    std::fprintf(out, "  %-22s %s\n", spec->name.c_str(), spec->description.c_str());
  }
  return out == stdout ? 0 : 2;
}

// The path the coordinator should exec for workers: /proc/self/exe when
// resolvable (robust against PATH/cwd games), else argv[0].
std::string self_path(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  DispatchOptions opts;
  WorkerOptions wopts;
  bool worker_mode = false;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strncmp(arg, "--experiment=", 13) == 0) {
      opts.experiment = arg + 13;
    } else if (std::strncmp(arg, "--workers=", 10) == 0) {
      opts.workers = std::atoi(arg + 10);
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.run.full = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      opts.run.smoke = true;
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      opts.run.trials = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.run.base_seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts.run.out = arg + 6;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      opts.run.trace_out = arg + 12;
    } else if (std::strcmp(arg, "--resume") == 0) {
      opts.run.resume = true;
    } else if (std::strcmp(arg, "--perf-out") == 0) {
      opts.run.perf = true;
    } else if (std::strncmp(arg, "--perf-out=", 11) == 0) {
      opts.run.perf = true;
      opts.run.perf_out = arg + 11;
    } else if (std::strncmp(arg, "--lease-ttl=", 12) == 0) {
      opts.lease_ttl_s = std::atof(arg + 12);
    } else if (std::strncmp(arg, "--max-retries=", 14) == 0) {
      opts.max_retries = std::atoi(arg + 14);
    } else if (std::strncmp(arg, "--ledger=", 9) == 0) {
      opts.ledger_dir = arg + 9;
    } else if (std::strncmp(arg, "--fault-inject=", 15) == 0) {
      opts.fault_inject = arg + 15;
    } else if (std::strncmp(arg, "--worker=", 9) == 0) {
      worker_mode = true;
      wopts.worker_id = arg + 9;
    } else if (std::strncmp(arg, "--worker-index=", 15) == 0) {
      wopts.worker_index = std::atoi(arg + 15);
    } else if (arg[0] != '-' && opts.experiment.empty()) {
      opts.experiment = arg;  // positional experiment name
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n\n", arg);
      return usage(stderr);
    }
  }

  if (list) {
    for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
      std::printf("%s\t%s\n", spec->name.c_str(), spec->description.c_str());
    }
    return 0;
  }
  if (opts.run.full && opts.run.smoke) {
    std::fprintf(stderr, "error: --full and --smoke are mutually exclusive\n");
    return 2;
  }
  if (opts.experiment.empty()) return usage(stderr);
  if (!opts.fault_inject.empty() && opts.fault_inject != "kill1") {
    std::fprintf(stderr, "error: unknown --fault-inject mode '%s'\n",
                 opts.fault_inject.c_str());
    return 2;
  }

  if (worker_mode) {
    wopts.ledger_dir = opts.ledger_dir;
    wopts.experiment = opts.experiment;
    wopts.run = opts.run;
    wopts.lease_ttl_s = opts.lease_ttl_s;
    wopts.max_retries = opts.max_retries;
    if (wopts.ledger_dir.empty()) {
      std::fprintf(stderr, "error: --worker requires --ledger=DIR\n");
      return 2;
    }
    return cebinae::dispatch::run_worker(wopts);
  }

  if (opts.workers <= 0) {
    opts.workers = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  opts.self_path = self_path(argv[0]);
  return cebinae::dispatch::run_dispatch(opts);
}
