// Figure 12: parameter sensitivity. 16 NewReno flows vs 1 Cubic flow on
// 100 Mbps; the thresholds delta_p, delta_f, and tau sweep together from 1%
// to 100%. JFI and application goodput for Cebinae at each setting, with
// FIFO and FQ as flat references.
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioConfig base(const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.duration = opts.full ? Seconds(100) : Seconds(25);
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kNewReno, 16, Milliseconds(50));
  cfg.flows.push_back(FlowSpec{CcaType::kCubic, Milliseconds(50)});
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 12: threshold sensitivity (16 NewReno + 1 Cubic, 100 Mbps)", opts);

  ScenarioConfig fifo_cfg = base(opts);
  fifo_cfg.qdisc = QdiscKind::kFifo;
  const ScenarioResult fifo = Scenario(fifo_cfg).run();
  ScenarioConfig fq_cfg = base(opts);
  fq_cfg.qdisc = QdiscKind::kFqCoDel;
  const ScenarioResult fq = Scenario(fq_cfg).run();

  std::printf("references: FIFO JFI %.3f goodput %.1f Mbps | FQ JFI %.3f goodput %.1f Mbps\n\n",
              fifo.jfi, to_mbps(fifo.total_goodput_Bps), fq.jfi,
              to_mbps(fq.total_goodput_Bps));

  std::printf("%-14s %10s %16s\n", "thresholds[%]", "JFI", "Goodput[Mbps]");
  for (double pct : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    ScenarioConfig cfg = base(opts);
    cfg.qdisc = QdiscKind::kCebinae;
    cfg.cebinae.delta_port = pct / 100.0;
    cfg.cebinae.delta_flow = pct / 100.0;
    cfg.cebinae.tau = pct / 100.0;
    const ScenarioResult r = Scenario(cfg).run();
    std::printf("%-14.0f %10.3f %16.1f\n", pct, r.jfi, to_mbps(r.total_goodput_Bps));
    std::fflush(stdout);
  }
  std::printf("\n(expected shape: fairness comparable to FQ at small thresholds; goodput\n"
              " decays as thresholds grow and collapses once they cross the fair share)\n");
  return 0;
}
