// Figure 12: parameter sensitivity. 16 NewReno flows vs 1 Cubic flow on
// 100 Mbps; the thresholds delta_p, delta_f, and tau sweep together from 1%
// to 100%. JFI and application goodput for Cebinae at each setting, with
// FIFO and FQ as flat references.
#include <cstdio>
#include <iterator>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioConfig base(const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.duration = opts.full ? Seconds(100) : Seconds(25);
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kNewReno, 16, Milliseconds(50));
  cfg.flows.push_back(FlowSpec{CcaType::kCubic, Milliseconds(50)});
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 12: threshold sensitivity (16 NewReno + 1 Cubic, 100 Mbps)", opts);

  const std::vector<double> kThresholdsPct = {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};

  // One batch: 2 reference qdiscs followed by the 7-point Cebinae threshold
  // axis, all run across --jobs workers.
  std::vector<exp::ExperimentJob> jobs =
      exp::SweepGrid(base(opts)).qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel}).build();
  {
    ScenarioConfig ceb = base(opts);
    ceb.qdisc = QdiscKind::kCebinae;
    std::vector<exp::ExperimentJob> sweep =
        exp::SweepGrid(ceb)
            .axis("thresholds_pct", kThresholdsPct,
                  [](ScenarioConfig& cfg, double pct) {
                    cfg.cebinae.delta_port = pct / 100.0;
                    cfg.cebinae.delta_flow = pct / 100.0;
                    cfg.cebinae.tau = pct / 100.0;
                  })
            .build();
    jobs.insert(jobs.end(), std::make_move_iterator(sweep.begin()),
                std::make_move_iterator(sweep.end()));
  }
  const std::vector<exp::RunRecord> records = run_batch("fig12_sensitivity", jobs, opts);

  const ScenarioResult& fifo = records[0].result;
  const ScenarioResult& fq = records[1].result;
  std::printf("references: FIFO JFI %.3f goodput %.1f Mbps | FQ JFI %.3f goodput %.1f Mbps\n\n",
              fifo.jfi, to_mbps(fifo.total_goodput_Bps), fq.jfi,
              to_mbps(fq.total_goodput_Bps));

  std::printf("%-14s %10s %16s\n", "thresholds[%]", "JFI", "Goodput[Mbps]");
  for (std::size_t i = 0; i < kThresholdsPct.size(); ++i) {
    const ScenarioResult& r = records[2 + i].result;
    std::printf("%-14.0f %10.3f %16.1f\n", kThresholdsPct[i], r.jfi,
                to_mbps(r.total_goodput_Bps));
  }
  std::printf("\n(expected shape: fairness comparable to FQ at small thresholds; goodput\n"
              " decays as thresholds grow and collapses once they cross the fair share)\n");
  return 0;
}
