// Figure 7: per-flow goodput for 16 TCP Vegas flows (0-15) competing with
// one NewReno flow (16) over a 100 Mbps bottleneck, FIFO vs Cebinae.
// The paper's headline: FIFO lets NewReno take ~80% of the link
// (JFI ~0.093); Cebinae redistributes it (JFI ~0.98).
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/jfi.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioResult run(QdiscKind qdisc, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = opts.full ? Seconds(100) : Seconds(30);
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kVegas, 16, Milliseconds(100));
  cfg.flows.push_back(FlowSpec{CcaType::kNewReno, Milliseconds(100)});
  return Scenario(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 7: 16 Vegas vs 1 NewReno over 100 Mbps", opts);

  const ScenarioResult fifo = run(QdiscKind::kFifo, opts);
  const ScenarioResult ceb = run(QdiscKind::kCebinae, opts);

  std::printf("%-10s %18s %18s\n", "Flow", "FIFO [Mbps]", "Cebinae [Mbps]");
  for (std::size_t i = 0; i < fifo.goodput_Bps.size(); ++i) {
    std::printf("%-10s %18.2f %18.2f\n",
                (i < 16 ? ("Vegas-" + std::to_string(i)) : std::string("NewReno-16")).c_str(),
                to_mbps(fifo.goodput_Bps[i]), to_mbps(ceb.goodput_Bps[i]));
  }
  std::printf("\nJFI:     FIFO %.3f   Cebinae %.3f\n", fifo.jfi, ceb.jfi);
  std::printf("Goodput: FIFO %.1f Mbps   Cebinae %.1f Mbps\n",
              to_mbps(fifo.total_goodput_Bps), to_mbps(ceb.total_goodput_Bps));
  return 0;
}
