// Figure 13: false-positive and false-negative rates of ⊤-flow detection
// under a synthetic ISP-backbone trace (the documented substitution for the
// paper's CAIDA traces).
//   (a) sweep the round interval at 2048 slots/stage;
//   (b) sweep the slot count at a 100 ms interval;
// each for 1-, 2-, and 4-stage caches.
//
// These are custom (non-Scenario) jobs: every (sweep point, trial) pair is
// one job whose closure generates the trial's packet trace and replays it
// through a FlowCache. All points of the same trial share one trace seed so
// the sweep compares cache configurations on identical traffic; the seed is
// captured at job-build time (base_seed + trial * 7919, as the original
// bench did), not taken from the runner's per-job derivation.
#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/flow_cache.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "workload/trace_gen.hpp"

namespace cebinae {
namespace {

constexpr double kDeltaF = 0.05;  // classification threshold (1 - delta_f)

const std::vector<int> kIntervalsMs = {10, 20, 40, 60, 80, 100};
const std::vector<std::uint32_t> kStages = {1, 2, 4};
const std::vector<std::uint32_t> kSlots = {512, 1024, 2048, 4096};

struct Rates {
  double fpr = 0.0;
  double fnr = 0.0;
};

Rates evaluate(const std::vector<TracePacket>& trace, std::uint32_t stages,
               std::uint32_t slots, Time interval) {
  FlowCache cache(stages, slots);
  std::unordered_map<FlowId, std::uint64_t, FlowIdHash> truth;

  double fp_sum = 0, fn_sum = 0;
  std::uint64_t fp_opportunities = 0, fn_opportunities = 0;

  Time boundary = interval;
  auto settle = [&]() {
    if (truth.empty()) return;
    // Ground truth classification.
    std::uint64_t c_max = 0;
    for (const auto& [f, b] : truth) c_max = std::max(c_max, b);
    const double threshold = static_cast<double>(c_max) * (1.0 - kDeltaF);
    std::unordered_map<FlowId, bool, FlowIdHash> is_top;
    std::uint64_t true_top = 0;
    for (const auto& [f, b] : truth) {
      const bool top = static_cast<double>(b) >= threshold;
      is_top[f] = top;
      if (top) ++true_top;
    }

    // Cache-based classification.
    const auto entries = cache.poll_and_reset();
    std::uint64_t cache_max = 0;
    for (const auto& e : entries) cache_max = std::max(cache_max, e.bytes);
    const double cache_thresh = static_cast<double>(cache_max) * (1.0 - kDeltaF);
    std::uint64_t fp = 0;
    std::unordered_map<FlowId, bool, FlowIdHash> detected;
    for (const auto& e : entries) {
      if (static_cast<double>(e.bytes) >= cache_thresh) {
        detected[e.flow] = true;
        if (!is_top[e.flow]) ++fp;
      }
    }
    std::uint64_t fn = 0;
    for (const auto& [f, top] : is_top) {
      if (top && detected.find(f) == detected.end()) ++fn;
    }

    fp_sum += fp;
    fp_opportunities += truth.size() - true_top;
    fn_sum += fn;
    fn_opportunities += true_top;
    truth.clear();
  };

  for (const TracePacket& pkt : trace) {
    while (pkt.time >= boundary) {
      settle();
      boundary += interval;
    }
    truth[pkt.flow] += pkt.bytes;
    cache.add(pkt.flow, pkt.bytes);
  }
  settle();

  Rates r;
  if (fp_opportunities > 0) r.fpr = fp_sum / static_cast<double>(fp_opportunities);
  if (fn_opportunities > 0) r.fnr = fn_sum / static_cast<double>(fn_opportunities);
  return r;
}

int default_trials(const exp::RunOptions& opts) {
  if (opts.smoke) return 1;
  return opts.full ? 20 : 3;
}

Time trace_duration(const exp::RunOptions& opts) {
  return opts.scaled(Seconds(5), Seconds(2));
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  const int trials = opts.trials_or(default_trials(opts));
  const Time duration = trace_duration(opts);

  std::vector<exp::ExperimentJob> jobs;
  auto add_point = [&](const char* sweep, int interval_ms, std::uint32_t stages,
                       std::uint32_t slots) {
    for (int t = 0; t < trials; ++t) {
      exp::ExperimentJob job;
      job.label = std::string("sweep=") + sweep;
      job.params.set("sweep", sweep);
      if (std::string(sweep) == "a") {
        job.label += " interval_ms=" + std::to_string(interval_ms);
        job.params.set("interval_ms", interval_ms);
      } else {
        job.label += " slots=" + std::to_string(slots);
        job.params.set("slots", static_cast<std::uint64_t>(slots));
      }
      job.label += " stages=" + std::to_string(stages);
      job.params.set("stages", static_cast<std::uint64_t>(stages));
      if (trials > 1) {
        job.label += " trial=" + std::to_string(t);
        job.params.set("trial", t);
      }
      const std::uint64_t trace_seed =
          opts.base_seed + static_cast<std::uint64_t>(t) * 7919;
      job.custom = [=](std::uint64_t /*seed*/) {
        TraceConfig tc;
        tc.duration = duration;
        tc.seed = trace_seed;
        const Rates r = evaluate(SyntheticTrace::generate(tc), stages, slots,
                                 Milliseconds(interval_ms));
        return std::vector<std::pair<std::string, double>>{{"fpr_1e4", r.fpr * 1e4},
                                                           {"fnr", r.fnr}};
      };
      jobs.push_back(std::move(job));
    }
  };

  for (int ms : kIntervalsMs) {
    for (std::uint32_t stages : kStages) add_point("a", ms, stages, 2048);
  }
  for (std::uint32_t slots : kSlots) {
    for (std::uint32_t stages : kStages) add_point("b", 100, stages, slots);
  }
  return jobs;
}

void report(const exp::RunOptions& opts, const std::vector<exp::ResultRow>& rows) {
  {
    TraceConfig tc;
    tc.duration = trace_duration(opts);
    tc.seed = opts.base_seed;
    const TraceSummary summary = SyntheticTrace::summarize(SyntheticTrace::generate(tc));
    std::printf("trace: %llu packets, %llu flows, %.1f Gbps avg over %.1f s x %d trials\n\n",
                static_cast<unsigned long long>(summary.packets),
                static_cast<unsigned long long>(summary.flows),
                static_cast<double>(summary.bytes) * 8 / tc.duration.seconds() / 1e9,
                tc.duration.seconds(), opts.trials_or(default_trials(opts)));
  }

  // Rows arrive in build order: sweep (a) points first, then sweep (b).
  std::size_t r = 0;
  std::printf("--- (a) varying round interval, 2048 slots/stage ---\n");
  std::printf("%-14s %10s %16s %12s\n", "interval[ms]", "stages", "FPR[x1e-4]", "FNR");
  for (int ms : kIntervalsMs) {
    for (std::uint32_t stages : kStages) {
      if (r >= rows.size()) return;
      std::printf("%-14d %10u %16s %12s\n", ms, stages,
                  exp::pm(*rows[r].metric("fpr_1e4"), 3).c_str(),
                  exp::pm(*rows[r].metric("fnr"), 3).c_str());
      ++r;
    }
    std::fflush(stdout);
  }

  std::printf("\n--- (b) varying slot count, 100 ms interval ---\n");
  std::printf("%-10s %10s %16s %12s\n", "slots", "stages", "FPR[x1e-4]", "FNR");
  for (std::uint32_t slots : kSlots) {
    for (std::uint32_t stages : kStages) {
      if (r >= rows.size()) return;
      std::printf("%-10u %10u %16s %12s\n", slots, stages,
                  exp::pm(*rows[r].metric("fpr_1e4"), 3).c_str(),
                  exp::pm(*rows[r].metric("fnr"), 3).c_str());
      ++r;
    }
    std::fflush(stdout);
  }
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig13",
    "Figure 13: flow-cache FPR/FNR on synthetic backbone traces",
    "flow-cache FPR/FNR vs round interval, slots, and stages",
    1,  // effective default is full/smoke-aware; see default_trials()
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
