// Table 2: throughput, goodput, and JFI for 25 network configurations
// (bandwidth x RTT x buffer x CCA mix), each under FIFO, ideal FQ (FQ-CoDel
// with per-flow queues), and Cebinae.
#include <cstdio>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

struct CcaGroup {
  CcaType cca;
  int count;
};

struct Row {
  std::uint64_t bps;
  std::vector<double> rtts_ms;  // one per group, or a single shared value
  std::uint64_t buf_mtu;
  std::vector<CcaGroup> groups;
};

// The 25 configurations of Table 2, in paper order.
const std::vector<Row>& rows_of_table2() {
  static const std::vector<Row> kRows = {
      {100'000'000, {20.8, 28}, 250, {{CcaType::kNewReno, 2}, {CcaType::kNewReno, 8}}},
      {100'000'000, {20.4, 40}, 350, {{CcaType::kCubic, 8}, {CcaType::kCubic, 2}}},
      {100'000'000, {20.4, 60}, 500, {{CcaType::kVegas, 2}, {CcaType::kVegas, 8}}},
      {100'000'000, {200}, 1700, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
      {100'000'000, {100}, 850, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
      {100'000'000, {50}, 420, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
      {100'000'000, {50}, 420, {{CcaType::kVegas, 16}, {CcaType::kCubic, 1}}},
      {100'000'000, {100}, 850, {{CcaType::kVegas, 16}, {CcaType::kNewReno, 1}}},
      {100'000'000, {100}, 850, {{CcaType::kVegas, 128}, {CcaType::kNewReno, 1}}},
      {100'000'000, {60}, 500,
       {{CcaType::kVegas, 8}, {CcaType::kNewReno, 8}, {CcaType::kCubic, 2}}},
      {1'000'000'000, {5}, 420, {{CcaType::kNewReno, 32}, {CcaType::kCubic, 8}}},
      {1'000'000'000, {10}, 850, {{CcaType::kVegas, 128}, {CcaType::kCubic, 1}}},
      {1'000'000'000, {10}, 850, {{CcaType::kVegas, 1024}, {CcaType::kCubic, 2}}},
      {1'000'000'000, {50}, 4200, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 1}}},
      {1'000'000'000, {50}, 4200, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
      {1'000'000'000, {50}, 21000, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
      {1'000'000'000, {100}, 8350, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
      {1'000'000'000, {10}, 850, {{CcaType::kVegas, 64}, {CcaType::kNewReno, 1}}},
      {1'000'000'000, {100}, 8500, {{CcaType::kVegas, 4}, {CcaType::kNewReno, 128}}},
      {1'000'000'000, {100, 64}, 8500, {{CcaType::kVegas, 4}, {CcaType::kNewReno, 128}}},
      {1'000'000'000, {100}, 8500, {{CcaType::kVegas, 8}, {CcaType::kNewReno, 128}}},
      {1'000'000'000, {10}, 850, {{CcaType::kVegas, 128}, {CcaType::kBbr, 1}}},
      {1'000'000'000, {100}, 8500, {{CcaType::kBic, 2}, {CcaType::kCubic, 32}}},
      {10'000'000'000, {50, 44}, 41667, {{CcaType::kNewReno, 128}, {CcaType::kCubic, 16}}},
      {10'000'000'000, {28, 28}, 25000, {{CcaType::kNewReno, 128}, {CcaType::kCubic, 128}}},
  };
  return kRows;
}

std::string describe(const Row& row) {
  std::string s = "{";
  for (std::size_t g = 0; g < row.groups.size(); ++g) {
    if (g) s += ", ";
    s += std::string(to_string(row.groups[g].cca)) + ":" +
         std::to_string(row.groups[g].count);
  }
  s += "}";
  return s;
}

// Scaled run durations: long enough for convergence behavior to show, short
// enough that the whole suite stays interactive; faster links converge in
// fewer wall-clock seconds.
Time duration_for(const exp::RunOptions& opts, std::uint64_t bps) {
  if (bps >= 10'000'000'000ull) return opts.scaled(Seconds(100), Seconds(5));
  if (bps >= 1'000'000'000ull) return opts.scaled(Seconds(100), Seconds(12));
  return opts.scaled(Seconds(100), Seconds(30));
}

// Configure a ScenarioConfig for one of the 25 rows (qdisc is applied by
// the sweep's qdisc dimension).
void apply_row(ScenarioConfig& cfg, const Row& row, const exp::RunOptions& opts) {
  cfg.bottleneck_bps = row.bps;
  cfg.buffer_bytes = row.buf_mtu * kMtuBytes;
  cfg.duration = duration_for(opts, row.bps);
  cfg.flows.clear();
  for (std::size_t g = 0; g < row.groups.size(); ++g) {
    const double rtt_ms =
        row.rtts_ms.size() == 1 ? row.rtts_ms[0] : row.rtts_ms[g % row.rtts_ms.size()];
    for (int i = 0; i < row.groups[g].count; ++i) {
      FlowSpec f;
      f.cca = row.groups[g].cca;
      f.rtt = MillisecondsF(rtt_ms);
      cfg.flows.push_back(f);
    }
  }
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  // 25 rows x 3 qdiscs (x trials), expanded row-outermost so aggregated row
  // index is table_row * 3 + qdisc.
  std::vector<std::pair<std::string, exp::SweepGrid::Mutator>> row_variants;
  for (std::size_t r = 0; r < rows_of_table2().size(); ++r) {
    row_variants.emplace_back(
        "r" + std::to_string(r),
        [r, opts](ScenarioConfig& cfg) { apply_row(cfg, rows_of_table2()[r], opts); });
  }
  ScenarioConfig base;
  base.flows = {FlowSpec{}};  // placeholder; every row mutator rewrites flows
  return exp::SweepGrid(base)
      .variants("row", std::move(row_variants))
      .qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  std::printf("%-9s %-14s %-7s %-28s | %-29s | %-29s | %-23s\n", "Btl.BW", "RTTs[ms]",
              "Buf", "CCAs", "Throughput[Mbps] F/FQ/Ceb", "Goodput[Mbps] F/FQ/Ceb",
              "JFI FIFO/FQ/Ceb");
  for (std::size_t ri = 0; ri < rows_of_table2().size() && ri * 3 + 2 < rows.size(); ++ri) {
    const Row& row = rows_of_table2()[ri];
    const exp::ResultRow& fifo = rows[ri * 3 + 0];
    const exp::ResultRow& fq = rows[ri * 3 + 1];
    const exp::ResultRow& ceb = rows[ri * 3 + 2];

    std::string rtts = "{";
    for (std::size_t i = 0; i < row.rtts_ms.size(); ++i) {
      if (i) rtts += ",";
      rtts += std::to_string(row.rtts_ms[i]).substr(0, 4);
    }
    rtts += "}";

    auto col = [](const exp::ResultRow& r, const char* name, int prec) {
      const exp::Aggregate* a = r.metric(name);
      return a == nullptr ? std::string("-") : exp::pm(*a, prec);
    };
    std::printf(
        "%-9s %-14s %-7llu %-28s | %9s %9s %9s | %9s %9s %9s | %7s %7s %7s\n",
        row.bps >= 10'000'000'000ull ? "10 Gbps"
        : row.bps >= 1'000'000'000ull ? "1 Gbps"
                                      : "100 Mbps",
        rtts.c_str(), static_cast<unsigned long long>(row.buf_mtu), describe(row).c_str(),
        col(fifo, "throughput_mbps", 1).c_str(), col(fq, "throughput_mbps", 1).c_str(),
        col(ceb, "throughput_mbps", 1).c_str(), col(fifo, "goodput_mbps", 1).c_str(),
        col(fq, "goodput_mbps", 1).c_str(), col(ceb, "goodput_mbps", 1).c_str(),
        col(fifo, "jfi", 3).c_str(), col(fq, "jfi", 3).c_str(), col(ceb, "jfi", 3).c_str());
    std::fflush(stdout);
  }
}

const exp::Registration registration{exp::ExperimentSpec{
    "table2",
    "Table 2: CCA/RTT/bandwidth sweep",
    "25 configs (bw x RTT x buffer x CCA mix) under FIFO/FQ/Cebinae",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
