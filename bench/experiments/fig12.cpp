// Figure 12: parameter sensitivity. 16 NewReno flows vs 1 Cubic flow on
// 100 Mbps; the thresholds delta_p, delta_f, and tau sweep together from 1%
// to 100%. JFI and application goodput for Cebinae at each setting, with
// FIFO and FQ as flat references.
#include <cstdio>
#include <iterator>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

const std::vector<double> kThresholdsPct = {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0};

ScenarioConfig base_config(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.duration = opts.scaled(Seconds(100), Seconds(25));
  cfg.flows = flows_of(CcaType::kNewReno, 16, Milliseconds(50));
  cfg.flows.push_back(FlowSpec{CcaType::kCubic, Milliseconds(50)});
  return cfg;
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  // 2 reference qdiscs followed by the 7-point Cebinae threshold axis.
  const int trials = opts.trials_or(1);
  std::vector<exp::ExperimentJob> jobs = exp::SweepGrid(base_config(opts))
                                             .qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel})
                                             .trials(trials)
                                             .build();
  ScenarioConfig ceb = base_config(opts);
  ceb.qdisc = QdiscKind::kCebinae;
  std::vector<exp::ExperimentJob> sweep =
      exp::SweepGrid(ceb)
          .axis("thresholds_pct", kThresholdsPct,
                [](ScenarioConfig& cfg, double pct) {
                  cfg.cebinae.delta_port = pct / 100.0;
                  cfg.cebinae.delta_flow = pct / 100.0;
                  cfg.cebinae.tau = pct / 100.0;
                })
          .trials(trials)
          .build();
  jobs.insert(jobs.end(), std::make_move_iterator(sweep.begin()),
              std::make_move_iterator(sweep.end()));
  return jobs;
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  if (rows.size() < 2 + kThresholdsPct.size()) return;
  std::printf("references: FIFO JFI %s goodput %s Mbps | FQ JFI %s goodput %s Mbps\n\n",
              exp::pm(*rows[0].metric("jfi"), 3).c_str(),
              exp::pm(*rows[0].metric("goodput_mbps"), 1).c_str(),
              exp::pm(*rows[1].metric("jfi"), 3).c_str(),
              exp::pm(*rows[1].metric("goodput_mbps"), 1).c_str());

  std::printf("%-14s %14s %18s\n", "thresholds[%]", "JFI", "Goodput[Mbps]");
  for (std::size_t i = 0; i < kThresholdsPct.size(); ++i) {
    const exp::ResultRow& r = rows[2 + i];
    std::printf("%-14.0f %14s %18s\n", kThresholdsPct[i],
                exp::pm(*r.metric("jfi"), 3).c_str(),
                exp::pm(*r.metric("goodput_mbps"), 1).c_str());
  }
  std::printf("\n(expected shape: fairness comparable to FQ at small thresholds; goodput\n"
              " decays as thresholds grow and collapses once they cross the fair share)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig12",
    "Figure 12: threshold sensitivity (16 NewReno + 1 Cubic, 100 Mbps)",
    "delta_p/delta_f/tau sweep 1-100% vs FIFO and FQ references",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
