// "micro": the event-core microbench suite backing the repo's perf
// trajectory and the CI perf-regression gate (scripts/perf_gate.py).
//
// Three custom jobs, each measuring scheduler events per wall-clock second:
//
//   bench=sched_churn  raw scheduler throughput: schedule/fire plus a
//                      cancel-heavy phase (the TCP RTO rearm pattern —
//                      every "ACK" cancels one pending timer and arms a
//                      fresh one), no packets involved.
//   bench=datapath     single-bottleneck dumbbell (8 NewReno flows through
//                      a FIFO): the per-packet-hop cost of device + node +
//                      qdisc + TCP together. This is the row the >= 1.5x
//                      speedup target and the regression gate key on.
//   bench=macro        fig-scale run: 16 mixed-CCA flows through a Cebinae
//                      bottleneck, exercising rotation/cache events too.
//
// stdout reports only deterministic quantities (executed event counts and a
// goodput checksum) so `--jobs=1` and `--jobs=N` stay byte-identical; the
// wall-clock-dependent events_per_sec lands in the per-record extras, the
// JSONL rows, and the --perf-out summary's "metrics" object, which is what
// the perf gate diffs against bench/baselines/.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "runner/scenario.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_s(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Raw scheduler churn: a self-rescheduling event ladder plus the
// cancel/rearm pattern TCP senders impose on every ACK.
std::vector<std::pair<std::string, double>> run_sched_churn(int rounds) {
  Scheduler sched;
  const auto t0 = Clock::now();

  std::uint64_t fired = 0;
  // Phase 1: pure schedule/fire throughput, FIFO ties included.
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < 64; ++i) {
      sched.schedule(Nanoseconds(100 * (i % 8)), [&fired] { ++fired; });
    }
    sched.run();
  }
  // Phase 2: cancel-heavy (rearm): keep one pending "RTO" that every
  // iteration cancels and replaces, while a data event fires.
  EventId rto;
  for (int r = 0; r < rounds * 64; ++r) {
    sched.cancel(rto);
    rto = sched.schedule(Milliseconds(200), [&fired] { ++fired; });
    sched.schedule(Nanoseconds(100), [&fired] { ++fired; });
    while (sched.pending_events() > 1) {
      sched.run_until(sched.now() + Nanoseconds(100));
    }
  }
  sched.cancel(rto);

  const double wall = elapsed_s(t0);
  const double events = static_cast<double>(sched.executed_events());
  return {
      {"events", events},
      {"fired", static_cast<double>(fired)},
      {"events_per_sec", wall > 0 ? events / wall : 0.0},
  };
}

// Run a Scenario and report the event-core rate plus deterministic echoes.
std::vector<std::pair<std::string, double>> run_scenario_bench(ScenarioConfig cfg,
                                                               std::uint64_t seed) {
  cfg.seed = seed;
  Scenario scenario(std::move(cfg));
  const auto t0 = Clock::now();
  const ScenarioResult result = scenario.run();
  const double wall = elapsed_s(t0);
  const double events =
      static_cast<double>(scenario.network().scheduler().executed_events());
  return {
      {"events", events},
      {"goodput_checksum_mbps", exp::to_mbps(result.total_goodput_Bps)},
      {"events_per_sec", wall > 0 ? events / wall : 0.0},
  };
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  std::vector<exp::ExperimentJob> jobs;

  {
    exp::ExperimentJob job;
    job.label = "bench=sched_churn";
    job.params.set("bench", "sched_churn");
    const int rounds = opts.smoke ? 50 : (opts.full ? 20000 : 1000);
    job.custom = [rounds](std::uint64_t) { return run_sched_churn(rounds); };
    jobs.push_back(std::move(job));
  }

  {
    exp::ExperimentJob job;
    job.label = "bench=datapath";
    job.params.set("bench", "datapath");
    ScenarioConfig cfg;
    cfg.qdisc = QdiscKind::kFifo;
    cfg.flows = flows_of(CcaType::kNewReno, 8, Milliseconds(20));
    cfg.duration = opts.scaled(Seconds(60), Seconds(2));
    job.custom = [cfg](std::uint64_t seed) { return run_scenario_bench(cfg, seed); };
    jobs.push_back(std::move(job));
  }

  {
    exp::ExperimentJob job;
    job.label = "bench=macro";
    job.params.set("bench", "macro");
    ScenarioConfig cfg;
    cfg.qdisc = QdiscKind::kCebinae;
    cfg.flows = flows_of(CcaType::kNewReno, 8, Milliseconds(20));
    const std::vector<FlowSpec> cubic = flows_of(CcaType::kCubic, 8, Milliseconds(40));
    cfg.flows.insert(cfg.flows.end(), cubic.begin(), cubic.end());
    cfg.duration = opts.scaled(Seconds(10), Seconds(1));
    job.custom = [cfg](std::uint64_t seed) { return run_scenario_bench(cfg, seed); };
    jobs.push_back(std::move(job));
  }

  return exp::replicate_trials(std::move(jobs), opts.trials_or(1));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  // Deterministic fields only: event counts are a pure function of the
  // seeded simulation, so this table is byte-identical across --jobs and
  // safe for bench_smoke's determinism diff. Rates live in the JSONL and
  // --perf-out outputs.
  std::printf("%-14s %14s %18s\n", "bench", "events", "goodput[Mbps]");
  for (const exp::ResultRow& r : rows) {
    const exp::Aggregate* chk = r.metric("goodput_checksum_mbps");
    std::printf("%-14s %14.0f %18s\n", r.label.c_str(), r.mean("events"),
                chk != nullptr ? exp::pm(*chk).c_str() : "-");
  }
  std::printf("\n(events/sec for these rows is recorded via --perf-out; compare with\n"
              " bench/baselines/BENCH_micro.json through scripts/perf_gate.py)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "micro",
    "Event-core microbenches (scheduler churn / datapath / macro)",
    "scheduler and packet-hop events/sec; feeds the CI perf gate",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
