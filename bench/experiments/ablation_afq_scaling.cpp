// Ablation (paper §2, Equation 1): AFQ's fairness needs nQ x BpR to cover
// every flow's buffering requirement (~the bandwidth-delay product), so its
// queue requirements grow with RTT — while Cebinae holds 2 queues.
//
// Sweep the flows' RTT with a fixed AFQ calendar (nQ x BpR) and watch AFQ's
// high-RTT throughput collapse as the horizon truncates the flows' windows;
// Cebinae (2 queues) and FIFO are unaffected.
#include <cstdio>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

const std::vector<double> kRttsMs = {10, 40, 100, 200};
const std::vector<const char*> kSchemes = {"FIFO", "AFQ8", "AFQ32", "AFQ128", "Cebinae"};

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 1700ull * kMtuBytes;
  cfg.afq.bytes_per_round = 2 * kMtuBytes;
  cfg.duration = opts.scaled(Seconds(100), Seconds(30));
  cfg.flows = {FlowSpec{}};  // placeholder; the axis rewrites flows

  auto afq = [](std::uint32_t nq) {
    return [nq](ScenarioConfig& c) {
      c.qdisc = QdiscKind::kAfq;
      c.afq.num_queues = nq;
    };
  };
  return exp::SweepGrid(cfg)
      .axis("rtt_ms", kRttsMs,
            [](ScenarioConfig& c, double rtt_ms) {
              c.flows = flows_of(CcaType::kNewReno, 4, MillisecondsF(rtt_ms));
            })
      .variants("scheme",
                {{"FIFO", [](ScenarioConfig& c) { c.qdisc = QdiscKind::kFifo; }},
                 {"AFQ8", afq(8)},
                 {"AFQ32", afq(32)},
                 {"AFQ128", afq(128)},
                 {"Cebinae", [](ScenarioConfig& c) { c.qdisc = QdiscKind::kCebinae; }}})
      .trials(opts.trials_or(1))
      .build();
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  std::printf("4x NewReno on 100 Mbps; AFQ BpR = 2 MTU.\n");
  std::printf("per-flow buffer_req ~= BDP/4; AFQ serves a flow only if it fits nQ x BpR.\n\n");
  std::printf("%-8s | %12s | %20s %20s %20s | %12s\n", "RTT[ms]", "FIFO gput", "AFQ(nQ=8)",
              "AFQ(nQ=32)", "AFQ(nQ=128)", "Cebinae");
  const std::size_t n_schemes = kSchemes.size();
  for (std::size_t i = 0; (i + 1) * n_schemes <= rows.size() && i < kRttsMs.size(); ++i) {
    const exp::ResultRow& fifo = rows[i * n_schemes + 0];
    const exp::ResultRow& afq8 = rows[i * n_schemes + 1];
    const exp::ResultRow& afq32 = rows[i * n_schemes + 2];
    const exp::ResultRow& afq128 = rows[i * n_schemes + 3];
    const exp::ResultRow& ceb = rows[i * n_schemes + 4];
    auto afq_col = [](const exp::ResultRow& r) {
      return exp::pm(*r.metric("goodput_mbps"), 1) + " (" + exp::pm(*r.metric("jfi"), 2) +
             ")";
    };
    std::printf("%-8.0f | %9s Mb | %20s %20s %20s | %9s Mb\n", kRttsMs[i],
                exp::pm(*fifo.metric("goodput_mbps"), 1).c_str(), afq_col(afq8).c_str(),
                afq_col(afq32).c_str(), afq_col(afq128).c_str(),
                exp::pm(*ceb.metric("goodput_mbps"), 1).c_str());
    std::fflush(stdout);
  }
  std::printf("\n(AFQ numbers show goodput with JFI in parens: with too few queues the\n"
              " calendar horizon caps each flow's usable window, collapsing high-RTT\n"
              " throughput; Cebinae needs only 2 queues at any RTT)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "ablation_afq_scaling",
    "Ablation: AFQ calendar requirements vs RTT (Equation 1)",
    "AFQ queue-count scaling vs RTT against FIFO and Cebinae",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
