// Figure 8: per-flow goodput CDFs.
//   (a) 128 NewReno vs 2 BBR over 1 Gbps — Cebinae prevents the BBR flows
//       from claiming an outsized share.
//   (b) 128 NewReno (64 ms RTT) vs 4 Vegas (100 ms RTT) over 1 Gbps —
//       Cebinae mitigates Vegas starvation.
//
// With --trials=N the CDFs pool the per-flow goodputs of every trial, and
// the minority-share summary lines aggregate per trial (mean ± stddev).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

// Flows past this index are the minority CCA (BBR or Vegas) in both mixes.
constexpr std::size_t kMajorityFlows = 128;

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig common;
  common.bottleneck_bps = 1'000'000'000;
  common.duration = opts.scaled(Seconds(100), Seconds(12));
  common.flows = {FlowSpec{}};  // placeholder, replaced per mix
  return exp::SweepGrid(common)
      .variants(
          "mix",
          {{"reno128_bbr2",
            [](ScenarioConfig& cfg) {
              // (a) 128 NewReno + 2 BBR, equal 100 ms RTTs, 8350 MTU
              // (~1 BDP) buffer (Table 2's row for this mix).
              cfg.buffer_bytes = 8350ull * kMtuBytes;
              cfg.flows = flows_of(CcaType::kNewReno, 128, Milliseconds(100));
              cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
              cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(100)});
            }},
           {"reno128_vegas4",
            [](ScenarioConfig& cfg) {
              // (b) 128 NewReno @64 ms + 4 Vegas @100 ms.
              cfg.buffer_bytes = 8500ull * kMtuBytes;
              cfg.flows = flows_of(CcaType::kNewReno, 128, Milliseconds(64));
              for (int i = 0; i < 4; ++i) {
                cfg.flows.push_back(FlowSpec{CcaType::kVegas, Milliseconds(100)});
              }
            }}})
      .qdiscs({QdiscKind::kFifo, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

void minority_metrics(const exp::ExperimentJob&, const exp::RunRecord& rec,
                      std::vector<std::pair<std::string, double>>& out) {
  const std::vector<double>& g = rec.result.goodput_Bps;
  if (g.size() <= kMajorityFlows) return;
  double minority = 0.0;
  for (std::size_t i = kMajorityFlows; i < g.size(); ++i) minority += g[i];
  const double n = static_cast<double>(g.size() - kMajorityFlows);
  if (rec.result.total_goodput_Bps > 0.0) {
    out.emplace_back("minority_share_pct", 100.0 * minority / rec.result.total_goodput_Bps);
  }
  out.emplace_back("minority_mean_mbps", exp::to_mbps(minority / n));
}

// Per-flow goodputs of every (non-skipped) trial, pooled into one sample set.
std::vector<double> pooled_goodputs(const exp::ResultRow& row) {
  std::vector<double> out;
  for (const exp::RunRecord* rec : row.trials) {
    if (rec == nullptr || rec->skipped) continue;
    out.insert(out.end(), rec->result.goodput_Bps.begin(), rec->result.goodput_Bps.end());
  }
  return out;
}

void print_cdf(const char* label, std::vector<double> fifo, std::vector<double> ceb) {
  if (fifo.empty() || ceb.empty()) return;
  std::sort(fifo.begin(), fifo.end());
  std::sort(ceb.begin(), ceb.end());
  std::printf("\n--- %s: goodput CDF [Mbps] ---\n", label);
  std::printf("%8s %14s %14s\n", "CDF", "FIFO", "Cebinae");
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0}) {
    std::printf("%8.2f %14.3f %14.3f\n", q,
                exp::to_mbps(fifo[static_cast<std::size_t>(q * (fifo.size() - 1))]),
                exp::to_mbps(ceb[static_cast<std::size_t>(q * (ceb.size() - 1))]));
  }
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  // Grid order: mix outermost, qdisc inner, so rows are
  // [bbr/FIFO, bbr/Ceb, vegas/FIFO, vegas/Ceb].
  if (rows.size() < 4) return;
  auto line = [](const char* what, const exp::ResultRow& fifo, const exp::ResultRow& ceb,
                 const char* metric, const char* unit, int prec) {
    const exp::Aggregate* f = fifo.metric(metric);
    const exp::Aggregate* c = ceb.metric(metric);
    if (f == nullptr || c == nullptr) return;
    std::printf("%s: FIFO %s%s  Cebinae %s%s\n", what, exp::pm(*f, prec).c_str(), unit,
                exp::pm(*c, prec).c_str(), unit);
  };

  print_cdf("(a) 128 NewReno vs 2 BBR", pooled_goodputs(rows[0]), pooled_goodputs(rows[1]));
  line("BBR aggregate share", rows[0], rows[1], "minority_share_pct", "%", 1);
  line("JFI", rows[0], rows[1], "jfi", "", 3);

  print_cdf("(b) 128 NewReno vs 4 Vegas", pooled_goodputs(rows[2]), pooled_goodputs(rows[3]));
  line("Vegas mean goodput", rows[2], rows[3], "minority_mean_mbps", " Mbps", 3);
  line("JFI", rows[2], rows[3], "jfi", "", 3);
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig08",
    "Figure 8: goodput CDFs, aggressive/starved CCA mixes at 1 Gbps",
    "goodput CDFs for 128 NewReno vs 2 BBR / 4 Vegas at 1 Gbps",
    1,
    make_jobs,
    minority_metrics,
    report,
}};

}  // namespace
}  // namespace cebinae
