// Figure 1: goodput time series of two NewReno flows with RTTs 20.4 ms and
// 40 ms sharing one bottleneck, under FIFO and under Cebinae, along with
// Cebinae's port state (unsaturated / which flow is bottlenecked).
//
// The per-second series come from the trace probe's sampled rows
// (tput_Bps / ceb_saturated / top_flow). With --trials=N the table shows
// trial 0 and the steady-state ratio line aggregates across trials.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "obs/trace.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

// '-' unsaturated, '0'/'1' flow 0/1 is in the top (bottlenecked) set, 'B' both.
char state_char(const obs::TraceRow& row) {
  const std::vector<double>* saturated = row.array("ceb_saturated");
  const std::vector<double>* top = row.array("top_flow");
  if (saturated == nullptr || top == nullptr || saturated->empty()) return '-';
  if ((*saturated)[0] == 0.0) return '-';
  const bool has0 = top->size() > 0 && (*top)[0] != 0.0;
  const bool has1 = top->size() > 1 && (*top)[1] != 0.0;
  return has0 && has1 ? 'B' : (has0 ? '0' : (has1 ? '1' : '-'));
}

double flow_mbps(const obs::TraceRow& row, std::size_t flow) {
  const std::vector<double>* tput = row.array("tput_Bps");
  return tput != nullptr && flow < tput->size() ? exp::to_mbps((*tput)[flow]) : 0.0;
}

// Short-RTT over long-RTT goodput, averaged over the second half of a trace.
double tail_ratio(const std::vector<obs::TraceRow>& trace) {
  if (trace.empty()) return 0.0;
  double f0 = 0, f1 = 0;
  for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
    f0 += flow_mbps(trace[i], 0);
    f1 += flow_mbps(trace[i], 1);
  }
  return f1 > 0.0 ? f0 / f1 : 0.0;
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  // 100 Mbps so NewReno's additive increase converges within the plotted
  // window (see EXPERIMENTS.md on timescale scaling).
  ScenarioConfig base;
  base.bottleneck_bps = 100'000'000;
  base.buffer_bytes = 850ull * kMtuBytes;
  base.duration = opts.scaled(Seconds(60), Seconds(30));
  base.flows = {FlowSpec{CcaType::kNewReno, MillisecondsF(20.4)},
                FlowSpec{CcaType::kNewReno, Milliseconds(40)}};

  std::vector<exp::ExperimentJob> jobs;
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    exp::ExperimentJob job;
    job.config = base;
    job.config.qdisc = qdisc;
    job.label = "qdisc=" + std::string(to_string(qdisc));
    job.params.set("qdisc", std::string(to_string(qdisc)));
    job.trace_period = opts.trace_period(Seconds(1));
    jobs.push_back(std::move(job));
  }
  return exp::replicate_trials(std::move(jobs), opts.trials_or(1));
}

void ratio_metric(const exp::ExperimentJob&, const exp::RunRecord& rec,
                  std::vector<std::pair<std::string, double>>& out) {
  out.emplace_back("tail_ratio", tail_ratio(rec.trace));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  if (rows.size() < 2) return;
  auto first_trace = [](const exp::ResultRow& r) -> const std::vector<obs::TraceRow>& {
    static const std::vector<obs::TraceRow> kEmpty;
    return r.trials.empty() || r.trials[0] == nullptr ? kEmpty : r.trials[0]->trace;
  };
  const std::vector<obs::TraceRow>& fifo = first_trace(rows[0]);
  const std::vector<obs::TraceRow>& ceb = first_trace(rows[1]);
  if (fifo.empty() || ceb.empty()) return;

  std::printf("%4s  %14s %14s   %14s %14s  %s\n", "t[s]", "FIFO rtt20[Mb]",
              "FIFO rtt40[Mb]", "Ceb rtt20[Mb]", "Ceb rtt40[Mb]", "Ceb state");
  const std::size_t n = std::min(fifo.size(), ceb.size());
  for (std::size_t s = 0; s < n; ++s) {
    std::printf("%4.0f  %14.1f %14.1f   %14.1f %14.1f  %c\n", fifo[s].t_s(),
                flow_mbps(fifo[s], 0), flow_mbps(fifo[s], 1), flow_mbps(ceb[s], 0),
                flow_mbps(ceb[s], 1), state_char(ceb[s]));
  }
  std::printf("\nsteady-state goodput ratio (short/long RTT): FIFO %s, Cebinae %s\n",
              exp::pm(*rows[0].metric("tail_ratio"), 2).c_str(),
              exp::pm(*rows[1].metric("tail_ratio"), 2).c_str());
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig01",
    "Figure 1: RTT unfairness time series (2x NewReno, 20.4/40 ms)",
    "2-flow RTT unfairness time series with Cebinae port state",
    1,
    make_jobs,
    ratio_metric,
    report,
}};

}  // namespace
}  // namespace cebinae
