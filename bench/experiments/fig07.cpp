// Figure 7: per-flow goodput for 16 TCP Vegas flows (0-15) competing with
// one NewReno flow (16) over a 100 Mbps bottleneck, FIFO vs Cebinae.
// The paper's headline: FIFO lets NewReno take ~80% of the link
// (JFI ~0.093); Cebinae redistributes it (JFI ~0.98).
#include <cstdio>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.duration = opts.scaled(Seconds(100), Seconds(30));
  cfg.flows = flows_of(CcaType::kVegas, 16, Milliseconds(100));
  cfg.flows.push_back(FlowSpec{CcaType::kNewReno, Milliseconds(100)});
  return exp::SweepGrid(cfg)
      .qdiscs({QdiscKind::kFifo, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  if (rows.size() < 2) return;
  const exp::ResultRow& fifo = rows[0];
  const exp::ResultRow& ceb = rows[1];
  const std::vector<double> fifo_flows =
      exp::mean_array(fifo.trials, [](const exp::RunRecord& r) { return r.result.goodput_Bps; });
  const std::vector<double> ceb_flows =
      exp::mean_array(ceb.trials, [](const exp::RunRecord& r) { return r.result.goodput_Bps; });

  std::printf("%-10s %18s %18s\n", "Flow", "FIFO [Mbps]", "Cebinae [Mbps]");
  for (std::size_t i = 0; i < fifo_flows.size() && i < ceb_flows.size(); ++i) {
    std::printf("%-10s %18.2f %18.2f\n",
                (i < 16 ? ("Vegas-" + std::to_string(i)) : std::string("NewReno-16")).c_str(),
                exp::to_mbps(fifo_flows[i]), exp::to_mbps(ceb_flows[i]));
  }
  std::printf("\nJFI:     FIFO %s   Cebinae %s\n",
              exp::pm(*fifo.metric("jfi"), 3).c_str(), exp::pm(*ceb.metric("jfi"), 3).c_str());
  std::printf("Goodput: FIFO %s Mbps   Cebinae %s Mbps\n",
              exp::pm(*fifo.metric("goodput_mbps"), 1).c_str(),
              exp::pm(*ceb.metric("goodput_mbps"), 1).c_str());
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig07",
    "Figure 7: 16 Vegas vs 1 NewReno over 100 Mbps",
    "per-flow goodput, 16 Vegas + 1 NewReno, FIFO vs Cebinae",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
