// Figure 9: RTT-asymmetry sweep for Cubic. Four Cubic flows at a fixed
// 256 ms RTT compete with four Cubic flows whose RTT sweeps 16..256 ms over
// a 400 Mbps bottleneck with a 3 MB buffer; JFI and total goodput for
// FIFO / FQ / Cebinae.
#include <cstdio>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

const std::vector<double> kRttsMs = {16, 32, 64, 128, 256};

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 400'000'000;
  cfg.buffer_bytes = 3 * 1024 * 1024;
  // 256 ms RTT flows need tens of seconds to converge even in quick mode.
  cfg.duration = opts.scaled(Seconds(100), Seconds(40));
  cfg.flows = {FlowSpec{}};  // placeholder; the axis rewrites flows
  return exp::SweepGrid(cfg)
      .axis("rtt_ms", kRttsMs,
            [](ScenarioConfig& c, double rtt_ms) {
              c.flows = flows_of(CcaType::kCubic, 4, Milliseconds(256));
              for (const FlowSpec& f :
                   flows_of(CcaType::kCubic, 4, MillisecondsF(rtt_ms))) {
                c.flows.push_back(f);
              }
            })
      .qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

void mbyte_metrics(const exp::ExperimentJob&, const exp::RunRecord& rec,
                   std::vector<std::pair<std::string, double>>& out) {
  // The paper's y-axis is MBps, not Mbps.
  out.emplace_back("goodput_MBps", rec.result.total_goodput_Bps / 1e6);
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  std::printf("%-8s | %10s %10s %10s | %14s %14s %14s\n", "RTT[ms]", "JFI F", "JFI FQ",
              "JFI Ceb", "Gput F[MBps]", "Gput FQ", "Gput Ceb");
  for (std::size_t i = 0; i * 3 + 2 < rows.size() && i < kRttsMs.size(); ++i) {
    const exp::ResultRow& fifo = rows[i * 3 + 0];
    const exp::ResultRow& fq = rows[i * 3 + 1];
    const exp::ResultRow& ceb = rows[i * 3 + 2];
    std::printf("%-8.0f | %10s %10s %10s | %14s %14s %14s\n", kRttsMs[i],
                exp::pm(*fifo.metric("jfi"), 3).c_str(), exp::pm(*fq.metric("jfi"), 3).c_str(),
                exp::pm(*ceb.metric("jfi"), 3).c_str(),
                exp::pm(*fifo.metric("goodput_MBps"), 1).c_str(),
                exp::pm(*fq.metric("goodput_MBps"), 1).c_str(),
                exp::pm(*ceb.metric("goodput_MBps"), 1).c_str());
    std::fflush(stdout);
  }
  std::printf("\n(goodput in MBps, matching the paper's y-axis)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig09",
    "Figure 9: RTT asymmetry (4+4 Cubic, 400 Mbps, 3 MB buffer)",
    "RTT asymmetry sweep, 4 fixed + 4 swept Cubic, FIFO/FQ/Cebinae",
    1,
    make_jobs,
    mbyte_metrics,
    report,
}};

}  // namespace
}  // namespace cebinae
