// Table 3: Cebinae data-plane resource usage on a 32-port Tofino, from the
// calibrated analytic model (documented substitution for the P4 compiler's
// report), plus an extrapolated 4-stage configuration.
//
// Custom (non-Scenario) jobs: one per cache-stage count, each returning the
// model's resource estimates as metrics. The model is deterministic, so
// --trials adds nothing but zero-stddev aggregates — the default stays 1.
#include <cstdio>
#include <string>
#include <vector>

#include "core/resource_model.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"

namespace cebinae {
namespace {

const std::vector<std::uint32_t> kStages = {1, 2, 4};

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  std::vector<exp::ExperimentJob> jobs;
  for (std::uint32_t stages : kStages) {
    exp::ExperimentJob job;
    job.label = "stages=" + std::to_string(stages);
    job.params.set("stages", static_cast<std::uint64_t>(stages));
    job.custom = [stages](std::uint64_t /*seed*/) {
      const TofinoResources r = TofinoResourceModel(32, 4096).estimate(stages);
      return std::vector<std::pair<std::string, double>>{
          {"pipeline_stages", static_cast<double>(r.pipeline_stages)},
          {"phv_bits", static_cast<double>(r.phv_bits)},
          {"sram_kb", static_cast<double>(r.sram_kb)},
          {"tcam_kb", static_cast<double>(r.tcam_kb)},
          {"vliw_instructions", static_cast<double>(r.vliw_instructions)},
          {"queues", static_cast<double>(r.queues)},
          {"phv_pct", 100 * r.phv_fraction()},
          {"sram_pct", 100 * r.sram_fraction()},
          {"tcam_pct", 100 * r.tcam_fraction()},
      };
    };
    jobs.push_back(std::move(job));
  }
  return exp::replicate_trials(std::move(jobs), opts.trials_or(1));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  std::printf("%-12s %-10s %-8s %-10s %-10s %-8s %-8s\n", "Cache stages", "Pipe stages",
              "PHV", "SRAM[KB]", "TCAM[KB]", "VLIW", "Queues");
  for (std::size_t i = 0; i < rows.size() && i < kStages.size(); ++i) {
    const exp::ResultRow& r = rows[i];
    std::printf("%-12u %-10.0f %.0fb    %-10.0f %-10.0f %-8.0f %-8.0f%s\n", kStages[i],
                r.mean("pipeline_stages"), r.mean("phv_bits"), r.mean("sram_kb"),
                r.mean("tcam_kb"), r.mean("vliw_instructions"), r.mean("queues"),
                kStages[i] > 2 ? "  (extrapolated)" : "");
  }

  std::printf("\nfractions of chip budget (approximate public Tofino-1 specs):\n");
  for (std::size_t i = 0; i < rows.size() && kStages[i] <= 2; ++i) {
    std::printf("  %u-stage: PHV %.1f%%, SRAM %.1f%%, TCAM %.1f%%\n", kStages[i],
                rows[i].mean("phv_pct"), rows[i].mean("sram_pct"), rows[i].mean("tcam_pct"));
  }
  std::printf("\n(paper: all resource types < ~25%% of the chip; queues = 2 per port —\n"
              " the provable minimum for delay injection without recirculation)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "table3",
    "Table 3: Tofino data-plane resource usage (analytic model)",
    "analytic Tofino resource model for 1/2/4 cache stages",
    1,
    make_jobs,
    nullptr,
    report,
}};

}  // namespace
}  // namespace cebinae
