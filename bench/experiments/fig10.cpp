// Figure 10: per-second JFI time series. 32 Vegas flows reach a stable
// state; a NewReno flow joins at ~5 s and a Cubic flow at ~25 s. Without
// in-network help the system slides into persistent unfairness; Cebinae
// pushes it back toward fair.
//
// Each qdisc runs with a trace probe; the JFI series is the probe's "jfi"
// scalar (computed over flows active for a full sample window). With
// --trials=N the per-second table shows trial 0 and the final-quarter
// summary aggregates across trials — the per-trial Cebinae tail list at the
// bottom is the seed-sensitivity readout (see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "obs/trace.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

double tail_quarter_mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0;
  std::size_t n = 0;
  for (std::size_t i = v.size() * 3 / 4; i < v.size(); ++i) {
    sum += v[i];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig base;
  base.bottleneck_bps = 100'000'000;
  base.buffer_bytes = 850ull * kMtuBytes;
  base.duration = opts.scaled(Seconds(50), Seconds(40));
  base.flows = flows_of(CcaType::kVegas, 32, Milliseconds(50));
  FlowSpec reno{CcaType::kNewReno, Milliseconds(50)};
  reno.start = Seconds(5);
  base.flows.push_back(reno);
  FlowSpec cubic{CcaType::kCubic, Milliseconds(50)};
  cubic.start = Seconds(25);
  base.flows.push_back(cubic);

  std::vector<exp::ExperimentJob> jobs;
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae}) {
    exp::ExperimentJob job;
    job.config = base;
    job.config.qdisc = qdisc;
    job.label = "qdisc=" + std::string(to_string(qdisc));
    job.params.set("qdisc", std::string(to_string(qdisc)));
    job.trace_period = opts.trace_period(Seconds(1));
    jobs.push_back(std::move(job));
  }
  return exp::replicate_trials(std::move(jobs), opts.trials_or(1));
}

void tail_metrics(const exp::ExperimentJob&, const exp::RunRecord& rec,
                  std::vector<std::pair<std::string, double>>& out) {
  out.emplace_back("tail_jfi",
                   tail_quarter_mean(obs::TraceSink::series_of(rec.trace, "jfi")));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  if (rows.size() < 3) return;
  const exp::ResultRow& fifo = rows[0];
  const exp::ResultRow& fq = rows[1];
  const exp::ResultRow& ceb = rows[2];

  // Per-second table from each qdisc's first trial.
  auto first_trace = [](const exp::ResultRow& r) -> const std::vector<obs::TraceRow>& {
    static const std::vector<obs::TraceRow> kEmpty;
    return r.trials.empty() || r.trials[0] == nullptr ? kEmpty : r.trials[0]->trace;
  };
  const std::vector<double> f = obs::TraceSink::series_of(first_trace(fifo), "jfi");
  const std::vector<double> q = obs::TraceSink::series_of(first_trace(fq), "jfi");
  const std::vector<double> c = obs::TraceSink::series_of(first_trace(ceb), "jfi");
  if (f.empty() || q.empty() || c.empty()) return;

  std::printf("%5s %10s %10s %10s\n", "t[s]", "FIFO", "FQ", "Cebinae");
  const std::size_t n = std::min(f.size(), std::min(q.size(), c.size()));
  for (std::size_t s = 0; s < n; ++s) {
    std::printf("%5.0f %10.3f %10.3f %10.3f\n", first_trace(fifo)[s].t_s(), f[s], q[s], c[s]);
  }
  std::printf("\nfinal-quarter mean JFI: FIFO %s  FQ %s  Cebinae %s\n",
              exp::pm(*fifo.metric("tail_jfi"), 3).c_str(),
              exp::pm(*fq.metric("tail_jfi"), 3).c_str(),
              exp::pm(*ceb.metric("tail_jfi"), 3).c_str());

  // Seed sensitivity: where does each Cebinae trial end up after the Cubic
  // join? A tight cluster means the recovery is systematic; a wide spread
  // means it depends on join phasing.
  if (ceb.trials.size() > 1) {
    std::printf("\nper-trial Cebinae tail JFI:");
    for (const exp::RunRecord* rec : ceb.trials) {
      if (rec == nullptr || rec->skipped) continue;
      std::printf(" %.3f", tail_quarter_mean(obs::TraceSink::series_of(rec->trace, "jfi")));
    }
    std::printf("\n");
  }
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig10",
    "Figure 10: JFI time series (32 Vegas; NewReno joins @5s, Cubic @25s)",
    "per-second JFI under late NewReno/Cubic joins, FIFO/FQ/Cebinae",
    1,
    make_jobs,
    tail_metrics,
    report,
}};

}  // namespace
}  // namespace cebinae
