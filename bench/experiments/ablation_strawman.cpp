// Ablation (paper §3.2): why Cebinae taxes instead of freezing.
//
// The strawman fairness scheme detects saturation and rate-limits all flows
// at the maximal observed per-flow rate with token buckets. Against an
// entrenched aggressor that holds its share (BBRv1 at a sub-BDP buffer, the
// modern stand-in for the paper's hypothetical 6x-aggressive variant), the
// strawman can stop the aggressor growing further but cannot return its
// excess; Cebinae's tax ratchets it down and redistributes.
#include <cstdio>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "metrics/jfi.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 250ull * kMtuBytes;  // sub-BDP: BBR holds its share
  cfg.duration = opts.scaled(Seconds(100), Seconds(40));

  // One incumbent BBR flow grabs the link alone; 4 NewReno flows join at
  // t=5s into the entrenched allocation.
  cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(40)});
  for (FlowSpec f : flows_of(CcaType::kNewReno, 4, Milliseconds(40))) {
    f.start = Seconds(5);
    cfg.flows.push_back(f);
  }
  return exp::SweepGrid(cfg)
      .qdiscs({QdiscKind::kFifo, QdiscKind::kStrawman, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

// Measure the converged tail (final half) rather than the whole run.
void tail_metrics(const exp::ExperimentJob&, const exp::RunRecord& rec,
                  std::vector<std::pair<std::string, double>>& out) {
  const std::vector<double>& tail = rec.result.tail_goodput_Bps;
  if (tail.empty()) return;
  out.emplace_back("incumbent_mbps", exp::to_mbps(tail[0]));
  double joiners = 0;
  for (std::size_t i = 1; i < tail.size(); ++i) joiners += tail[i];
  out.emplace_back("joiner_avg_mbps",
                   exp::to_mbps(joiners / static_cast<double>(tail.size() - 1)));
  out.emplace_back("tail_jfi", jain_index(tail));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  std::printf("1 incumbent BBR + 4 late NewReno joiners, 100 Mbps, tail-half averages\n\n");
  std::printf("%-10s %18s %18s %12s\n", "scheme", "incumbent[Mbps]", "joiner avg[Mbps]",
              "JFI");
  for (const exp::ResultRow& r : rows) {
    const exp::Aggregate* inc = r.metric("incumbent_mbps");
    const exp::Aggregate* join = r.metric("joiner_avg_mbps");
    const exp::Aggregate* jfi = r.metric("tail_jfi");
    if (inc == nullptr || join == nullptr || jfi == nullptr || r.job == nullptr) continue;
    std::printf("%-10s %18s %18s %12s\n",
                std::string(to_string(r.job->config.qdisc)).c_str(),
                exp::pm(*inc, 2).c_str(), exp::pm(*join, 2).c_str(),
                exp::pm(*jfi, 3).c_str());
  }
  std::printf("\n(the strawman cannot make an already-unfair allocation fair;\n"
              " Cebinae's tax actively redistributes the incumbent's excess)\n");
}

const exp::Registration registration{exp::ExperimentSpec{
    "ablation_strawman",
    "Ablation: strawman freeze-at-max vs Cebinae tax (paper 3.2)",
    "entrenched BBR vs late NewReno joiners under FIFO/Strawman/Cebinae",
    1,
    make_jobs,
    tail_metrics,
    report,
}};

}  // namespace
}  // namespace cebinae
