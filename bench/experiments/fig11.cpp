// Figure 11: 'Parking Lot' multi-bottleneck topology. 8 NewReno flows
// (0-7) traverse all three 100 Mbps links, contending with 2 Bic (8-9) on
// link 0, 8 Vegas (10-17) on link 1, and 4 Cubic (18-21) on link 2.
// Reports per-flow goodput against the ideal max-min allocation and the
// normalized JFI the paper uses (FIFO ~0.85 -> Cebinae ~0.98).
#include <cstdio>
#include <vector>

#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/sweep_grid.hpp"
#include "metrics/jfi.hpp"
#include "runner/scenario.hpp"

namespace cebinae {
namespace {

ScenarioConfig make_config(const exp::RunOptions& opts) {
  ScenarioConfig cfg;
  cfg.chain_links = 3;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.duration = opts.scaled(Seconds(100), Seconds(30));

  // 8 NewReno end-to-end (larger RTT: longer path).
  for (const FlowSpec& f : flows_of(CcaType::kNewReno, 8, Milliseconds(80))) {
    cfg.flows.push_back(f);
  }
  auto local = [&](CcaType cca, int n, int link) {
    for (FlowSpec f : flows_of(cca, n, Milliseconds(40))) {
      f.enter = link;
      f.exit = link + 1;
      cfg.flows.push_back(f);
    }
  };
  local(CcaType::kBic, 2, 0);
  local(CcaType::kVegas, 8, 1);
  local(CcaType::kCubic, 4, 2);
  return cfg;
}

const char* flow_label(std::size_t i) {
  if (i < 8) return "NewReno(e2e)";
  if (i < 10) return "Bic(l0)";
  if (i < 18) return "Vegas(l1)";
  return "Cubic(l2)";
}

std::vector<exp::ExperimentJob> make_jobs(const exp::RunOptions& opts) {
  return exp::SweepGrid(make_config(opts))
      .qdiscs({QdiscKind::kFifo, QdiscKind::kCebinae})
      .trials(opts.trials_or(1))
      .build();
}

void norm_jfi_metric(const exp::ExperimentJob& job, const exp::RunRecord& rec,
                     std::vector<std::pair<std::string, double>>& out) {
  out.emplace_back("norm_jfi", normalized_jain_index(rec.result.goodput_Bps,
                                                     ideal_goodputs_Bps(job.config)));
}

void report(const exp::RunOptions&, const std::vector<exp::ResultRow>& rows) {
  if (rows.size() < 2 || rows[0].job == nullptr) return;
  const exp::ResultRow& fifo = rows[0];
  const exp::ResultRow& ceb = rows[1];
  const std::vector<double> ideal = ideal_goodputs_Bps(fifo.job->config);
  const std::vector<double> fifo_flows =
      exp::mean_array(fifo.trials, [](const exp::RunRecord& r) { return r.result.goodput_Bps; });
  const std::vector<double> ceb_flows =
      exp::mean_array(ceb.trials, [](const exp::RunRecord& r) { return r.result.goodput_Bps; });

  std::printf("%4s %-14s %12s %12s %12s\n", "Flow", "Type", "Ideal[Mbps]", "FIFO[Mbps]",
              "Cebinae[Mbps]");
  for (std::size_t i = 0; i < ideal.size() && i < fifo_flows.size() && i < ceb_flows.size();
       ++i) {
    std::printf("%4zu %-14s %12.2f %12.2f %12.2f\n", i, flow_label(i),
                exp::to_mbps(ideal[i]), exp::to_mbps(fifo_flows[i]),
                exp::to_mbps(ceb_flows[i]));
  }
  std::printf("\nnormalized JFI (distance to max-min ideal): FIFO %s -> Cebinae %s\n",
              exp::pm(*fifo.metric("norm_jfi"), 3).c_str(),
              exp::pm(*ceb.metric("norm_jfi"), 3).c_str());
}

const exp::Registration registration{exp::ExperimentSpec{
    "fig11",
    "Figure 11: Parking Lot (3x100 Mbps): 8 NewReno e2e vs local Bic/Vegas/Cubic",
    "3-link parking lot vs ideal max-min allocation, FIFO vs Cebinae",
    1,
    make_jobs,
    norm_jfi_metric,
    report,
}};

}  // namespace
}  // namespace cebinae
