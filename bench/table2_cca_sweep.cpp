// Table 2: throughput, goodput, and JFI for 25 network configurations
// (bandwidth x RTT x buffer x CCA mix), each under FIFO, ideal FQ (FQ-CoDel
// with per-flow queues), and Cebinae.
#include <cstdio>
#include <string>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

struct CcaGroup {
  CcaType cca;
  int count;
};

struct Row {
  std::uint64_t bps;
  std::vector<double> rtts_ms;  // one per group, or a single shared value
  std::uint64_t buf_mtu;
  std::vector<CcaGroup> groups;
};

// The 25 configurations of Table 2, in paper order.
const std::vector<Row> kRows = {
    {100'000'000, {20.8, 28}, 250, {{CcaType::kNewReno, 2}, {CcaType::kNewReno, 8}}},
    {100'000'000, {20.4, 40}, 350, {{CcaType::kCubic, 8}, {CcaType::kCubic, 2}}},
    {100'000'000, {20.4, 60}, 500, {{CcaType::kVegas, 2}, {CcaType::kVegas, 8}}},
    {100'000'000, {200}, 1700, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
    {100'000'000, {100}, 850, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
    {100'000'000, {50}, 420, {{CcaType::kNewReno, 16}, {CcaType::kCubic, 1}}},
    {100'000'000, {50}, 420, {{CcaType::kVegas, 16}, {CcaType::kCubic, 1}}},
    {100'000'000, {100}, 850, {{CcaType::kVegas, 16}, {CcaType::kNewReno, 1}}},
    {100'000'000, {100}, 850, {{CcaType::kVegas, 128}, {CcaType::kNewReno, 1}}},
    {100'000'000, {60}, 500,
     {{CcaType::kVegas, 8}, {CcaType::kNewReno, 8}, {CcaType::kCubic, 2}}},
    {1'000'000'000, {5}, 420, {{CcaType::kNewReno, 32}, {CcaType::kCubic, 8}}},
    {1'000'000'000, {10}, 850, {{CcaType::kVegas, 128}, {CcaType::kCubic, 1}}},
    {1'000'000'000, {10}, 850, {{CcaType::kVegas, 1024}, {CcaType::kCubic, 2}}},
    {1'000'000'000, {50}, 4200, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 1}}},
    {1'000'000'000, {50}, 4200, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
    {1'000'000'000, {50}, 21000, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
    {1'000'000'000, {100}, 8350, {{CcaType::kNewReno, 128}, {CcaType::kBbr, 2}}},
    {1'000'000'000, {10}, 850, {{CcaType::kVegas, 64}, {CcaType::kNewReno, 1}}},
    {1'000'000'000, {100}, 8500, {{CcaType::kVegas, 4}, {CcaType::kNewReno, 128}}},
    {1'000'000'000, {100, 64}, 8500, {{CcaType::kVegas, 4}, {CcaType::kNewReno, 128}}},
    {1'000'000'000, {100}, 8500, {{CcaType::kVegas, 8}, {CcaType::kNewReno, 128}}},
    {1'000'000'000, {10}, 850, {{CcaType::kVegas, 128}, {CcaType::kBbr, 1}}},
    {1'000'000'000, {100}, 8500, {{CcaType::kBic, 2}, {CcaType::kCubic, 32}}},
    {10'000'000'000, {50, 44}, 41667, {{CcaType::kNewReno, 128}, {CcaType::kCubic, 16}}},
    {10'000'000'000, {28, 28}, 25000, {{CcaType::kNewReno, 128}, {CcaType::kCubic, 128}}},
};

std::string describe(const Row& row) {
  std::string s = "{";
  for (std::size_t g = 0; g < row.groups.size(); ++g) {
    if (g) s += ", ";
    s += std::string(to_string(row.groups[g].cca)) + ":" +
         std::to_string(row.groups[g].count);
  }
  s += "}";
  return s;
}

// Configure a ScenarioConfig for one of the 25 rows (qdisc is applied by
// the sweep's qdisc dimension).
void apply_row(ScenarioConfig& cfg, const Row& row, bool full) {
  cfg.bottleneck_bps = row.bps;
  cfg.buffer_bytes = row.buf_mtu * kMtuBytes;
  cfg.duration = duration_for(row.bps, full);
  cfg.flows.clear();
  for (std::size_t g = 0; g < row.groups.size(); ++g) {
    const double rtt_ms =
        row.rtts_ms.size() == 1 ? row.rtts_ms[0] : row.rtts_ms[g % row.rtts_ms.size()];
    for (int i = 0; i < row.groups[g].count; ++i) {
      FlowSpec f;
      f.cca = row.groups[g].cca;
      f.rtt = MillisecondsF(rtt_ms);
      cfg.flows.push_back(f);
    }
  }
}

struct Metrics {
  double throughput_mbps;
  double goodput_mbps;
  double jfi;
};

Metrics metrics_of(const exp::RunRecord& rec) {
  return Metrics{to_mbps(rec.result.throughput_Bps[0]), to_mbps(rec.result.total_goodput_Bps),
                 rec.result.jfi};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Table 2: CCA/RTT/bandwidth sweep", opts);

  // 25 rows x 3 qdiscs, expanded row-outermost so record index is
  // row * 3 + qdisc. All 75 scenarios run across --jobs workers.
  std::vector<std::pair<std::string, exp::SweepGrid::Mutator>> row_variants;
  for (std::size_t r = 0; r < kRows.size(); ++r) {
    row_variants.emplace_back("r" + std::to_string(r),
                              [r, full = opts.full](ScenarioConfig& cfg) {
                                apply_row(cfg, kRows[r], full);
                              });
  }
  ScenarioConfig base;
  base.flows = {FlowSpec{}};  // placeholder; every row mutator rewrites flows
  const std::vector<exp::ExperimentJob> jobs =
      exp::SweepGrid(base)
          .variants("row", std::move(row_variants))
          .qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae})
          .build();
  const std::vector<exp::RunRecord> records = run_batch("table2_cca_sweep", jobs, opts);

  std::printf("%-9s %-14s %-7s %-28s | %-26s | %-26s | %-20s\n", "Btl.BW", "RTTs[ms]",
              "Buf", "CCAs", "Throughput[Mbps] F/FQ/Ceb", "Goodput[Mbps] F/FQ/Ceb",
              "JFI FIFO/FQ/Ceb");
  for (std::size_t ri = 0; ri < kRows.size(); ++ri) {
    const Row& row = kRows[ri];
    const Metrics fifo = metrics_of(records[ri * 3 + 0]);
    const Metrics fq = metrics_of(records[ri * 3 + 1]);
    const Metrics ceb = metrics_of(records[ri * 3 + 2]);

    std::string rtts = "{";
    for (std::size_t i = 0; i < row.rtts_ms.size(); ++i) {
      if (i) rtts += ",";
      rtts += std::to_string(row.rtts_ms[i]).substr(0, 4);
    }
    rtts += "}";

    std::printf(
        "%-9s %-14s %-7llu %-28s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %6.3f %6.3f "
        "%6.3f\n",
        row.bps >= 10'000'000'000ull ? "10 Gbps"
        : row.bps >= 1'000'000'000ull ? "1 Gbps"
                                      : "100 Mbps",
        rtts.c_str(), static_cast<unsigned long long>(row.buf_mtu), describe(row).c_str(),
        fifo.throughput_mbps, fq.throughput_mbps, ceb.throughput_mbps, fifo.goodput_mbps,
        fq.goodput_mbps, ceb.goodput_mbps, fifo.jfi, fq.jfi, ceb.jfi);
    std::fflush(stdout);
  }
  return 0;
}
