// cebinae_bench: one CLI for every registered paper figure/table.
//
//   cebinae_bench --list
//   cebinae_bench --experiment=<name> [flags]
//   cebinae_bench <name> [flags]
//
// Flags (uniform across experiments):
//   --full           paper-scale durations and trial counts
//   --smoke          sub-second scenario durations (CI sanity pass)
//   --trials=N       replicate every grid point N times with derived seeds;
//                    reports show mean ± stddev (0 = experiment default)
//   --jobs=N         worker threads (0 = all hardware threads); results and
//                    stdout are byte-identical for any N
//   --seed=S         base seed; per-job seeds derive from (S, job index)
//   --out=PATH       stream one JSONL result row per job ("-" = stdout)
//   --trace-out=PATH stream probe time-series rows of traced jobs
//   --resume         skip jobs whose rows are already complete in --out
//   --perf-out[=P]   write a BENCH_<name>.json perf summary
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "exp/registry.hpp"

namespace {

using cebinae::exp::ExperimentRegistry;
using cebinae::exp::ExperimentSpec;
using cebinae::exp::RunOptions;

int usage(FILE* out) {
  std::fprintf(out,
               "usage: cebinae_bench --experiment=<name> [--full|--smoke] [--trials=N]\n"
               "                     [--jobs=N] [--seed=S] [--out=PATH] [--trace-out=PATH]\n"
               "                     [--resume] [--perf-out[=PATH]]\n"
               "       cebinae_bench --list\n\nexperiments:\n");
  for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
    std::fprintf(out, "  %-22s %s\n", spec->name.c_str(), spec->description.c_str());
  }
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  RunOptions opts;
  std::string experiment;
  bool list = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strncmp(arg, "--experiment=", 13) == 0) {
      experiment = arg + 13;
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.full = true;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      opts.trials = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      opts.jobs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.base_seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opts.out = arg + 6;
    } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      opts.trace_out = arg + 12;
    } else if (std::strcmp(arg, "--resume") == 0) {
      opts.resume = true;
    } else if (std::strcmp(arg, "--perf-out") == 0) {
      opts.perf = true;
    } else if (std::strncmp(arg, "--perf-out=", 11) == 0) {
      opts.perf = true;
      opts.perf_out = arg + 11;
    } else if (arg[0] != '-' && experiment.empty()) {
      experiment = arg;  // positional experiment name
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n\n", arg);
      return usage(stderr);
    }
  }

  if (list) {
    // Tab-separated for scripting: name<TAB>description.
    for (const ExperimentSpec* spec : ExperimentRegistry::instance().all()) {
      std::printf("%s\t%s\n", spec->name.c_str(), spec->description.c_str());
    }
    return 0;
  }
  if (opts.full && opts.smoke) {
    std::fprintf(stderr, "error: --full and --smoke are mutually exclusive\n");
    return 2;
  }
  if (experiment.empty()) return usage(stderr);

  const ExperimentSpec* spec = ExperimentRegistry::instance().find(experiment);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown experiment '%s'\n\n", experiment.c_str());
    return usage(stderr);
  }

  if (opts.jobs <= 0) {
    opts.jobs = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  }
  return cebinae::exp::run_experiment(*spec, opts);
}
