// Figure 10: per-second JFI time series. 32 Vegas flows reach a stable
// state; a NewReno flow joins at ~5 s and a Cubic flow at ~25 s. Without
// in-network help the system slides into persistent unfairness; Cebinae
// pushes it back toward fair.
//
// Runs through ExperimentRunner with a 1 s trace probe: the JFI series is
// the probe's "jfi" scalar (computed over flows active for a full sample
// window), streamed to --trace-out= when requested.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 10: JFI time series (32 Vegas; NewReno joins @5s, Cubic @25s)",
               opts);

  ScenarioConfig base;
  base.bottleneck_bps = 100'000'000;
  base.buffer_bytes = 850ull * kMtuBytes;
  base.duration = opts.full ? Seconds(50) : Seconds(40);
  base.flows = flows_of(CcaType::kVegas, 32, Milliseconds(50));
  FlowSpec reno{CcaType::kNewReno, Milliseconds(50)};
  reno.start = Seconds(5);
  base.flows.push_back(reno);
  FlowSpec cubic{CcaType::kCubic, Milliseconds(50)};
  cubic.start = Seconds(25);
  base.flows.push_back(cubic);

  const QdiscKind kinds[] = {QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae};
  std::vector<exp::ExperimentJob> jobs;
  for (QdiscKind qdisc : kinds) {
    exp::ExperimentJob job;
    job.config = base;
    job.config.qdisc = qdisc;
    job.label = qdisc_name(qdisc);
    job.params.set("qdisc", qdisc_name(qdisc));
    job.trace_period = Seconds(1);
    jobs.push_back(std::move(job));
  }

  const std::vector<exp::RunRecord> records = run_batch("fig10_jfi_timeseries", jobs, opts);
  const std::vector<double> fifo = obs::TraceSink::series_of(records[0].trace, "jfi");
  const std::vector<double> fq = obs::TraceSink::series_of(records[1].trace, "jfi");
  const std::vector<double> ceb = obs::TraceSink::series_of(records[2].trace, "jfi");
  if (fifo.empty() || fq.empty() || ceb.empty()) {
    std::printf("(traces resumed over; rerun without --resume for the table)\n");
    return 0;
  }

  std::printf("%5s %10s %10s %10s\n", "t[s]", "FIFO", "FQ", "Cebinae");
  const std::size_t rows = std::min(fifo.size(), std::min(fq.size(), ceb.size()));
  for (std::size_t s = 0; s < rows; ++s) {
    std::printf("%5.0f %10.3f %10.3f %10.3f\n", records[0].trace[s].t_s(), fifo[s], fq[s],
                ceb[s]);
  }

  auto tail_avg = [rows](const std::vector<double>& v) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = rows * 3 / 4; i < rows; ++i) {
      sum += v[i];
      ++n;
    }
    return sum / static_cast<double>(n);
  };
  std::printf("\nfinal-quarter mean JFI: FIFO %.3f  FQ %.3f  Cebinae %.3f\n", tail_avg(fifo),
              tail_avg(fq), tail_avg(ceb));
  return 0;
}
