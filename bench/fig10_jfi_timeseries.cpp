// Figure 10: per-second JFI time series. 32 Vegas flows reach a stable
// state; a NewReno flow joins at ~5 s and a Cubic flow at ~25 s. Without
// in-network help the system slides into persistent unfairness; Cebinae
// pushes it back toward fair.
#include <cstdio>

#include "bench_util.hpp"
#include "metrics/jfi.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

std::vector<double> run(QdiscKind qdisc, Time duration, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = duration;
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kVegas, 32, Milliseconds(50));
  FlowSpec reno{CcaType::kNewReno, Milliseconds(50)};
  reno.start = Seconds(5);
  cfg.flows.push_back(reno);
  FlowSpec cubic{CcaType::kCubic, Milliseconds(50)};
  cubic.start = Seconds(25);
  cfg.flows.push_back(cubic);

  Scenario scenario(cfg);
  scenario.run();

  // Per-second JFI over flows active in that second.
  const std::size_t seconds = static_cast<std::size_t>(duration / Seconds(1));
  std::vector<double> jfi_series;
  for (std::size_t s = 0; s < seconds; ++s) {
    std::vector<double> rates;
    for (std::size_t f = 0; f < cfg.flows.size(); ++f) {
      const Time start = cfg.flows[f].start;
      if (Seconds(static_cast<std::int64_t>(s)) < start) continue;  // not yet active
      const auto series = scenario.stats().series(scenario.flow_ids()[f]);
      rates.push_back(s < series.size() ? static_cast<double>(series[s]) : 0.0);
    }
    jfi_series.push_back(jain_index(rates));
  }
  return jfi_series;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 10: JFI time series (32 Vegas; NewReno joins @5s, Cubic @25s)",
               opts);

  const Time duration = opts.full ? Seconds(50) : Seconds(40);
  const auto fifo = run(QdiscKind::kFifo, duration, opts);
  const auto fq = run(QdiscKind::kFqCoDel, duration, opts);
  const auto ceb = run(QdiscKind::kCebinae, duration, opts);

  std::printf("%5s %10s %10s %10s\n", "t[s]", "FIFO", "FQ", "Cebinae");
  for (std::size_t s = 0; s < fifo.size(); ++s) {
    std::printf("%5zu %10.3f %10.3f %10.3f\n", s + 1, fifo[s], fq[s], ceb[s]);
  }

  auto tail_avg = [](const std::vector<double>& v) {
    double sum = 0;
    std::size_t n = 0;
    for (std::size_t i = v.size() * 3 / 4; i < v.size(); ++i) {
      sum += v[i];
      ++n;
    }
    return sum / n;
  };
  std::printf("\nfinal-quarter mean JFI: FIFO %.3f  FQ %.3f  Cebinae %.3f\n",
              tail_avg(fifo), tail_avg(fq), tail_avg(ceb));
  return 0;
}
