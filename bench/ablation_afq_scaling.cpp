// Ablation (paper §2, Equation 1): AFQ's fairness needs nQ x BpR to cover
// every flow's buffering requirement (~the bandwidth-delay product), so its
// queue requirements grow with RTT — while Cebinae holds 2 queues.
//
// Sweep the flows' RTT with a fixed AFQ calendar (nQ x BpR) and watch AFQ's
// high-RTT throughput collapse as the horizon truncates the flows' windows;
// Cebinae (2 queues) and FIFO are unaffected.
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

ScenarioResult run(QdiscKind qdisc, int rtt_ms, std::uint32_t nq, const BenchOptions& opts) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 1700ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.afq.num_queues = nq;
  cfg.afq.bytes_per_round = 2 * kMtuBytes;
  cfg.duration = opts.full ? Seconds(100) : Seconds(30);
  cfg.seed = opts.seed;
  cfg.flows = flows_of(CcaType::kNewReno, 4, Milliseconds(rtt_ms));
  return Scenario(cfg).run();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: AFQ calendar requirements vs RTT (Equation 1)", opts);

  std::printf("4x NewReno on 100 Mbps; AFQ BpR = 2 MTU.\n");
  std::printf("per-flow buffer_req ~= BDP/4; AFQ serves a flow only if it fits nQ x BpR.\n\n");
  std::printf("%-8s | %12s | %18s %18s %18s | %10s\n", "RTT[ms]", "FIFO gput", "AFQ(nQ=8)",
              "AFQ(nQ=32)", "AFQ(nQ=128)", "Cebinae");
  for (int rtt : {10, 40, 100, 200}) {
    const ScenarioResult fifo = run(QdiscKind::kFifo, rtt, 32, opts);
    const ScenarioResult afq8 = run(QdiscKind::kAfq, rtt, 8, opts);
    const ScenarioResult afq32 = run(QdiscKind::kAfq, rtt, 32, opts);
    const ScenarioResult afq128 = run(QdiscKind::kAfq, rtt, 128, opts);
    const ScenarioResult ceb = run(QdiscKind::kCebinae, rtt, 32, opts);
    std::printf("%-8d | %9.1f Mb | %10.1f (%.2f) %10.1f (%.2f) %10.1f (%.2f) | %7.1f Mb\n",
                rtt, to_mbps(fifo.total_goodput_Bps), to_mbps(afq8.total_goodput_Bps),
                afq8.jfi, to_mbps(afq32.total_goodput_Bps), afq32.jfi,
                to_mbps(afq128.total_goodput_Bps), afq128.jfi,
                to_mbps(ceb.total_goodput_Bps));
    std::fflush(stdout);
  }
  std::printf("\n(AFQ numbers show goodput with JFI in parens: with too few queues the\n"
              " calendar horizon caps each flow's usable window, collapsing high-RTT\n"
              " throughput; Cebinae needs only 2 queues at any RTT)\n");
  return 0;
}
