// Figure 1: goodput time series of two NewReno flows with RTTs 20.4 ms and
// 40 ms sharing one bottleneck, under FIFO and under Cebinae, along with
// Cebinae's port state (unsaturated / which flow is bottlenecked).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

struct Series {
  std::vector<double> f0_mbps;  // per-second goodput, flow 0 (RTT 20.4 ms)
  std::vector<double> f1_mbps;  // flow 1 (RTT 40 ms)
  std::vector<char> state;      // '-' unsaturated, '0'/'1' top flow, 'B' both
};

Series run(QdiscKind qdisc, Time duration, std::uint64_t bps) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = bps;
  cfg.buffer_bytes = 850ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = duration;
  cfg.flows = {FlowSpec{CcaType::kNewReno, MillisecondsF(20.4)},
               FlowSpec{CcaType::kNewReno, Milliseconds(40)}};
  Scenario scenario(cfg);

  Series out;
  const std::size_t seconds = static_cast<std::size_t>(duration / Seconds(1));
  out.state.assign(seconds + 1, '-');
  if (qdisc == QdiscKind::kCebinae) {
    scenario.add_probe(Seconds(1), [&](Time now) {
      const auto& snap = scenario.agent(0)->snapshot();
      char s = '-';
      if (snap.saturated && !snap.top_flows.empty()) {
        const bool has0 = std::find(snap.top_flows.begin(), snap.top_flows.end(),
                                    scenario.flow_ids()[0]) != snap.top_flows.end();
        const bool has1 = std::find(snap.top_flows.begin(), snap.top_flows.end(),
                                    scenario.flow_ids()[1]) != snap.top_flows.end();
        s = has0 && has1 ? 'B' : (has0 ? '0' : (has1 ? '1' : '-'));
      }
      const auto idx = static_cast<std::size_t>(now / Seconds(1));
      if (idx < out.state.size()) out.state[idx] = s;
    });
  }
  scenario.run();

  const auto s0 = scenario.stats().series(scenario.flow_ids()[0]);
  const auto s1 = scenario.stats().series(scenario.flow_ids()[1]);
  for (std::size_t s = 0; s < seconds; ++s) {
    out.f0_mbps.push_back(s < s0.size() ? to_mbps(static_cast<double>(s0[s])) : 0.0);
    out.f1_mbps.push_back(s < s1.size() ? to_mbps(static_cast<double>(s1[s])) : 0.0);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 1: RTT unfairness time series (2x NewReno, 20.4/40 ms)", opts);

  // 100 Mbps so NewReno's additive increase converges within the plotted
  // window (see EXPERIMENTS.md on timescale scaling).
  const std::uint64_t bps = 100'000'000;
  const Time duration = opts.full ? Seconds(60) : Seconds(30);

  const Series fifo = run(QdiscKind::kFifo, duration, bps);
  const Series ceb = run(QdiscKind::kCebinae, duration, bps);

  std::printf("%4s  %14s %14s   %14s %14s  %s\n", "t[s]", "FIFO rtt20[Mb]",
              "FIFO rtt40[Mb]", "Ceb rtt20[Mb]", "Ceb rtt40[Mb]", "Ceb state");
  for (std::size_t s = 0; s < fifo.f0_mbps.size(); ++s) {
    std::printf("%4zu  %14.1f %14.1f   %14.1f %14.1f  %c\n", s + 1, fifo.f0_mbps[s],
                fifo.f1_mbps[s], ceb.f0_mbps[s], ceb.f1_mbps[s], ceb.state[s]);
  }

  // Summary: ratio between the flows over the second half of the run.
  auto half_avg = [](const std::vector<double>& v) {
    double sum = 0;
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) sum += v[i];
    return sum / (v.size() - v.size() / 2);
  };
  std::printf("\nsteady-state goodput ratio (short/long RTT): FIFO %.2f, Cebinae %.2f\n",
              half_avg(fifo.f0_mbps) / half_avg(fifo.f1_mbps),
              half_avg(ceb.f0_mbps) / half_avg(ceb.f1_mbps));
  return 0;
}
