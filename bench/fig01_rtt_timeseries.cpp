// Figure 1: goodput time series of two NewReno flows with RTTs 20.4 ms and
// 40 ms sharing one bottleneck, under FIFO and under Cebinae, along with
// Cebinae's port state (unsaturated / which flow is bottlenecked).
//
// Runs through ExperimentRunner with a 1 s trace probe: the per-second
// series come from the probe's sampled rows (tput_Bps / ceb_saturated /
// top_flow), not from any in-run capture. --trace-out= streams the same
// rows to a sidecar JSONL file.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"

using namespace cebinae;
using namespace cebinae::bench;

namespace {

// '-' unsaturated, '0'/'1' flow 0/1 is in the top (bottlenecked) set, 'B' both.
char state_char(const obs::TraceRow& row) {
  const std::vector<double>* saturated = row.array("ceb_saturated");
  const std::vector<double>* top = row.array("top_flow");
  if (saturated == nullptr || top == nullptr || saturated->empty()) return '-';
  if ((*saturated)[0] == 0.0) return '-';
  const bool has0 = top->size() > 0 && (*top)[0] != 0.0;
  const bool has1 = top->size() > 1 && (*top)[1] != 0.0;
  return has0 && has1 ? 'B' : (has0 ? '0' : (has1 ? '1' : '-'));
}

double flow_mbps(const obs::TraceRow& row, std::size_t flow) {
  const std::vector<double>* tput = row.array("tput_Bps");
  return tput != nullptr && flow < tput->size() ? to_mbps((*tput)[flow]) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 1: RTT unfairness time series (2x NewReno, 20.4/40 ms)", opts);

  // 100 Mbps so NewReno's additive increase converges within the plotted
  // window (see EXPERIMENTS.md on timescale scaling).
  ScenarioConfig base;
  base.bottleneck_bps = 100'000'000;
  base.buffer_bytes = 850ull * kMtuBytes;
  base.duration = opts.full ? Seconds(60) : Seconds(30);
  base.flows = {FlowSpec{CcaType::kNewReno, MillisecondsF(20.4)},
                FlowSpec{CcaType::kNewReno, Milliseconds(40)}};

  std::vector<exp::ExperimentJob> jobs;
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    exp::ExperimentJob job;
    job.config = base;
    job.config.qdisc = qdisc;
    job.label = qdisc_name(qdisc);
    job.params.set("qdisc", qdisc_name(qdisc));
    job.trace_period = Seconds(1);
    jobs.push_back(std::move(job));
  }

  const std::vector<exp::RunRecord> records = run_batch("fig01_rtt_timeseries", jobs, opts);
  const std::vector<obs::TraceRow>& fifo = records[0].trace;
  const std::vector<obs::TraceRow>& ceb = records[1].trace;
  if (fifo.empty() || ceb.empty()) {
    std::printf("(traces resumed over; rerun without --resume for the table)\n");
    return 0;
  }

  std::printf("%4s  %14s %14s   %14s %14s  %s\n", "t[s]", "FIFO rtt20[Mb]",
              "FIFO rtt40[Mb]", "Ceb rtt20[Mb]", "Ceb rtt40[Mb]", "Ceb state");
  const std::size_t rows = std::min(fifo.size(), ceb.size());
  for (std::size_t s = 0; s < rows; ++s) {
    std::printf("%4.0f  %14.1f %14.1f   %14.1f %14.1f  %c\n", fifo[s].t_s(),
                flow_mbps(fifo[s], 0), flow_mbps(fifo[s], 1), flow_mbps(ceb[s], 0),
                flow_mbps(ceb[s], 1), state_char(ceb[s]));
  }

  // Summary: ratio between the flows over the second half of the run.
  auto half_avg = [rows](const std::vector<obs::TraceRow>& trace, std::size_t flow) {
    double sum = 0;
    for (std::size_t i = rows / 2; i < rows; ++i) sum += flow_mbps(trace[i], flow);
    return sum / static_cast<double>(rows - rows / 2);
  };
  std::printf("\nsteady-state goodput ratio (short/long RTT): FIFO %.2f, Cebinae %.2f\n",
              half_avg(fifo, 0) / half_avg(fifo, 1), half_avg(ceb, 0) / half_avg(ceb, 1));
  return 0;
}
