#include "tcp/interval_set.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(IntervalSet, StartsEmpty) {
  IntervalSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.total_bytes(), 0u);
}

TEST(IntervalSet, AddDisjointKeepsSorted) {
  IntervalSet s;
  s.add(30, 40);
  s.add(10, 20);
  s.add(50, 60);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].begin, 10u);
  EXPECT_EQ(s[1].begin, 30u);
  EXPECT_EQ(s[2].begin, 50u);
  EXPECT_EQ(s.total_bytes(), 30u);
}

TEST(IntervalSet, AddMergesBackward) {
  IntervalSet s;
  s.add(10, 20);
  const IntervalSet::Block b = s.add(20, 30);  // touching: merge
  EXPECT_EQ(b.begin, 10u);
  EXPECT_EQ(b.end, 30u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, AddMergesForwardAcrossMultipleBlocks) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  s.add(50, 60);
  const IntervalSet::Block b = s.add(15, 55);  // spans all three
  EXPECT_EQ(b.begin, 10u);
  EXPECT_EQ(b.end, 60u);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.total_bytes(), 50u);
}

TEST(IntervalSet, AddContainedIsAbsorbed) {
  IntervalSet s;
  s.add(10, 50);
  const IntervalSet::Block b = s.add(20, 30);
  EXPECT_EQ(b.begin, 10u);
  EXPECT_EQ(b.end, 50u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(IntervalSet, LowerBound) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.lower_bound(0), 0u);
  EXPECT_EQ(s.lower_bound(10), 0u);
  EXPECT_EQ(s.lower_bound(11), 1u);
  EXPECT_EQ(s.lower_bound(30), 1u);
  EXPECT_EQ(s.lower_bound(31), 2u);
}

TEST(IntervalSet, DrainIntoConsumesContiguousPrefix) {
  IntervalSet s;
  s.add(10, 20);
  s.add(20, 30);  // merged with previous
  s.add(40, 50);
  std::uint64_t cursor = 10;
  s.drain_into(cursor);
  EXPECT_EQ(cursor, 30u);  // stopped at the hole [30, 40)
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0].begin, 40u);
}

TEST(IntervalSet, DrainIntoFoldsOverlappingOldData) {
  IntervalSet s;
  s.add(5, 15);
  std::uint64_t cursor = 20;  // already past the whole block
  s.drain_into(cursor);
  EXPECT_EQ(cursor, 20u);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, DrainIntoNoopWhenGapRemains) {
  IntervalSet s;
  s.add(100, 200);
  std::uint64_t cursor = 50;
  s.drain_into(cursor);
  EXPECT_EQ(cursor, 50u);
  EXPECT_EQ(s.size(), 1u);
}

}  // namespace
}  // namespace cebinae
