#include "tcp/new_reno.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"

namespace cebinae {
namespace {

constexpr std::uint32_t kMss = kMssBytes;

TEST(NewReno, InitialWindowIsTenSegments) {
  NewReno cc(kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 10ull * kMss);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(NewReno, SlowStartDoublesPerRound) {
  NewReno cc(kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(NewReno, LossHalvesWindowAndExitsSlowStart) {
  NewReno cc(kMss);
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  cc.on_loss(Seconds(2), before);
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(NewReno, CongestionAvoidanceAddsOneMssPerRound) {
  NewReno cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());  // force CA at 5 segments
  const std::uint64_t before = cc.cwnd_bytes();
  feed_round(cc, Seconds(2), Milliseconds(100), kMss);
  const std::uint64_t growth = cc.cwnd_bytes() - before;
  EXPECT_NEAR(static_cast<double>(growth), static_cast<double>(kMss),
              static_cast<double>(kMss) * 0.25);
}

TEST(NewReno, RtoCollapsesToOneSegment) {
  NewReno cc(kMss);
  for (int i = 0; i < 3; ++i) feed_round(cc, Seconds(i + 1), Milliseconds(100), kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  cc.on_rto(Seconds(10));
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  // ssthresh remembers half the pre-timeout window: slow start resumes and
  // exits near before/2.
  while (cc.in_slow_start()) {
    cc.on_ack(make_ack(Seconds(11), kMss, Milliseconds(100)));
  }
  EXPECT_GE(cc.cwnd_bytes(), before / 2);
  EXPECT_LE(cc.cwnd_bytes(), before / 2 + 2 * kMss);
}

TEST(NewReno, WindowNeverBelowTwoSegments) {
  NewReno cc(kMss);
  for (int i = 0; i < 20; ++i) cc.on_loss(Seconds(i + 1), cc.cwnd_bytes());
  EXPECT_GE(cc.cwnd_bytes(), 2ull * kMss);
}

TEST(NewReno, EceReducesLikeLoss) {
  NewReno cc(kMss);
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  AckEvent ev = make_ack(Seconds(5), kMss, Milliseconds(100));
  ev.ece = true;
  cc.on_ack(ev);
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
}

TEST(NewReno, EceReductionAtMostOncePerRtt) {
  NewReno cc(kMss);
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  AckEvent ev = make_ack(Seconds(5), kMss, Milliseconds(100));
  ev.ece = true;
  cc.on_ack(ev);
  const std::uint64_t after_first = cc.cwnd_bytes();
  // A second mark 10 ms later (well within one 100 ms RTT) must not reduce.
  ev.now = Seconds(5) + Milliseconds(10);
  cc.on_ack(ev);
  EXPECT_GE(cc.cwnd_bytes(), after_first);
}

TEST(NewReno, SlowStartIncrementCappedAtTwoMssPerAck) {
  NewReno cc(kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  // A jumbo cumulative ACK (e.g., after reordering) must not explode cwnd.
  cc.on_ack(make_ack(Seconds(1), 100ull * kMss, Milliseconds(100)));
  EXPECT_EQ(cc.cwnd_bytes(), before + 2ull * kMss);
}

}  // namespace
}  // namespace cebinae
