#include "tcp/cc_factory.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(CcFactory, MakesEveryAlgorithm) {
  for (CcaType t : {CcaType::kNewReno, CcaType::kCubic, CcaType::kBic, CcaType::kVegas,
                    CcaType::kBbr}) {
    auto cc = make_cc(t);
    ASSERT_NE(cc, nullptr);
    EXPECT_GT(cc->cwnd_bytes(), 0u);
  }
}

TEST(CcFactory, NamesMatchAlgorithms) {
  EXPECT_EQ(make_cc(CcaType::kNewReno)->name(), "newreno");
  EXPECT_EQ(make_cc(CcaType::kCubic)->name(), "cubic");
  EXPECT_EQ(make_cc(CcaType::kBic)->name(), "bic");
  EXPECT_EQ(make_cc(CcaType::kVegas)->name(), "vegas");
  EXPECT_EQ(make_cc(CcaType::kBbr)->name(), "bbr");
}

TEST(CcFactory, StringRoundTrip) {
  for (CcaType t : {CcaType::kNewReno, CcaType::kCubic, CcaType::kBic, CcaType::kVegas,
                    CcaType::kBbr}) {
    EXPECT_EQ(cca_from_string(to_string(t)), t);
  }
}

TEST(CcFactory, AcceptsLowercaseNames) {
  EXPECT_EQ(cca_from_string("newreno"), CcaType::kNewReno);
  EXPECT_EQ(cca_from_string("bbr"), CcaType::kBbr);
}

TEST(CcFactory, RejectsUnknownName) {
  EXPECT_THROW((void)cca_from_string("reno2000"), std::invalid_argument);
}

TEST(CcFactory, CustomMssPropagates) {
  auto cc = make_cc(CcaType::kNewReno, 500);
  EXPECT_EQ(cc->cwnd_bytes(), 5000u);  // 10 segments of the custom MSS
}

TEST(CcFactory, InstancesAreIndependent) {
  auto a = make_cc(CcaType::kNewReno);
  auto b = make_cc(CcaType::kNewReno);
  a->on_loss(Seconds(1), a->cwnd_bytes());
  EXPECT_LT(a->cwnd_bytes(), b->cwnd_bytes());
}

}  // namespace
}  // namespace cebinae
