#include "core/flow_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/random.hpp"

namespace cebinae {
namespace {

FlowId flow(std::uint32_t i) { return FlowId{i, i + 1'000'000, 5000, 5000}; }

TEST(FlowCache, CountsSingleFlow) {
  FlowCache cache(2, 64);
  EXPECT_TRUE(cache.add(flow(1), 100));
  EXPECT_TRUE(cache.add(flow(1), 200));
  EXPECT_EQ(cache.bytes_for(flow(1)), std::optional<std::uint64_t>(300));
  EXPECT_EQ(cache.occupied_slots(), 1u);
}

TEST(FlowCache, PollReturnsAndResets) {
  FlowCache cache(2, 64);
  cache.add(flow(1), 100);
  cache.add(flow(2), 50);
  auto entries = cache.poll_and_reset();
  EXPECT_EQ(entries.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& e : entries) total += e.bytes;
  EXPECT_EQ(total, 150u);
  EXPECT_EQ(cache.occupied_slots(), 0u);
  EXPECT_FALSE(cache.bytes_for(flow(1)).has_value());
}

TEST(FlowCache, ExactKeysNeverMisattribute) {
  // The paper's "never make unfairness worse": a flow's counter only ever
  // reflects its own bytes, regardless of collisions.
  FlowCache cache(1, 4);  // tiny: plenty of collisions
  RandomStream rng(1);
  std::map<std::uint32_t, std::uint64_t> truth;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t f = static_cast<std::uint32_t>(rng.uniform_int(1, 50));
    if (cache.add(flow(f), 10)) truth[f] += 10;
  }
  for (const auto& e : cache.poll_and_reset()) {
    EXPECT_EQ(e.bytes, truth[e.flow.src]) << "flow " << e.flow.src;
  }
}

TEST(FlowCache, OverflowGoesUncounted) {
  FlowCache cache(1, 1);  // a single slot
  EXPECT_TRUE(cache.add(flow(1), 10));
  bool second_counted = cache.add(flow(2), 10);
  EXPECT_FALSE(second_counted);
  EXPECT_EQ(cache.uncounted_packets(), 1u);
}

TEST(FlowCache, LaterStagesAbsorbCollisions) {
  // With enough stages every distinct flow finds a slot eventually.
  FlowCache deep(4, 256);
  int counted = 0;
  for (std::uint32_t f = 1; f <= 256; ++f) {
    if (deep.add(flow(f), 1)) ++counted;
  }
  FlowCache shallow(1, 256);
  int counted_shallow = 0;
  for (std::uint32_t f = 1; f <= 256; ++f) {
    if (shallow.add(flow(f), 1)) ++counted_shallow;
  }
  EXPECT_GT(counted, counted_shallow);
  EXPECT_GT(counted, 240);  // 4 stages of 256 slots: almost everything fits
}

TEST(FlowCache, HeavyHitterSurvivesContention) {
  // One elephant among many mice: after poll-and-reset cycles, the elephant
  // must (with overwhelming probability) be counted, and its count must
  // dominate.
  FlowCache cache(2, 128);
  RandomStream rng(7);
  for (int round = 0; round < 10; ++round) {
    for (int pkt = 0; pkt < 5000; ++pkt) {
      // Elephant sends 30% of packets.
      if (pkt % 3 == 0) {
        cache.add(flow(0), kMtuBytes);
      } else {
        cache.add(flow(static_cast<std::uint32_t>(rng.uniform_int(1, 400))), 100);
      }
    }
    auto entries = cache.poll_and_reset();
    std::uint64_t max_bytes = 0;
    FlowId max_flow;
    for (const auto& e : entries) {
      if (e.bytes > max_bytes) {
        max_bytes = e.bytes;
        max_flow = e.flow;
      }
    }
    EXPECT_EQ(max_flow, flow(0)) << "round " << round;
  }
}

TEST(FlowCache, ReclaimAfterResetGivesFreshStart) {
  FlowCache cache(1, 1);
  cache.add(flow(1), 10);
  EXPECT_FALSE(cache.add(flow(2), 10));  // blocked by flow 1
  (void)cache.poll_and_reset();
  EXPECT_TRUE(cache.add(flow(2), 10));  // slot is free again
}

TEST(FlowCache, StagesHashIndependently) {
  // If stages used the same hash, a flow colliding in stage 0 would collide
  // in every stage. Verify that for a tiny 2-stage cache, pairs that share a
  // stage-0 slot usually do not share the stage-1 slot.
  FlowCache cache(2, 64);
  int both_counted = 0;
  int trials = 0;
  for (std::uint32_t a = 0; a < 300; a += 2) {
    FlowCache fresh(2, 64);
    fresh.add(flow(a), 1);
    fresh.add(flow(a + 1), 1);
    auto entries = fresh.poll_and_reset();
    ++trials;
    if (entries.size() == 2) ++both_counted;
  }
  EXPECT_GT(both_counted, trials * 9 / 10);
}

class FlowCacheGeometry : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FlowCacheGeometry, CapacityBound) {
  const auto [stages, slots] = GetParam();
  FlowCache cache(static_cast<std::uint32_t>(stages), static_cast<std::uint32_t>(slots));
  for (std::uint32_t f = 0; f < 10000; ++f) cache.add(flow(f), 1);
  EXPECT_LE(cache.occupied_slots(), static_cast<std::uint64_t>(stages) * slots);
  auto entries = cache.poll_and_reset();
  EXPECT_EQ(entries.size(), std::min<std::size_t>(entries.size(),
                                                  static_cast<std::size_t>(stages) * slots));
}

INSTANTIATE_TEST_SUITE_P(Geometries, FlowCacheGeometry,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(64, 512, 2048)));

}  // namespace
}  // namespace cebinae
