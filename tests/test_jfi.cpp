#include "metrics/jfi.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cebinae {
namespace {

TEST(Jfi, EqualAllocationIsOne) {
  const std::vector<double> x{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(jain_index(x), 1.0);
}

TEST(Jfi, SingleUserMonopolyIsOneOverN) {
  const std::vector<double> x{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_index(x), 0.25);
}

TEST(Jfi, ScaleInvariant) {
  const std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y;
  for (double v : x) y.push_back(v * 1e6);
  EXPECT_DOUBLE_EQ(jain_index(x), jain_index(y));
}

TEST(Jfi, KnownValue) {
  // JFI({1,1,6,1,1}) = 100 / (5*40) = 0.5 — the paper's Fig. 2a example.
  const std::vector<double> x{1, 1, 6, 1, 1};
  EXPECT_DOUBLE_EQ(jain_index(x), 0.5);
}

TEST(Jfi, EdgeCases) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{7}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{0, 0, 0}), 1.0);
}

TEST(Jfi, MonotoneInUnfairness) {
  EXPECT_GT(jain_index(std::vector<double>{4, 5}), jain_index(std::vector<double>{2, 8}));
  EXPECT_GT(jain_index(std::vector<double>{2, 8}), jain_index(std::vector<double>{1, 20}));
}

TEST(NormalizedJfi, PerfectMatchIsOne) {
  const std::vector<double> actual{6.25, 25.0, 12.5};
  EXPECT_DOUBLE_EQ(normalized_jain_index(actual, actual), 1.0);
}

TEST(NormalizedJfi, ProportionalMatchIsOne) {
  // Meeting 80% of everyone's ideal is perfectly "fair" by this metric.
  const std::vector<double> ideal{10, 20, 40};
  const std::vector<double> actual{8, 16, 32};
  EXPECT_DOUBLE_EQ(normalized_jain_index(actual, ideal), 1.0);
}

TEST(NormalizedJfi, PenalizesSkewAgainstIdeal) {
  const std::vector<double> ideal{10, 10};
  const std::vector<double> skewed{19, 1};
  EXPECT_LT(normalized_jain_index(skewed, ideal), 0.6);
}

TEST(NormalizedJfi, MismatchedSizesReturnsOne) {
  EXPECT_DOUBLE_EQ(
      normalized_jain_index(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}), 1.0);
}

}  // namespace
}  // namespace cebinae
