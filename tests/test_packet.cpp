#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cebinae {
namespace {

TEST(FlowId, EqualityAndOrdering) {
  const FlowId a{1, 2, 100, 200};
  const FlowId b{1, 2, 100, 200};
  const FlowId c{1, 2, 100, 201};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(FlowId, ReversedSwapsEndpoints) {
  const FlowId f{1, 2, 100, 200};
  const FlowId r = f.reversed();
  EXPECT_EQ(r.src, 2u);
  EXPECT_EQ(r.dst, 1u);
  EXPECT_EQ(r.src_port, 200);
  EXPECT_EQ(r.dst_port, 100);
  EXPECT_EQ(r.reversed(), f);
}

TEST(FlowId, HashDistinguishesFields) {
  FlowIdHash h;
  const FlowId base{1, 2, 100, 200};
  EXPECT_NE(h(base), h(FlowId{2, 2, 100, 200}));
  EXPECT_NE(h(base), h(FlowId{1, 3, 100, 200}));
  EXPECT_NE(h(base), h(FlowId{1, 2, 101, 200}));
  EXPECT_NE(h(base), h(FlowId{1, 2, 100, 201}));
}

TEST(FlowId, HashDispersionOverSequentialFlows) {
  // Sequential node ids (the common scenario layout) must not collide in the
  // low bits, or the flow cache would degenerate.
  FlowIdHash h;
  std::unordered_set<std::size_t> low_bits;
  const std::size_t n = 4096;
  for (std::uint32_t i = 0; i < n; ++i) {
    low_bits.insert(h(FlowId{i, i + 1, 5000, 5000}) % n);
  }
  // Expect at least ~60% distinct buckets (random would give ~63%).
  EXPECT_GT(low_bits.size(), n * 55 / 100);
}

TEST(Packet, SeqEnd) {
  Packet p;
  p.seq = 1000;
  p.payload_bytes = 500;
  EXPECT_EQ(p.seq_end(), 1500u);
}

TEST(Packet, WireConstantsAreConsistent) {
  EXPECT_EQ(kMssBytes + kHeaderBytes, kMtuBytes);
  EXPECT_GE(kAckBytes, kHeaderBytes);
}

}  // namespace
}  // namespace cebinae
