#include "tcp/bic.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"

namespace cebinae {
namespace {

constexpr std::uint32_t kMss = kMssBytes;

void grow_to(Bic& cc, std::uint64_t target_bytes) {
  while (cc.cwnd_bytes() < target_bytes) {
    cc.on_ack(make_ack(Seconds(1), 2 * kMss, Milliseconds(100)));
  }
}

TEST(Bic, SlowStartDoubles) {
  Bic cc(kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(Bic, LossReducesByBeta08) {
  Bic cc(kMss);
  grow_to(cc, 100ull * kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  cc.on_loss(Seconds(2), before);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 0.8 * static_cast<double>(before),
              static_cast<double>(kMss));
}

TEST(Bic, BinarySearchHalvesDistancePerRound) {
  Bic cc(kMss);
  grow_to(cc, 100ull * kMss);
  cc.on_loss(Seconds(2), cc.cwnd_bytes());  // w_max=100, cwnd=80
  const double w_max = cc.w_max_segments();
  const double cwnd0 = static_cast<double>(cc.cwnd_bytes()) / kMss;
  Time now = Seconds(3);
  now = feed_round(cc, now, Milliseconds(100), kMss);
  const double cwnd1 = static_cast<double>(cc.cwnd_bytes()) / kMss;
  // One round closes a large fraction of the distance to w_max. (The per-ACK
  // formulation, like Linux's, recomputes the midpoint as the window grows,
  // so a round closes 1-e^{-1/2} ~ 39% of the gap rather than exactly half.)
  const double closed = (cwnd1 - cwnd0) / (w_max - cwnd0);
  EXPECT_GT(closed, 0.3);
  EXPECT_LT(closed, 0.55);
}

TEST(Bic, ConvergesToWmax) {
  Bic cc(kMss);
  grow_to(cc, 100ull * kMss);
  cc.on_loss(Seconds(2), cc.cwnd_bytes());
  const double w_max = cc.w_max_segments();
  Time now = Seconds(3);
  // Binary search halves the distance each round; 7 rounds from 80 toward
  // 100 lands within 2 segments (before max-probing takes over).
  for (int i = 0; i < 7; ++i) now = feed_round(cc, now, Milliseconds(100), kMss);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()) / kMss, w_max, 2.0);
}

TEST(Bic, IncrementCappedAtSmax) {
  Bic cc(kMss);
  grow_to(cc, 400ull * kMss);
  cc.on_loss(Seconds(2), cc.cwnd_bytes());  // distance to w_max = 80 segments
  const std::uint64_t before = cc.cwnd_bytes();
  Time now = Seconds(3);
  now = feed_round(cc, now, Milliseconds(100), kMss);
  // Even with 80 segments of distance, one round adds at most Smax=16.
  EXPECT_LE(cc.cwnd_bytes() - before, 17ull * kMss);
}

TEST(Bic, MaxProbingBeyondWmax) {
  Bic cc(kMss);
  grow_to(cc, 100ull * kMss);
  cc.on_loss(Seconds(2), cc.cwnd_bytes());
  const double w_max = cc.w_max_segments();
  Time now = Seconds(3);
  for (int i = 0; i < 40; ++i) now = feed_round(cc, now, Milliseconds(100), kMss);
  // Without further loss, BIC probes beyond the old maximum.
  EXPECT_GT(static_cast<double>(cc.cwnd_bytes()) / kMss, w_max + 1.0);
}

TEST(Bic, FastConvergenceReducesWmax) {
  Bic cc(kMss);
  grow_to(cc, 100ull * kMss);
  cc.on_loss(Seconds(2), cc.cwnd_bytes());
  const double w_max_1 = cc.w_max_segments();
  cc.on_loss(Seconds(3), cc.cwnd_bytes());  // cwnd (80) < w_max (100)
  EXPECT_LT(cc.w_max_segments(), w_max_1);
}

TEST(Bic, SmallWindowsGrowLikeReno) {
  Bic cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());  // 10 -> 8 segments, below low_window
  const std::uint64_t before = cc.cwnd_bytes();
  Time now = Seconds(2);
  now = feed_round(cc, now, Milliseconds(100), kMss);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes() - before), static_cast<double>(kMss),
              static_cast<double>(kMss) * 0.5);
}

TEST(Bic, RtoCollapses) {
  Bic cc(kMss);
  grow_to(cc, 50ull * kMss);
  cc.on_rto(Seconds(5));
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

}  // namespace
}  // namespace cebinae
