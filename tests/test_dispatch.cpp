// Dispatch data-plane tests: the JSONL row parser, RunRecord/TraceRow
// reconstruction (the %.17g round-trip the byte-identical report depends
// on), shard loading with torn lines, and the resume-parser regression for
// hand-truncated files (a crashed worker must never poison resume state).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "dispatch/merge.hpp"
#include "dispatch/row_parse.hpp"
#include "exp/experiment.hpp"
#include "exp/jsonl_writer.hpp"

namespace fs = std::filesystem;
using cebinae::dispatch::JsonField;
using cebinae::dispatch::ParsedRow;
using cebinae::dispatch::Shard;
using cebinae::dispatch::load_shard;
using cebinae::dispatch::parse_row;
using cebinae::dispatch::record_from_row;
using cebinae::dispatch::trace_from_row;

namespace {

std::string temp_file(const std::string& name) {
  return (fs::temp_directory_path() / ("cebinae_dispatch_test_" + name)).string();
}

// ---- parser ---------------------------------------------------------------

TEST(RowParse, ParsesTheShapesJsonObjectEmits) {
  cebinae::exp::JsonObject params;
  params.set("qdisc", "Cebinae");
  params.set("trial", 2);
  cebinae::exp::JsonObject o;
  o.set("label", "qdisc=Cebinae trial=2");
  o.set("params", params);
  o.set("jfi", 0.98765432109876543);
  o.set("count", std::uint64_t{18446744073709551615ull});  // max u64
  o.set("flag", true);
  o.set("bad", std::nan(""));  // serialized as null
  o.set("goodput_Bps", std::vector<double>{1.5, 2.5e9, 0.0});

  const auto row = parse_row(o.str());
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->str("label"), "qdisc=Cebinae trial=2");
  EXPECT_DOUBLE_EQ(row->num("jfi"), 0.98765432109876543);
  EXPECT_EQ(row->u64("count"), 18446744073709551615ull);
  const JsonField* flag = row->find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->kind, JsonField::Kind::kBool);
  EXPECT_TRUE(flag->b);
  const JsonField* bad = row->find("bad");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->kind, JsonField::Kind::kNull);
  const std::vector<double>* arr = row->arr("goodput_Bps");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(*arr, (std::vector<double>{1.5, 2.5e9, 0.0}));
  // Nested object captured verbatim.
  const JsonField* p = row->find("params");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, JsonField::Kind::kObject);
  EXPECT_EQ(p->str, params.str());
}

TEST(RowParse, ExactDoubleRoundTrip) {
  // The byte-identity contract: %.17g out, strtod in, %.17g out again must
  // reproduce the identical bytes.
  for (double v : {1.0 / 3.0, 0.1 + 0.2, 6.62607015e-34, 123456789.123456789}) {
    cebinae::exp::JsonObject o;
    o.set("v", v);
    const auto row = parse_row(o.str());
    ASSERT_TRUE(row.has_value());
    cebinae::exp::JsonObject again;
    again.set("v", row->num("v"));
    EXPECT_EQ(o.str(), again.str());
  }
}

TEST(RowParse, RejectsMalformedAndTruncated) {
  EXPECT_FALSE(parse_row("").has_value());
  EXPECT_FALSE(parse_row("not json").has_value());
  EXPECT_FALSE(parse_row(R"({"a":1)").has_value());
  EXPECT_FALSE(parse_row(R"({"a":[1,2)").has_value());
  EXPECT_FALSE(parse_row(R"({"a":"unterminated)").has_value());
  EXPECT_FALSE(parse_row(R"({"a":1}garbage)").has_value());
  EXPECT_TRUE(parse_row("{}").has_value());
}

TEST(RowParse, EscapedStringsRoundTrip) {
  cebinae::exp::JsonObject o;
  o.set("msg", "line1\nline2\t\"quoted\" back\\slash");
  const auto row = parse_row(o.str());
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->str("msg"), "line1\nline2\t\"quoted\" back\\slash");
}

// ---- is_complete_row / truncated resume regression ------------------------

TEST(CompleteRow, NaiveTrailingBraceIsNotEnough) {
  using cebinae::exp::is_complete_row;
  EXPECT_TRUE(is_complete_row(R"({"a":1,"params":{"x":2},"b":3})"));
  // Truncation landing just after the NESTED closing brace: ends in '}' but
  // the row is torn — the old trailing-brace check accepted this.
  EXPECT_FALSE(is_complete_row(R"({"a":1,"params":{"x":2})"));
  EXPECT_FALSE(is_complete_row(R"({"a":1,"b":)"));
  EXPECT_FALSE(is_complete_row(R"("a":1})"));
  // Braces inside strings must not count.
  EXPECT_TRUE(is_complete_row(R"({"label":"weird{]label","n":1})"));
  EXPECT_FALSE(is_complete_row(R"({"label":"open{string)"));
  EXPECT_FALSE(is_complete_row(""));
}

TEST(CompleteRow, HandTruncatedResumeFileSkipsOnlyTornRow) {
  // Regression for the satellite: a resume file whose final line was cut
  // mid-write (crashed worker) must yield every complete row and drop the
  // torn one — including the nasty case where the cut lands after a nested
  // '}' so the line LOOKS brace-terminated.
  std::stringstream file;
  file << R"({"label":"a","job_index":0,"jfi":0.5})" << "\n"
       << R"({"label":"b","job_index":1,"jfi":0.6})" << "\n"
       << R"({"label":"c","job_index":2,"params":{"trial":0})";  // torn after '}'
  const auto done = cebinae::exp::completed_job_indices(file);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_TRUE(done.count(0));
  EXPECT_TRUE(done.count(1));
  EXPECT_FALSE(done.count(2)) << "torn row must re-run, not resume over";
}

// ---- record / trace reconstruction ----------------------------------------

TEST(Reconstruct, ScenarioRecordRoundTrips) {
  cebinae::exp::ExperimentJob job;
  job.label = "qdisc=Cebinae trial=0";
  cebinae::exp::RunRecord rec;
  rec.seed = 0xABCDEF0123456789ull;
  rec.wall_seconds = 1.25;
  rec.result.goodput_Bps = {1234.5, 6789.25};
  rec.result.tail_goodput_Bps = {1200.0, 6700.0};
  rec.result.throughput_Bps = {9999.75};
  rec.result.total_goodput_Bps = 8023.75;
  rec.result.jfi = 0.97531;

  const cebinae::exp::JsonObject row =
      cebinae::exp::result_row(job, /*job_index=*/7, /*base_seed=*/42, rec);
  const auto parsed = parse_row(row.str());
  ASSERT_TRUE(parsed.has_value());
  const cebinae::exp::RunRecord back = record_from_row(*parsed, /*custom=*/false);

  EXPECT_EQ(back.seed, rec.seed);
  EXPECT_EQ(back.result.goodput_Bps, rec.result.goodput_Bps);
  EXPECT_EQ(back.result.tail_goodput_Bps, rec.result.tail_goodput_Bps);
  EXPECT_EQ(back.result.throughput_Bps, rec.result.throughput_Bps);
  EXPECT_EQ(back.result.total_goodput_Bps, rec.result.total_goodput_Bps);
  EXPECT_EQ(back.result.jfi, rec.result.jfi);
  EXPECT_TRUE(back.extra.empty()) << "scenario rows must not invent extras";
}

TEST(Reconstruct, CustomRecordRestoresExtrasInOrder) {
  cebinae::exp::ExperimentJob job;
  job.label = "model trial=0";
  job.custom = [](std::uint64_t) {
    return std::vector<std::pair<std::string, double>>{};
  };
  cebinae::exp::RunRecord rec;
  rec.seed = 3;
  rec.wall_seconds = 0.5;
  rec.extra = {{"occupancy", 0.125}, {"rotations", 17.0}, {"drop_pct", 2.5}};

  const cebinae::exp::JsonObject row = cebinae::exp::result_row(job, 0, 1, rec);
  const auto parsed = parse_row(row.str());
  ASSERT_TRUE(parsed.has_value());
  const cebinae::exp::RunRecord back = record_from_row(*parsed, /*custom=*/true);
  ASSERT_EQ(back.extra.size(), 3u);
  EXPECT_EQ(back.extra[0], (std::pair<std::string, double>{"occupancy", 0.125}));
  EXPECT_EQ(back.extra[1], (std::pair<std::string, double>{"rotations", 17.0}));
  EXPECT_EQ(back.extra[2], (std::pair<std::string, double>{"drop_pct", 2.5}));
}

TEST(Reconstruct, TraceRowRoundTripsScalarsArraysAndNaN) {
  cebinae::obs::TraceRow row(12.5);
  row.set("jfi", 0.875);
  row.set("stalled", std::nan(""));  // serialized as null
  row.set("tput_Bps", std::vector<double>{100.5, 200.25});

  cebinae::exp::ExperimentJob job;
  job.label = "qdisc=FIFO";
  const cebinae::exp::JsonObject json = cebinae::exp::trace_row(job, 4, 99, row);
  const auto parsed = parse_row(json.str());
  ASSERT_TRUE(parsed.has_value());
  const cebinae::obs::TraceRow back = trace_from_row(*parsed);

  EXPECT_EQ(back.t_s(), 12.5);
  EXPECT_EQ(back.scalar("jfi"), 0.875);
  EXPECT_TRUE(std::isnan(back.scalar("stalled")));
  const std::vector<double>* arr = back.array("tput_Bps");
  ASSERT_NE(arr, nullptr);
  EXPECT_EQ(*arr, (std::vector<double>{100.5, 200.25}));
  // Job-context fields must NOT leak into the reconstructed row.
  EXPECT_TRUE(std::isnan(back.scalar("job_index")));
  EXPECT_TRUE(std::isnan(back.scalar("seed")));
  // Serializing the reconstruction again reproduces the identical bytes —
  // the merged --trace-out contract.
  const cebinae::exp::JsonObject again = cebinae::exp::trace_row(job, 4, 99, back);
  EXPECT_EQ(json.str(), again.str());
}

// ---- shard loading --------------------------------------------------------

TEST(ShardLoad, SkipsTornLinesAndKeepsFirstClaim) {
  const std::string results = temp_file("shard.results.jsonl");
  const std::string traces = temp_file("shard.trace.jsonl");
  {
    std::ofstream out(results, std::ios::trunc);
    out << R"({"label":"a","job_index":3,"jfi":0.5})" << "\n";
    out << R"({"label":"a","job_index":3,"jfi":0.9})" << "\n";  // later dup claim
    out << R"({"label":"b","job_index":4,"jfi":0.7)";           // torn final line
  }
  {
    std::ofstream out(traces, std::ios::trunc);
    out << R"({"label":"a","job_index":3,"seed":1,"t_s":1,"jfi":0.5})" << "\n";
    out << R"({"label":"a","job_index":3,"seed":1,"t_s":2,"jfi":0.6})" << "\n";
  }
  const Shard shard = load_shard("w0", results, traces);
  EXPECT_EQ(shard.result_by_job.size(), 1u);
  ASSERT_TRUE(shard.result_by_job.count(3));
  EXPECT_NE(shard.result_by_job.at(3).find("0.5"), std::string::npos)
      << "first claim's row wins within a shard";
  ASSERT_TRUE(shard.trace_by_job.count(3));
  EXPECT_EQ(shard.trace_by_job.at(3).size(), 2u) << "trace rows stay time-ordered";
  EXPECT_FALSE(shard.result_by_job.count(4)) << "torn line treated as never written";
  std::remove(results.c_str());
  std::remove(traces.c_str());
}

// ---- JsonlWriter dispatch-facing surface ----------------------------------

TEST(JsonlWriterDispatch, WriteLineCopiesVerbatimAndCounts) {
  const std::string path = temp_file("writer.jsonl");
  {
    cebinae::exp::JsonlWriter w(path, cebinae::exp::JsonlWriter::Mode::kTruncate);
    cebinae::exp::JsonObject o;
    o.set("a", 1);
    w.write(o);
    w.write_line(R"({"copied":"verbatim","jfi":0.123456789012345678})");
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string l1, l2;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_EQ(l1, R"({"a":1})");
  EXPECT_EQ(l2, R"({"copied":"verbatim","jfi":0.123456789012345678})");
  std::remove(path.c_str());
}

}  // namespace
