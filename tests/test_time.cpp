#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cebinae {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time().ns(), 0);
  EXPECT_EQ(Time(), Time::zero());
}

TEST(Time, UnitConstructors) {
  EXPECT_EQ(Nanoseconds(5).ns(), 5);
  EXPECT_EQ(Microseconds(5).ns(), 5'000);
  EXPECT_EQ(Milliseconds(5).ns(), 5'000'000);
  EXPECT_EQ(Seconds(5).ns(), 5'000'000'000);
}

TEST(Time, FractionalConstructors) {
  EXPECT_EQ(SecondsF(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(MillisecondsF(20.4).ns(), 20'400'000);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(Seconds(2).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(Milliseconds(250).seconds(), 0.25);
  EXPECT_DOUBLE_EQ(Milliseconds(3).millis(), 3.0);
  EXPECT_DOUBLE_EQ(Microseconds(7).micros(), 7.0);
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Seconds(1) + Milliseconds(500), MillisecondsF(1500));
  EXPECT_EQ(Seconds(1) - Milliseconds(250), Milliseconds(750));
  EXPECT_EQ(Milliseconds(3) * 4, Milliseconds(12));
  EXPECT_EQ(4 * Milliseconds(3), Milliseconds(12));
  EXPECT_EQ(Seconds(10) / Seconds(2), 5);
  EXPECT_EQ(Seconds(1) / 4, Milliseconds(250));
  EXPECT_EQ(Seconds(1) % Milliseconds(300), Milliseconds(100));
}

TEST(Time, CompoundAssignment) {
  Time t = Seconds(1);
  t += Milliseconds(500);
  EXPECT_EQ(t, Milliseconds(1500));
  t -= Seconds(1);
  EXPECT_EQ(t, Milliseconds(500));
}

TEST(Time, Ordering) {
  EXPECT_LT(Milliseconds(999), Seconds(1));
  EXPECT_GT(Seconds(1), Microseconds(999'999));
  EXPECT_LE(Seconds(1), Seconds(1));
  EXPECT_LT(Time::zero(), Time::max());
}

TEST(Time, NegativeDurations) {
  const Time t = Milliseconds(1) - Milliseconds(3);
  EXPECT_EQ(t.ns(), -2'000'000);
  EXPECT_LT(t, Time::zero());
}

TEST(Time, StreamOutput) {
  std::ostringstream oss;
  oss << Microseconds(3);
  EXPECT_EQ(oss.str(), "3000ns");
}

}  // namespace
}  // namespace cebinae
