#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cebinae {
namespace {

TEST(Random, DeterministicForSeed) {
  RandomStream a(7);
  RandomStream b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Random, DifferentSeedsDiffer) {
  RandomStream a(1);
  RandomStream b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Random, DerivedStreamsAreIndependentOfParentDraws) {
  RandomStream parent(42);
  RandomStream child1 = parent.derive("x");
  (void)parent.uniform(0, 1);  // consume from parent
  RandomStream parent2(42);
  RandomStream child2 = parent2.derive("x");
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(child1.uniform(0, 1), child2.uniform(0, 1));
  }
}

TEST(Random, DerivedStreamsWithDifferentTagsDiffer) {
  RandomStream parent(42);
  RandomStream a = parent.derive("a");
  RandomStream b = parent.derive("b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Random, UniformRespectsBounds) {
  RandomStream rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Random, UniformIntInclusiveBounds) {
  RandomStream rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 1);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, ExponentialMeanConverges) {
  RandomStream rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Random, ParetoRespectsScale) {
  RandomStream rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(10.0, 1.5), 10.0);
  }
}

TEST(Random, ParetoIsHeavyTailed) {
  // P(X > 10*xm) = 10^-alpha; with alpha = 1 expect ~10% of draws.
  RandomStream rng(17);
  const int n = 20000;
  int above = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.pareto(1.0, 1.0) > 10.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.1, 0.02);
}

TEST(Random, BernoulliProbability) {
  RandomStream rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Random, NormalMoments) {
  RandomStream rng(23);
  const int n = 50000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

}  // namespace
}  // namespace cebinae
