#include "queueing/token_bucket.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(TokenBucket, StartsFullAndAdmitsBurst) {
  TokenBucket tb(1000.0, 5000.0);  // 1 kB/s, 5 kB burst
  EXPECT_TRUE(tb.conforms(5000, Time::zero()));
  EXPECT_FALSE(tb.conforms(1, Time::zero()));
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket tb(1000.0, 5000.0);
  EXPECT_TRUE(tb.conforms(5000, Time::zero()));
  // After 2 seconds: 2000 tokens accrued.
  EXPECT_TRUE(tb.conforms(2000, Seconds(2)));
  EXPECT_FALSE(tb.conforms(1, Seconds(2)));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket tb(1000.0, 5000.0);
  // 100 s idle would accrue 100 kB, but the bucket caps at 5 kB.
  EXPECT_DOUBLE_EQ(tb.tokens(Seconds(100)), 5000.0);
}

TEST(TokenBucket, LongRunAdmitsExactlyRate) {
  TokenBucket tb(10'000.0, 1'000.0);
  std::uint64_t admitted = 0;
  for (int ms = 0; ms < 10'000; ++ms) {
    if (tb.conforms(100, Milliseconds(ms))) admitted += 100;
  }
  // 10 s at 10 kB/s = 100 kB (+ initial burst).
  EXPECT_NEAR(static_cast<double>(admitted), 101'000.0, 1'000.0);
}

Packet pkt(std::uint32_t flow, std::uint32_t size = kMtuBytes) {
  Packet p;
  p.flow = FlowId{flow, 1000, 5000, 5000};
  p.size_bytes = size;
  return p;
}

// 100 Mbps port: 1.25 MB per 100 ms measurement interval.
constexpr std::uint64_t kRate = 100'000'000;

TEST(Strawman, PassesTrafficWhenUnsaturated) {
  Scheduler sched;
  StrawmanQueueDisc q(sched, kRate, 100 * kMtuBytes);
  q.enqueue(pkt(1));
  EXPECT_TRUE(q.dequeue().has_value());
  sched.run_until(Seconds(1));
  EXPECT_FALSE(q.limiting());
}

TEST(Strawman, FreezesAtMaxRateWhenSaturated) {
  Scheduler sched;
  StrawmanQueueDisc q(sched, kRate, 2000 * kMtuBytes);
  // Saturate: flow 1 carries 2/3, flow 2 carries 1/3 of ~line rate.
  std::function<void()> feed = [&] {
    for (int i = 0; i < 6; ++i) q.enqueue(pkt(1));
    for (int i = 0; i < 3; ++i) q.enqueue(pkt(2));
    for (int i = 0; i < 9; ++i) (void)q.dequeue();
    sched.schedule(Milliseconds(1), feed);
  };
  sched.schedule(Milliseconds(1), feed);
  sched.run_until(Milliseconds(250));
  EXPECT_TRUE(q.limiting());
  // Frozen at the larger flow's rate: 6 MTU/ms = 72 Mbps.
  EXPECT_NEAR(q.frozen_rate_Bps() * 8 / 1e6, 72.0, 8.0);
}

TEST(Strawman, ReleasesWhenDemandDrops) {
  Scheduler sched;
  StrawmanQueueDisc q(sched, kRate, 2000 * kMtuBytes);
  bool feeding = true;
  std::function<void()> feed = [&] {
    if (feeding) {
      for (int i = 0; i < 9; ++i) q.enqueue(pkt(1));
      for (int i = 0; i < 9; ++i) (void)q.dequeue();
    }
    sched.schedule(Milliseconds(1), feed);
  };
  sched.schedule(Milliseconds(1), feed);
  sched.run_until(Milliseconds(250));
  ASSERT_TRUE(q.limiting());
  feeding = false;
  sched.run_until(Milliseconds(500));
  EXPECT_FALSE(q.limiting());
}

TEST(Strawman, LimitsDropNonconformingTraffic) {
  // Freeze while the top flow runs at ~60 Mbps, then let it try to ramp to
  // ~108 Mbps: the excess must be dropped by its token bucket.
  Scheduler sched;
  StrawmanParams params;
  params.burst_factor = 0.5;
  StrawmanQueueDisc q(sched, kRate, 2000 * kMtuBytes, params);
  bool ramped = false;
  std::function<void()> feed = [&] {
    for (int i = 0; i < (ramped ? 9 : 5); ++i) q.enqueue(pkt(1));
    for (int i = 0; i < 4; ++i) q.enqueue(pkt(2));
    for (int i = 0; i < 9; ++i) (void)q.dequeue();
    sched.schedule(Milliseconds(1), feed);
  };
  sched.schedule(Milliseconds(1), feed);
  sched.run_until(Milliseconds(300));
  ASSERT_TRUE(q.limiting());
  const double frozen = q.frozen_rate_Bps() * 8 / 1e6;
  EXPECT_LT(frozen, 70.0);
  ramped = true;
  sched.run_until(Seconds(1));
  EXPECT_GT(q.limited_drops(), 0u);
}

TEST(Strawman, CannotRepairExistingUnfairness) {
  // The §3.2 failure mode in miniature: with a {6,1} offered split the
  // strawman freezes the big flow at ~its unfair rate; the allocation stays
  // roughly {6,1} rather than moving toward {3.5,3.5}.
  Scheduler sched;
  StrawmanQueueDisc q(sched, kRate, 2000 * kMtuBytes);
  std::uint64_t got1 = 0;
  std::uint64_t got2 = 0;
  std::function<void()> feed = [&] {
    for (int i = 0; i < 6; ++i) q.enqueue(pkt(1));
    for (int i = 0; i < 3; ++i) q.enqueue(pkt(2));
    for (int i = 0; i < 9; ++i) {
      auto p = q.dequeue();
      if (!p) break;
      (p->flow.src == 1 ? got1 : got2) += p->size_bytes;
    }
    sched.schedule(Milliseconds(1), feed);
  };
  sched.schedule(Milliseconds(1), feed);
  sched.run_until(Seconds(2));
  // Ratio stays near the offered 2:1 (within 25%): no redistribution.
  EXPECT_NEAR(static_cast<double>(got1) / static_cast<double>(got2), 2.0, 0.5);
}

}  // namespace
}  // namespace cebinae
