#include "workload/udp_app.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace cebinae {
namespace {

struct UdpHarness {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  UdpSink sink{b, 9};

  UdpHarness() {
    net.link(a, b, 1'000'000'000, Microseconds(10), nullptr, nullptr);
    net.build_routes();
  }

  OnOffUdpSender::Spec spec(double rate_bps) {
    OnOffUdpSender::Spec s;
    s.flow = FlowId{a.id(), b.id(), 1, 9};
    s.rate_bps = rate_bps;
    return s;
  }
};

TEST(UdpApp, CbrRateIsAccurate) {
  UdpHarness h;
  OnOffUdpSender sender(h.net.scheduler(), h.a, h.spec(12'000'000));  // 1000 pkt/s
  sender.start();
  h.net.scheduler().run_until(Seconds(1));
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 1000.0, 2.0);
  EXPECT_NEAR(static_cast<double>(h.sink.packets()), 1000.0, 2.0);
}

TEST(UdpApp, OnOffDutyCycleHalvesVolume) {
  UdpHarness h;
  auto on_off = h.spec(12'000'000);
  on_off.on_duration = Milliseconds(100);
  on_off.off_duration = Milliseconds(100);
  OnOffUdpSender sender(h.net.scheduler(), h.a, on_off);
  sender.start();
  h.net.scheduler().run_until(Seconds(1));
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 500.0, 30.0);
}

TEST(UdpApp, StartTimeRespected) {
  UdpHarness h;
  auto s = h.spec(12'000'000);
  s.start_time = Milliseconds(500);
  OnOffUdpSender sender(h.net.scheduler(), h.a, s);
  sender.start();
  h.net.scheduler().run_until(Milliseconds(499));
  EXPECT_EQ(sender.packets_sent(), 0u);
  h.net.scheduler().run_until(Seconds(1));
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 500.0, 2.0);
}

TEST(UdpApp, StopTimeHaltsSending) {
  UdpHarness h;
  auto s = h.spec(12'000'000);
  s.stop_time = Milliseconds(200);
  OnOffUdpSender sender(h.net.scheduler(), h.a, s);
  sender.start();
  h.net.scheduler().run_until(Seconds(1));
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 200.0, 3.0);
}

TEST(UdpApp, SinkCountsPayloadBytes) {
  UdpHarness h;
  auto s = h.spec(12'000'000);
  s.packet_bytes = 1000;
  OnOffUdpSender sender(h.net.scheduler(), h.a, s);
  sender.start();
  h.net.scheduler().run_until(Milliseconds(100));
  EXPECT_EQ(h.sink.bytes(), h.sink.packets() * (1000 - kHeaderBytes));
}

}  // namespace
}  // namespace cebinae
