// src/obs unit tests: MetricsRegistry cells and sampling order, TraceRow /
// TraceSink formatting and column extraction, and Probe scheduling on the
// deterministic event loop.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace cebinae::obs {
namespace {

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CounterIsGetOrCreate) {
  MetricsRegistry reg;
  Counter& a = reg.counter("net.tx_bytes");
  Counter& b = reg.counter("net.tx_bytes");
  EXPECT_EQ(&a, &b);  // every Device shares one aggregate cell
  a.add(1500);
  b.inc();
  EXPECT_EQ(reg.find_counter("net.tx_bytes")->value(), 1501u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, CellAddressesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("c0");
  for (int i = 0; i < 100; ++i) reg.counter("c" + std::to_string(i));
  first.inc();
  EXPECT_EQ(reg.find_counter("c0")->value(), 1u);  // deque-backed, no realloc
}

TEST(MetricsRegistry, HistogramTracksSummaryStats) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("tcp.srtt_s");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histograms read as zeros
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  h.observe(0.020);
  h.observe(0.040);
  h.observe(0.030);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.090);
  EXPECT_DOUBLE_EQ(h.mean(), 0.030);
  EXPECT_DOUBLE_EQ(h.min(), 0.020);
  EXPECT_DOUBLE_EQ(h.max(), 0.040);
}

TEST(MetricsRegistry, SampleIntoUsesRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("z.counter").add(7);
  reg.gauge("a.gauge", [] { return 2.5; });
  reg.histogram("m.hist").observe(4.0);
  reg.histogram("m.hist").observe(8.0);

  TraceRow row(1.0);
  reg.sample_into(row);
  // Registration order, not alphabetical: z.counter, a.gauge, then the
  // histogram's three derived scalars.
  const auto& scalars = row.scalars();
  ASSERT_EQ(scalars.size(), 5u);
  EXPECT_EQ(scalars[0].first, "z.counter");
  EXPECT_DOUBLE_EQ(scalars[0].second, 7.0);
  EXPECT_EQ(scalars[1].first, "a.gauge");
  EXPECT_DOUBLE_EQ(scalars[1].second, 2.5);
  EXPECT_EQ(scalars[2].first, "m.hist.n");
  EXPECT_DOUBLE_EQ(scalars[2].second, 2.0);
  EXPECT_EQ(scalars[3].first, "m.hist.mean");
  EXPECT_DOUBLE_EQ(scalars[3].second, 6.0);
  EXPECT_EQ(scalars[4].first, "m.hist.max");
  EXPECT_DOUBLE_EQ(scalars[4].second, 8.0);
}

TEST(MetricsRegistry, GaugeIsEvaluatedAtSampleTime) {
  MetricsRegistry reg;
  double depth = 0.0;
  reg.gauge("q.depth", [&depth] { return depth; });
  EXPECT_TRUE(reg.has_gauge("q.depth"));
  TraceRow r1(1.0);
  reg.sample_into(r1);
  depth = 42.0;
  TraceRow r2(2.0);
  reg.sample_into(r2);
  EXPECT_DOUBLE_EQ(r1.scalar("q.depth"), 0.0);
  EXPECT_DOUBLE_EQ(r2.scalar("q.depth"), 42.0);
}

// --- TraceRow / TraceSink -------------------------------------------------

TEST(TraceRow, AccessorsAndAbsenceSentinels) {
  TraceRow row(3.5);
  row.set("jfi", 0.75);
  row.set("tput_Bps", std::vector<double>{100.0, 200.0});
  EXPECT_DOUBLE_EQ(row.t_s(), 3.5);
  EXPECT_DOUBLE_EQ(row.scalar("jfi"), 0.75);
  EXPECT_TRUE(std::isnan(row.scalar("absent")));
  ASSERT_NE(row.array("tput_Bps"), nullptr);
  EXPECT_EQ(row.array("tput_Bps")->size(), 2u);
  EXPECT_EQ(row.array("absent"), nullptr);
}

TEST(TraceRow, SerializesExactlyInInsertionOrder) {
  TraceRow row(2.0);
  row.set("jfi", 0.5);
  row.set("drops", 3.0);
  row.set("tput_Bps", std::vector<double>{1.0, 0.25});
  // t_s first, scalars before arrays, %.17g-exact numbers — the byte-stable
  // schema the determinism tests diff.
  EXPECT_EQ(row.to_json().str(), R"({"t_s":2,"jfi":0.5,"drops":3,"tput_Bps":[1,0.25]})");
}

TEST(TraceSink, ExtractsColumnsAndDrainsRows) {
  TraceSink sink;
  for (int i = 1; i <= 3; ++i) {
    TraceRow row(static_cast<double>(i));
    row.set("jfi", 1.0 / i);
    row.set("tput_Bps", std::vector<double>{10.0 * i, 20.0 * i});
    sink.push(std::move(row));
  }
  EXPECT_EQ(sink.size(), 3u);

  const std::vector<double> jfi = sink.series("jfi");
  ASSERT_EQ(jfi.size(), 3u);
  EXPECT_DOUBLE_EQ(jfi[1], 0.5);

  const std::vector<double> f1 = sink.array_series("tput_Bps", 1);
  ASSERT_EQ(f1.size(), 3u);
  EXPECT_DOUBLE_EQ(f1[2], 60.0);
  EXPECT_TRUE(std::isnan(sink.array_series("tput_Bps", 9)[0]));

  const std::vector<TraceRow> rows = sink.take_rows();
  EXPECT_EQ(rows.size(), 3u);
  EXPECT_TRUE(sink.empty());
  // Static forms work on the moved-out rows (RunRecord::trace).
  EXPECT_DOUBLE_EQ(TraceSink::series_of(rows, "jfi")[0], 1.0);
}

// --- Probe ----------------------------------------------------------------

TEST(Probe, TicksEveryPeriodStartingAtPeriod) {
  Scheduler sched;
  TraceSink sink;
  Probe probe(sched, Milliseconds(100), sink);
  std::vector<double> seen;
  probe.add_scalar("x", [&seen](Time now) {
    seen.push_back(now.seconds());
    return now.seconds() * 2.0;
  });
  probe.start();
  sched.run_until(Seconds(1));
  // First tick at t=period, last at t=1.0 (run_until is inclusive).
  EXPECT_EQ(probe.ticks(), 10u);
  ASSERT_EQ(sink.size(), 10u);
  EXPECT_DOUBLE_EQ(sink.rows()[0].t_s(), 0.1);
  EXPECT_DOUBLE_EQ(sink.rows()[9].t_s(), 1.0);
  EXPECT_DOUBLE_EQ(sink.rows()[4].scalar("x"), 1.0);
  EXPECT_DOUBLE_EQ(seen[0], 0.1);
}

TEST(Probe, StopCancelsFutureTicks) {
  Scheduler sched;
  TraceSink sink;
  Probe probe(sched, Milliseconds(100), sink);
  probe.add_scalar("x", [](Time) { return 1.0; });
  probe.start();
  sched.schedule(Milliseconds(250), [&probe] { probe.stop(); });
  sched.run_until(Seconds(1));
  EXPECT_EQ(probe.ticks(), 2u);  // t=0.1 and t=0.2 only
  EXPECT_FALSE(probe.running());
  EXPECT_EQ(sink.size(), 2u);
}

TEST(Probe, SamplersRunInRegistrationOrder) {
  Scheduler sched;
  TraceSink sink;
  Probe probe(sched, Milliseconds(10), sink);
  probe.add_scalar("first", [](Time) { return 1.0; });
  probe.add_array("second", [](Time) { return std::vector<double>{2.0}; });
  MetricsRegistry reg;
  reg.counter("third").add(3);
  probe.sample_registry(reg);
  probe.start();
  sched.run_until(Milliseconds(10));
  ASSERT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.rows()[0].to_json().str(),
            R"({"t_s":0.01,"first":1,"third":3,"second":[2]})");
}

}  // namespace
}  // namespace cebinae::obs
