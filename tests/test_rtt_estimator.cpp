#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(RttEstimator, InitialRtoIsOneSecond) {
  RttEstimator est;
  EXPECT_EQ(est.rto(), Seconds(1));
  EXPECT_FALSE(est.has_sample());
}

TEST(RttEstimator, FirstSampleInitializesPerRfc6298) {
  RttEstimator est;
  est.on_sample(Milliseconds(100));
  EXPECT_EQ(est.srtt(), Milliseconds(100));
  EXPECT_EQ(est.rttvar(), Milliseconds(50));
  // RTO = SRTT + 4*RTTVAR = 100 + 200 = 300 ms.
  EXPECT_EQ(est.rto(), Milliseconds(300));
}

TEST(RttEstimator, SmoothingFollowsRfcWeights) {
  RttEstimator est;
  est.on_sample(Milliseconds(100));
  est.on_sample(Milliseconds(200));
  // SRTT = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(est.srtt().ns(), 112'500'000);
  // RTTVAR = 3/4*50 + 1/4*|200-100| = 62.5 ms
  EXPECT_EQ(est.rttvar().ns(), 62'500'000);
}

TEST(RttEstimator, ConvergesToSteadyRtt) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.on_sample(Milliseconds(80));
  EXPECT_NEAR(est.srtt().millis(), 80.0, 0.5);
  // With zero variance the floor keeps RTO at min_rto.
  EXPECT_EQ(est.rto(), Milliseconds(200));
}

TEST(RttEstimator, MinRtoFloorApplies) {
  RttEstimator est;
  est.on_sample(Milliseconds(10));  // RTO raw = 10 + 4*5 = 30 ms < 200 ms floor
  EXPECT_EQ(est.rto(), Milliseconds(200));
}

TEST(RttEstimator, BackoffDoublesAndClamps) {
  RttEstimator::Params params;
  params.max_rto = Seconds(4);
  RttEstimator est(params);
  EXPECT_EQ(est.rto(), Seconds(1));
  est.backoff();
  EXPECT_EQ(est.rto(), Seconds(2));
  est.backoff();
  EXPECT_EQ(est.rto(), Seconds(4));
  est.backoff();
  EXPECT_EQ(est.rto(), Seconds(4));  // clamped at max
}

TEST(RttEstimator, TracksMinimumRtt) {
  RttEstimator est;
  est.on_sample(Milliseconds(120));
  est.on_sample(Milliseconds(80));
  est.on_sample(Milliseconds(150));
  EXPECT_EQ(est.min_rtt(), Milliseconds(80));
}

TEST(RttEstimator, IgnoresNonPositiveSamples) {
  RttEstimator est;
  est.on_sample(Time::zero());
  est.on_sample(Milliseconds(-5));
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), Seconds(1));
}

TEST(RttEstimator, VarianceRaisesRto) {
  RttEstimator est;
  // Oscillating RTTs: variance stays high, RTO well above SRTT.
  for (int i = 0; i < 50; ++i) {
    est.on_sample(Milliseconds(i % 2 == 0 ? 50 : 250));
  }
  EXPECT_GT(est.rto(), est.srtt());
  EXPECT_GT(est.rttvar(), Milliseconds(30));
}

}  // namespace
}  // namespace cebinae
