// The worked examples of the paper's §3.2, as executable properties.
#include <gtest/gtest.h>

#include "runner/scenario.hpp"

namespace cebinae {
namespace {

// Example (1): fair flows on a single bottleneck. Cebinae taxes everyone
// (all within delta_f), but utilization "will never decrease by more than
// tau" and the allocation stays fair.
TEST(PaperExamples, HomogeneousFlowsStayFairAndEfficient) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 50'000'000;
  cfg.buffer_bytes = 420ull * kMtuBytes;
  cfg.qdisc = QdiscKind::kCebinae;
  cfg.cebinae.delta_flow = 0.15;  // homogeneous flows: tax the whole set
  cfg.duration = Seconds(25);
  cfg.seed = 9;
  cfg.flows = flows_of(CcaType::kNewReno, 4, Milliseconds(30));
  const ScenarioResult r = Scenario(cfg).run();

  // Whole-run JFI includes slow-start transients; 0.85 corresponds to a
  // steady allocation within ~25% across the four flows.
  EXPECT_GT(r.jfi, 0.85);
  // Efficiency cost bounded (tau = 1%, plus reclaim lag).
  EXPECT_GT(r.total_goodput_Bps * 8, 0.85 * 50e6);
}

// Example (1) rationale: "Cebinae instead chooses to ensure that there is
// always room for new flows to grow." Late joiners must reach a meaningful
// share of fair even against entrenched incumbents.
TEST(PaperExamples, NewFlowsCanGrowIntoASaturatedLink) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 50'000'000;
  cfg.buffer_bytes = 420ull * kMtuBytes;
  cfg.qdisc = QdiscKind::kCebinae;
  cfg.duration = Seconds(30);
  cfg.seed = 9;
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(30));
  for (FlowSpec f : flows_of(CcaType::kNewReno, 2, Milliseconds(30))) {
    f.start = Seconds(8);
    cfg.flows.push_back(f);
  }
  Scenario scenario(cfg);
  scenario.run();

  // Measure the joiners over the final third.
  const auto rates = scenario.stats().goodputs_Bps(Seconds(20), Seconds(30));
  const double fair = 50e6 / 8 / 4;
  EXPECT_GT(rates[2], 0.4 * fair);
  EXPECT_GT(rates[3], 0.4 * fair);
}

// Example (2): an unfair single-bottleneck allocation is repaired; assuming
// the aggressor always reclaims to its cap, convergence takes
// ~ln(2/3)/ln(1-tau) taxation steps — i.e., finite time, which we check as
// "the aggressor's tail-window share is well below its initial share".
TEST(PaperExamples, UnfairAllocationIsRepairedOverTime) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 50'000'000;
  cfg.buffer_bytes = 420ull * kMtuBytes;
  cfg.qdisc = QdiscKind::kCebinae;
  cfg.duration = Seconds(40);
  cfg.seed = 9;
  // The paper's "6x more effective" variant, realized as 8 Vegas victims
  // vs 1 NewReno aggressor (Fig. 7's mechanism at small scale).
  cfg.flows = flows_of(CcaType::kVegas, 8, Milliseconds(40));
  cfg.flows.push_back(FlowSpec{CcaType::kNewReno, Milliseconds(40)});
  Scenario scenario(cfg);
  scenario.run();

  const auto early = scenario.stats().goodputs_Bps(Seconds(2), Seconds(8));
  const auto late = scenario.stats().goodputs_Bps(Seconds(30), Seconds(40));
  const double fair = 50e6 / 8 / 9;
  // Aggressor taxed down substantially from its early share...
  EXPECT_LT(late[8], 0.6 * early[8]);
  // ...and the victims end near (at least half of) their fair share.
  double victims = 0;
  for (int i = 0; i < 8; ++i) victims += late[i];
  EXPECT_GT(victims / 8, 0.5 * fair);
}

// Definition 2's local test: an unsaturated link must never tax anyone.
TEST(PaperExamples, UnsaturatedLinkTaxesNoFlow) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;
  cfg.buffer_bytes = 420ull * kMtuBytes;
  cfg.qdisc = QdiscKind::kCebinae;
  cfg.duration = Seconds(10);
  cfg.seed = 9;
  // Demand-limited flows: two short transfers that never saturate 100 Mbps.
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(30));
  for (FlowSpec& f : cfg.flows) f.bytes = 2'000'000;  // 2 MB each
  Scenario scenario(cfg);
  scenario.run();
  EXPECT_FALSE(scenario.agent(0)->snapshot().saturated);
  EXPECT_TRUE(scenario.cebinae_qdisc(0)->top_flows().empty());
  // Both transfers complete in full.
  EXPECT_EQ(scenario.stats().total_bytes(scenario.flow_ids()[0]), 2'000'000u);
  EXPECT_EQ(scenario.stats().total_bytes(scenario.flow_ids()[1]), 2'000'000u);
}

}  // namespace
}  // namespace cebinae
