// End-to-end integration tests: full scenarios through the runner, asserting
// the qualitative behaviors the paper's evaluation is built on.
#include "runner/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "metrics/jfi.hpp"

namespace cebinae {
namespace {

ScenarioConfig base_config(QdiscKind qdisc) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 50'000'000;
  cfg.buffer_bytes = 256ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = Seconds(15);
  cfg.seed = 3;
  return cfg;
}

TEST(ScenarioIntegration, SingleFlowSaturatesFifoBottleneck) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.flows = flows_of(CcaType::kNewReno, 1, Milliseconds(20));
  ScenarioResult r = Scenario(cfg).run();
  EXPECT_GT(r.total_goodput_Bps * 8, 0.88 * 50e6);
  EXPECT_LE(r.throughput_Bps[0] * 8, 50e6 * 1.001);
}

TEST(ScenarioIntegration, TwoEqualFlowsShareFairlyUnderFifo) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  ScenarioResult r = Scenario(cfg).run();
  EXPECT_GT(r.jfi, 0.9);
}

TEST(ScenarioIntegration, RttAsymmetryIsUnfairUnderFifo) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  cfg.flows[1].rtt = Milliseconds(120);
  ScenarioResult r = Scenario(cfg).run();
  // The short-RTT flow dominates.
  EXPECT_GT(r.goodput_Bps[0], 1.5 * r.goodput_Bps[1]);
}

TEST(ScenarioIntegration, FqCodelEqualizesRttAsymmetry) {
  ScenarioConfig cfg = base_config(QdiscKind::kFqCoDel);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  cfg.flows[1].rtt = Milliseconds(120);
  ScenarioResult r = Scenario(cfg).run();
  EXPECT_GT(r.jfi, 0.9);
}

TEST(ScenarioIntegration, CebinaeImprovesRttUnfairness) {
  ScenarioConfig fifo_cfg = base_config(QdiscKind::kFifo);
  fifo_cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  fifo_cfg.flows[1].rtt = Milliseconds(120);
  fifo_cfg.duration = Seconds(30);
  ScenarioResult fifo = Scenario(fifo_cfg).run();

  ScenarioConfig ceb_cfg = fifo_cfg;
  ceb_cfg.qdisc = QdiscKind::kCebinae;
  ScenarioResult ceb = Scenario(ceb_cfg).run();

  EXPECT_GT(ceb.jfi, fifo.jfi);
  // Efficiency stays high despite the tax.
  EXPECT_GT(ceb.total_goodput_Bps, 0.85 * fifo.total_goodput_Bps);
}

TEST(ScenarioIntegration, CebinaeTaxesVegasStarvation) {
  // 8 Vegas vs 1 NewReno (scaled-down Fig. 7): FIFO starves Vegas badly;
  // Cebinae must improve the fairness index substantially.
  ScenarioConfig fifo_cfg = base_config(QdiscKind::kFifo);
  fifo_cfg.flows = flows_of(CcaType::kVegas, 8, Milliseconds(40));
  fifo_cfg.flows.push_back(FlowSpec{CcaType::kNewReno, Milliseconds(40)});
  fifo_cfg.duration = Seconds(30);
  ScenarioResult fifo = Scenario(fifo_cfg).run();

  ScenarioConfig ceb_cfg = fifo_cfg;
  ceb_cfg.qdisc = QdiscKind::kCebinae;
  ScenarioResult ceb = Scenario(ceb_cfg).run();

  EXPECT_LT(fifo.jfi, 0.65);  // documented starvation under FIFO
  EXPECT_GT(ceb.jfi, fifo.jfi + 0.1);
}

TEST(ScenarioIntegration, CebinaeAgentObservesSaturation) {
  ScenarioConfig cfg = base_config(QdiscKind::kCebinae);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  Scenario scenario(cfg);
  scenario.run();
  CebinaeAgent* agent = scenario.agent(0);
  ASSERT_NE(agent, nullptr);
  EXPECT_GT(agent->rotations(), 0u);
  EXPECT_GT(agent->recomputations(), 0u);
  // Long-lived greedy flows saturate the link.
  EXPECT_TRUE(agent->snapshot().saturated);
  EXPECT_FALSE(agent->snapshot().top_flows.empty());
}

TEST(ScenarioIntegration, DerivedCebinaeParamsSatisfyEq2) {
  ScenarioConfig cfg = base_config(QdiscKind::kCebinae);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(100));
  Scenario scenario(cfg);
  const CebinaeParams& p = scenario.effective_cebinae_params();
  const double drain_s = static_cast<double>(cfg.buffer_bytes) * 8.0 /
                         static_cast<double>(cfg.bottleneck_bps);
  EXPECT_GE(p.dt.seconds(), drain_s);                       // Eq. 2
  EXPECT_GE((p.dt * p.p_rounds).seconds(), 0.1);            // covers max RTT
  EXPECT_EQ(p.dt.ns() & (p.dt.ns() - 1), 0);                // power of two
}

TEST(ScenarioIntegration, ParkingLotIdealMatchesWaterFilling) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.chain_links = 3;
  // 2 end-to-end flows + 2 local flows on the middle link.
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(40));
  for (int i = 0; i < 2; ++i) {
    FlowSpec local{CcaType::kNewReno, Milliseconds(20)};
    local.enter = 1;
    local.exit = 2;
    cfg.flows.push_back(local);
  }
  Scenario scenario(cfg);
  const auto ideal = scenario.ideal_goodputs_Bps();
  ASSERT_EQ(ideal.size(), 4u);
  // All four contend on the middle link only: equal shares.
  for (double r : ideal) EXPECT_NEAR(r, ideal[0], 1.0);
}

TEST(ScenarioIntegration, MultiBottleneckFlowsAreForwarded) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.chain_links = 2;
  cfg.duration = Seconds(8);
  cfg.flows = flows_of(CcaType::kNewReno, 1, Milliseconds(40));  // end-to-end
  FlowSpec local{CcaType::kNewReno, Milliseconds(20)};
  local.enter = 1;
  local.exit = 2;
  cfg.flows.push_back(local);
  ScenarioResult r = Scenario(cfg).run();
  EXPECT_GT(r.goodput_Bps[0], 0.0);
  EXPECT_GT(r.goodput_Bps[1], 0.0);
  // Link 1 carries both flows; link 0 only the end-to-end flow.
  EXPECT_GT(r.throughput_Bps[1], r.throughput_Bps[0]);
}

TEST(ScenarioIntegration, DeterministicAcrossRuns) {
  ScenarioConfig cfg = base_config(QdiscKind::kCebinae);
  cfg.duration = Seconds(5);
  cfg.flows = flows_of(CcaType::kCubic, 3, Milliseconds(30));
  ScenarioResult a = Scenario(cfg).run();
  ScenarioResult b = Scenario(cfg).run();
  ASSERT_EQ(a.goodput_Bps.size(), b.goodput_Bps.size());
  for (std::size_t i = 0; i < a.goodput_Bps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.goodput_Bps[i], b.goodput_Bps[i]);
  }
}

TEST(ScenarioIntegration, ProbesFireDuringRun) {
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.duration = Seconds(5);
  cfg.flows = flows_of(CcaType::kNewReno, 1, Milliseconds(20));
  Scenario scenario(cfg);
  int fired = 0;
  scenario.add_probe(Seconds(1), [&](Time) { ++fired; });
  scenario.run();
  EXPECT_EQ(fired, 5);
}

TEST(ScenarioIntegration, BbrVsNewRenoIsUnfairUnderFifo) {
  // Scaled-down Fig. 8a: BBR claims far more than its share against many
  // NewReno flows.
  ScenarioConfig cfg = base_config(QdiscKind::kFifo);
  cfg.flows = flows_of(CcaType::kNewReno, 8, Milliseconds(40));
  cfg.flows.push_back(FlowSpec{CcaType::kBbr, Milliseconds(40)});
  cfg.duration = Seconds(20);
  ScenarioResult r = Scenario(cfg).run();
  const double fair_share = r.total_goodput_Bps / 9.0;
  EXPECT_GT(r.goodput_Bps.back(), 1.5 * fair_share);
}

}  // namespace
}  // namespace cebinae
