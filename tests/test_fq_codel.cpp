#include "queueing/fq_codel.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cebinae {
namespace {

Packet pkt(std::uint32_t flow, std::uint32_t size = kMtuBytes) {
  Packet p;
  p.flow = FlowId{flow, 1000 + flow, 5000, 5000};
  p.size_bytes = size;
  return p;
}

FqCoDelParams params(std::uint64_t limit = 10 << 20) {
  FqCoDelParams p;
  p.limit_bytes = limit;
  p.codel.use_ecn = false;
  return p;
}

TEST(FqCoDel, SingleFlowBehavesFifo) {
  Scheduler sched;
  FqCoDel q(sched, params());
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p = pkt(1);
    p.seq = i;
    q.enqueue(std::move(p));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(FqCoDel, InterleavesCompetingFlows) {
  Scheduler sched;
  FqCoDel q(sched, params());
  // Flow 1 floods; flow 2 sends a little. DRR must serve flow 2 roughly one
  // packet per round regardless of flow 1's backlog.
  for (int i = 0; i < 50; ++i) q.enqueue(pkt(1));
  for (int i = 0; i < 5; ++i) q.enqueue(pkt(2));

  std::map<NodeId, int> first_ten;
  for (int i = 0; i < 10; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++first_ten[p->flow.src];
  }
  EXPECT_EQ(first_ten[2], 5);  // the small flow finishes within 10 dequeues
}

TEST(FqCoDel, EqualBacklogsShareEqually) {
  Scheduler sched;
  FqCoDel q(sched, params());
  for (int i = 0; i < 30; ++i) {
    q.enqueue(pkt(1));
    q.enqueue(pkt(2));
    q.enqueue(pkt(3));
  }
  std::map<NodeId, int> served;
  for (int i = 0; i < 30; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served[p->flow.src];
  }
  EXPECT_EQ(served[1], 10);
  EXPECT_EQ(served[2], 10);
  EXPECT_EQ(served[3], 10);
}

TEST(FqCoDel, QuantumGivesByteFairnessForUnequalSizes) {
  Scheduler sched;
  FqCoDel q(sched, params());
  // Flow 1 sends MTU packets, flow 2 sends half-size packets.
  for (int i = 0; i < 40; ++i) q.enqueue(pkt(1, kMtuBytes));
  for (int i = 0; i < 80; ++i) q.enqueue(pkt(2, kMtuBytes / 2));

  std::map<NodeId, std::uint64_t> bytes;
  for (int i = 0; i < 60; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    bytes[p->flow.src] += p->size_bytes;
  }
  const double ratio = static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]);
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(FqCoDel, OverflowDropsFromFattestQueue) {
  Scheduler sched;
  FqCoDel q(sched, params(10 * kMtuBytes));
  for (int i = 0; i < 9; ++i) q.enqueue(pkt(1));
  q.enqueue(pkt(2));
  // Queue is exactly full; the next packet (any flow) forces a drop from
  // flow 1 (the fattest).
  q.enqueue(pkt(2));
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  std::map<NodeId, int> served;
  while (auto p = q.dequeue()) ++served[p->flow.src];
  EXPECT_EQ(served[1], 8);  // one of flow 1's packets was sacrificed
  EXPECT_EQ(served[2], 2);
}

TEST(FqCoDel, IdealModeIsolatesEveryFlow) {
  Scheduler sched;
  FqCoDelParams p = params();
  p.bucket_count = 0;  // ideal per-flow queues
  FqCoDel q(sched, p);
  for (std::uint32_t f = 1; f <= 64; ++f) q.enqueue(pkt(f));
  EXPECT_EQ(q.flow_queue_count(), 64u);
}

TEST(FqCoDel, BucketedModeSharesQueues) {
  Scheduler sched;
  FqCoDelParams p = params();
  p.bucket_count = 8;
  FqCoDel q(sched, p);
  for (std::uint32_t f = 1; f <= 64; ++f) q.enqueue(pkt(f));
  EXPECT_LE(q.flow_queue_count(), 8u);
}

TEST(FqCoDel, EmptyDequeueReturnsNullopt) {
  Scheduler sched;
  FqCoDel q(sched, params());
  EXPECT_FALSE(q.dequeue().has_value());
  q.enqueue(pkt(1));
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.packet_count(), 0u);
}

TEST(FqCoDel, ReactivatedFlowIsNewAgain) {
  Scheduler sched;
  FqCoDel q(sched, params());
  q.enqueue(pkt(1));
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_FALSE(q.dequeue().has_value());
  // Flow 1 went idle; when it returns alongside a busy flow 2 backlog, the
  // new-flow list gives it priority.
  for (int i = 0; i < 20; ++i) q.enqueue(pkt(2));
  (void)q.dequeue();  // flow 2 starts
  q.enqueue(pkt(1));
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow.src, 1u);
}

}  // namespace
}  // namespace cebinae
