#include "tcp/tcp_socket.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "queueing/fifo_queue.hpp"
#include "tcp/new_reno.hpp"

namespace cebinae {
namespace {

// Sender host -- bottleneck link -- receiver host.
struct TcpHarness {
  Network net;
  Node& src = net.add_node();
  Node& dst = net.add_node();
  FlowId flow{src.id(), dst.id(), 5000, 5000};
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  explicit TcpHarness(std::uint64_t rate_bps = 10'000'000, Time delay = Milliseconds(10),
                      std::uint64_t buffer_bytes = 64 * kMtuBytes,
                      std::uint64_t bytes_to_send =
                          std::numeric_limits<std::uint64_t>::max()) {
    net.link(src, dst, rate_bps, delay, std::make_unique<FifoQueue>(buffer_bytes), nullptr);
    net.build_routes();
    TcpSender::Config cfg;
    cfg.flow = flow;
    cfg.bytes_to_send = bytes_to_send;
    sender = std::make_unique<TcpSender>(net.scheduler(), src, NewReno::make(kMssBytes), cfg);
    receiver = std::make_unique<TcpReceiver>(net.scheduler(), dst, flow);
  }
};

TEST(TcpSocket, TransfersFiniteStreamExactly) {
  const std::uint64_t total = 500 * kMssBytes;
  TcpHarness h(10'000'000, Milliseconds(10), 64 * kMtuBytes, total);
  h.sender->start();
  h.net.scheduler().run();
  EXPECT_EQ(h.receiver->delivered_bytes(), total);
  EXPECT_EQ(h.sender->bytes_acked(), total);
}

TEST(TcpSocket, DeliveryCallbackSeesEveryByteOnce) {
  const std::uint64_t total = 100 * kMssBytes;
  TcpHarness h(10'000'000, Milliseconds(5), 64 * kMtuBytes, total);
  std::uint64_t seen = 0;
  h.receiver->set_delivery_callback(
      [&](const FlowId&, std::uint64_t bytes, Time) { seen += bytes; });
  h.sender->start();
  h.net.scheduler().run();
  EXPECT_EQ(seen, total);
}

TEST(TcpSocket, RttEstimateMatchesPath) {
  TcpHarness h(100'000'000, Milliseconds(25), 256 * kMtuBytes, 50 * kMssBytes);
  h.sender->start();
  h.net.scheduler().run();
  // Two-way propagation = 50 ms plus small serialization.
  EXPECT_GE(h.sender->rtt().min_rtt(), Milliseconds(50));
  EXPECT_LT(h.sender->rtt().min_rtt(), Milliseconds(55));
}

TEST(TcpSocket, SaturatesBottleneckLink) {
  TcpHarness h(10'000'000, Milliseconds(10), 64 * kMtuBytes);
  h.sender->start();
  h.net.scheduler().run_until(Seconds(10));
  const double goodput_bps = static_cast<double>(h.receiver->delivered_bytes()) * 8.0 / 10.0;
  EXPECT_GT(goodput_bps, 0.85 * 10e6);
  EXPECT_LE(goodput_bps, 10e6);
}

TEST(TcpSocket, TinyBufferForcesFastRetransmitAndRecovers) {
  TcpHarness h(10'000'000, Milliseconds(10), 8 * kMtuBytes);
  h.sender->start();
  h.net.scheduler().run_until(Seconds(5));
  EXPECT_GT(h.sender->fast_retransmit_count(), 0u);
  EXPECT_GT(h.sender->retransmissions(), 0u);
  // Despite losses, the connection keeps delivering.
  const double goodput_bps = static_cast<double>(h.receiver->delivered_bytes()) * 8.0 / 5.0;
  EXPECT_GT(goodput_bps, 0.5 * 10e6);
}

TEST(TcpSocket, PipeNeverExceedsWindow) {
  // With SACK, the send gate is the pipe estimate (raw snd_nxt - snd_una can
  // legitimately exceed cwnd while SACKed/lost bytes are outstanding).
  TcpHarness h(10'000'000, Milliseconds(10), 64 * kMtuBytes);
  h.sender->start();
  bool violated = false;
  std::function<void()> probe = [&] {
    // During recovery the pipe may transiently exceed the freshly-halved
    // window while PRR drains it; outside recovery the gate must hold.
    const std::uint64_t wnd = h.sender->cc().cwnd_bytes() + 4 * kMssBytes;
    if (!h.sender->in_recovery() && h.sender->pipe_bytes() > wnd) violated = true;
    if (h.net.scheduler().now() < Seconds(5)) {
      h.net.scheduler().schedule(Milliseconds(10), probe);
    }
  };
  h.net.scheduler().schedule(Milliseconds(10), probe);
  h.net.scheduler().run_until(Seconds(5));
  EXPECT_FALSE(violated);
}

TEST(TcpSocket, StopTimeHaltsNewData) {
  TcpHarness h;
  TcpSender::Config cfg;
  cfg.flow = FlowId{h.src.id(), h.dst.id(), 6000, 6000};
  cfg.stop_time = Seconds(1);
  TcpSender sender(h.net.scheduler(), h.src, NewReno::make(kMssBytes), cfg);
  TcpReceiver receiver(h.net.scheduler(), h.dst, cfg.flow);
  sender.start();
  h.net.scheduler().run_until(Seconds(3));
  const std::uint64_t at_stop = receiver.delivered_bytes();
  h.net.scheduler().run_until(Seconds(5));
  // Only in-flight data drains after the stop; no significant new data.
  EXPECT_LE(receiver.delivered_bytes() - at_stop, 256ull * kMssBytes);
  EXPECT_GT(at_stop, 0u);
}

TEST(TcpSocket, StartTimeDelaysFirstSegment) {
  TcpHarness h;
  TcpSender::Config cfg;
  cfg.flow = FlowId{h.src.id(), h.dst.id(), 6000, 6000};
  cfg.start_time = Seconds(2);
  TcpSender sender(h.net.scheduler(), h.src, NewReno::make(kMssBytes), cfg);
  TcpReceiver receiver(h.net.scheduler(), h.dst, cfg.flow);
  sender.start();
  h.net.scheduler().run_until(Seconds(2) - Nanoseconds(1));
  EXPECT_EQ(sender.bytes_sent(), 0u);
  h.net.scheduler().run_until(Seconds(3));
  EXPECT_GT(sender.bytes_sent(), 0u);
}

// --- Receiver reassembly unit tests (fabricated packets) -------------------

struct ReceiverHarness {
  Network net;
  Node& node = net.add_node();
  FlowId flow{99, node.id(), 1, 5000};
  TcpReceiver rx{net.scheduler(), node, flow};

  Packet data(std::uint64_t seq, std::uint32_t len) {
    Packet p;
    p.flow = flow;
    p.kind = Packet::Kind::kTcpData;
    p.seq = seq;
    p.payload_bytes = len;
    p.size_bytes = len + kHeaderBytes;
    return p;
  }
};

TEST(TcpReceiver, InOrderAdvancesCumulativeAck) {
  ReceiverHarness h;
  h.rx.deliver(h.data(0, 100));
  EXPECT_EQ(h.rx.rcv_next(), 100u);
  h.rx.deliver(h.data(100, 100));
  EXPECT_EQ(h.rx.rcv_next(), 200u);
  EXPECT_EQ(h.rx.delivered_bytes(), 200u);
}

TEST(TcpReceiver, OutOfOrderIsBufferedThenDrained) {
  ReceiverHarness h;
  h.rx.deliver(h.data(100, 100));  // hole at [0,100)
  EXPECT_EQ(h.rx.rcv_next(), 0u);
  EXPECT_EQ(h.rx.ooo_bytes(), 100u);
  h.rx.deliver(h.data(200, 100));
  EXPECT_EQ(h.rx.ooo_bytes(), 200u);
  h.rx.deliver(h.data(0, 100));  // fills the hole; everything drains
  EXPECT_EQ(h.rx.rcv_next(), 300u);
  EXPECT_EQ(h.rx.ooo_bytes(), 0u);
  EXPECT_EQ(h.rx.delivered_bytes(), 300u);
}

TEST(TcpReceiver, DuplicatesDoNotDoubleCount) {
  ReceiverHarness h;
  h.rx.deliver(h.data(0, 100));
  h.rx.deliver(h.data(0, 100));
  EXPECT_EQ(h.rx.delivered_bytes(), 100u);
  EXPECT_EQ(h.rx.acks_sent(), 2u);  // duplicates still generate ACKs
}

TEST(TcpReceiver, OverlappingSegmentsMergeCorrectly) {
  ReceiverHarness h;
  h.rx.deliver(h.data(100, 100));  // [100,200)
  h.rx.deliver(h.data(150, 100));  // [150,250) overlaps
  EXPECT_EQ(h.rx.ooo_bytes(), 150u);
  h.rx.deliver(h.data(0, 100));
  EXPECT_EQ(h.rx.rcv_next(), 250u);
  EXPECT_EQ(h.rx.delivered_bytes(), 250u);
}

TEST(TcpReceiver, PartialOverlapWithDeliveredData) {
  ReceiverHarness h;
  h.rx.deliver(h.data(0, 100));
  h.rx.deliver(h.data(50, 100));  // [50,150): first half already delivered
  EXPECT_EQ(h.rx.rcv_next(), 150u);
  EXPECT_EQ(h.rx.delivered_bytes(), 150u);
}

TEST(TcpReceiver, BackwardMergeAcrossGapBoundary) {
  ReceiverHarness h;
  h.rx.deliver(h.data(300, 100));  // [300,400)
  h.rx.deliver(h.data(100, 100));  // [100,200)
  h.rx.deliver(h.data(200, 100));  // [200,300) bridges both
  EXPECT_EQ(h.rx.ooo_bytes(), 300u);
  h.rx.deliver(h.data(0, 100));
  EXPECT_EQ(h.rx.rcv_next(), 400u);
}

TEST(TcpReceiver, CePacketTriggersEceOnce) {
  ReceiverHarness h;
  Packet p = h.data(0, 100);
  p.ce = true;
  h.rx.deliver(p);
  // The ACK for this packet carries ECE; we can't observe the ACK directly
  // here (no reverse route), but the latch must clear so state stays sane.
  h.rx.deliver(h.data(100, 100));
  SUCCEED();
}

}  // namespace
}  // namespace cebinae
