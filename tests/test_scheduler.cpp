#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace cebinae {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), Time::zero());
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Milliseconds(30), [&] { order.push_back(3); });
  s.schedule(Milliseconds(10), [&] { order.push_back(1); });
  s.schedule(Milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), Milliseconds(30));
}

TEST(Scheduler, TiesBreakInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, NowAdvancesDuringExecution) {
  Scheduler s;
  Time seen = Time::zero();
  s.schedule(Seconds(2), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, Seconds(2));
}

TEST(Scheduler, ReentrantScheduling) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) s.schedule(Milliseconds(1), tick);
  };
  s.schedule(Milliseconds(1), tick);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), Milliseconds(5));
}

TEST(Scheduler, ZeroDelayRunsAfterCurrentEvent) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Milliseconds(1), [&] {
    order.push_back(1);
    s.schedule(Time::zero(), [&] { order.push_back(2); });
    order.push_back(3);
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule(Milliseconds(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelDefaultIdIsNoop) {
  Scheduler s;
  s.cancel(EventId());  // must not crash or affect anything
  bool fired = false;
  s.schedule(Milliseconds(1), [&] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilStopsAtLimit) {
  Scheduler s;
  std::vector<int> order;
  s.schedule(Milliseconds(10), [&] { order.push_back(1); });
  s.schedule(Milliseconds(30), [&] { order.push_back(2); });
  s.run_until(Milliseconds(20));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), Milliseconds(20));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, RunUntilIncludesBoundary) {
  Scheduler s;
  bool fired = false;
  s.schedule(Milliseconds(20), [&] { fired = true; });
  s.run_until(Milliseconds(20));
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunUntilAdvancesClockEvenWhenIdle) {
  Scheduler s;
  s.run_until(Seconds(5));
  EXPECT_EQ(s.now(), Seconds(5));
}

TEST(Scheduler, ExecutedEventCountExcludesCancelled) {
  Scheduler s;
  for (int i = 0; i < 3; ++i) s.schedule(Milliseconds(i + 1), [] {});
  EventId id = s.schedule(Milliseconds(9), [] {});
  s.cancel(id);
  s.run();
  EXPECT_EQ(s.executed_events(), 3u);
}

TEST(Scheduler, PendingEventsReflectsCancellations) {
  Scheduler s;
  EventId a = s.schedule(Milliseconds(1), [] {});
  s.schedule(Milliseconds(2), [] {});
  EXPECT_EQ(s.pending_events(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending_events(), 1u);
}

TEST(Scheduler, TiesStayFifoAcrossInterleavedCancels) {
  // Regression for the d-ary-heap rework: cancelling events between
  // same-timestamp insertions must not disturb the FIFO order of the
  // survivors — the (when, seq) tie-break has to hold through slot reuse.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(s.schedule(Milliseconds(5), [&order, i] { order.push_back(i); }));
  }
  for (int i = 1; i < 16; i += 2) s.cancel(ids[static_cast<std::size_t>(i)]);
  // Freed slots get reused here; the new events still fire after the
  // surviving originals.
  for (int i = 16; i < 20; ++i) {
    s.schedule(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  std::vector<int> expected;
  for (int i = 0; i < 16; i += 2) expected.push_back(i);
  for (int i = 16; i < 20; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, CancelAfterFireIsNoop) {
  Scheduler s;
  bool a_fired = false;
  EventId a = s.schedule(Milliseconds(1), [&] { a_fired = true; });
  s.run();
  ASSERT_TRUE(a_fired);
  // `a`'s slot is free now; a later event will reuse it. Cancelling the
  // stale id must not kill the new occupant (generation check).
  bool b_fired = false;
  s.schedule(Milliseconds(1), [&] { b_fired = true; });
  s.cancel(a);
  s.cancel(a);  // double-cancel of a stale id: also a no-op
  s.run();
  EXPECT_TRUE(b_fired);
  EXPECT_EQ(s.executed_events(), 2u);
}

TEST(Scheduler, CancelOwnIdFromInsideCallbackIsNoop) {
  Scheduler s;
  EventId self;
  int fires = 0;
  bool later_fired = false;
  self = s.schedule(Milliseconds(1), [&] {
    ++fires;
    s.cancel(self);  // already firing: must not corrupt the slot table
  });
  s.schedule(Milliseconds(2), [&] { later_fired = true; });
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(later_fired);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Scheduler, CancelPendingEventFromInsideCallback) {
  Scheduler s;
  bool victim_fired = false;
  EventId victim = s.schedule(Milliseconds(2), [&] { victim_fired = true; });
  s.schedule(Milliseconds(1), [&] { s.cancel(victim); });
  s.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(s.executed_events(), 1u);
}

TEST(Scheduler, LargeCaptureStillWorks) {
  // Captures past the inline budget take the heap fallback; behavior (not
  // allocation count) must be identical.
  Scheduler s;
  std::array<std::uint64_t, 16> big{};
  big[15] = 42;
  std::uint64_t seen = 0;
  s.schedule(Milliseconds(1), [big, &seen] { seen = big[15]; });
  s.run();
  EXPECT_EQ(seen, 42u);
}

TEST(Scheduler, ScheduleAtAbsoluteTime) {
  Scheduler s;
  Time seen = Time::zero();
  s.schedule(Milliseconds(5), [&] {
    s.schedule_at(Milliseconds(12), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, Milliseconds(12));
}

}  // namespace
}  // namespace cebinae
