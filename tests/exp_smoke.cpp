// ctest smoke target for the parallel experiment path: a 4-job mini-sweep
// through ExperimentRunner, cross-checked against a serial run and its own
// JSONL output. Exercises ThreadPool + SweepGrid + JsonlWriter end-to-end on
// every `ctest` invocation in a couple of seconds.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "exp/sweep_grid.hpp"

using namespace cebinae;

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "exp_smoke FAIL: %s\n", what);
    ++g_failures;
  }
}

std::vector<exp::ExperimentJob> mini_sweep() {
  ScenarioConfig base;
  base.bottleneck_bps = 20'000'000;
  base.buffer_bytes = 64ull * kMtuBytes;
  base.duration = Milliseconds(400);
  base.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(10));
  return exp::SweepGrid(base)
      .qdiscs({QdiscKind::kFifo, QdiscKind::kCebinae})
      .axis("rtt_ms", {10.0, 30.0},
            [](ScenarioConfig& cfg, double ms) {
              for (auto& f : cfg.flows) f.rtt = MillisecondsF(ms);
            })
      .trials(2)
      .build();
}

std::vector<exp::RunRecord> run(int jobs, exp::JsonlWriter* writer) {
  exp::ExperimentRunner::Options opts;
  opts.jobs = jobs;
  opts.base_seed = 1;
  opts.writer = writer;
  return exp::ExperimentRunner(opts).run(mini_sweep());
}

}  // namespace

int main() {
  const std::string out = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
                          "/cebinae_exp_smoke.jsonl";

  exp::JsonlWriter writer(out);
  const std::vector<exp::RunRecord> par = run(/*jobs=*/4, &writer);
  const std::vector<exp::RunRecord> ser = run(/*jobs=*/1, nullptr);

  check(par.size() == 8 && ser.size() == 8, "expected 8 records");
  for (std::size_t i = 0; i < par.size() && i < ser.size(); ++i) {
    check(par[i].seed == ser[i].seed, "per-job seeds match across thread counts");
    check(par[i].result.goodput_Bps == ser[i].result.goodput_Bps,
          "goodputs bit-identical across thread counts");
    check(par[i].result.jfi == ser[i].result.jfi, "JFI bit-identical across thread counts");
    check(par[i].result.total_goodput_Bps > 0.0, "scenario actually moved bytes");
  }

  // JSONL sanity: 8 rows, job order, plausible object shape.
  check(writer.rows_written() == 8, "writer saw 8 rows");
  std::ifstream in(out);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    check(!line.empty() && line.front() == '{' && line.back() == '}', "row is a JSON object");
    check(line.find("\"job_index\":" + std::to_string(rows)) != std::string::npos,
          "rows are in job order");
    check(line.find("\"jfi\":") != std::string::npos, "row carries jfi");
    ++rows;
  }
  check(rows == 8, "file holds 8 JSONL rows");
  std::remove(out.c_str());

  // Cross-trial aggregation over the parallel run's FIFO points.
  const exp::Aggregate agg = exp::aggregate(
      {par[0].result.jfi, par[1].result.jfi, par[2].result.jfi, par[3].result.jfi});
  check(agg.n == 4 && agg.min <= agg.mean && agg.mean <= agg.max, "aggregate is coherent");

  if (g_failures == 0) {
    std::printf("exp_smoke OK: 8-job mini-sweep deterministic across 1 and 4 workers\n");
    return 0;
  }
  std::fprintf(stderr, "exp_smoke: %d failure(s)\n", g_failures);
  return 1;
}
