#include "tcp/bbr.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"

namespace cebinae {
namespace {

constexpr std::uint32_t kMss = kMssBytes;

AckEvent bbr_ack(Time now, Time rtt, double rate_Bps, bool round_start,
                 std::uint64_t inflight) {
  AckEvent ev = make_ack(now, kMss, rtt, round_start, inflight);
  ev.delivery_rate_Bps = rate_Bps;
  return ev;
}

// Drive BBR through STARTUP with a bandwidth that has stopped growing.
// Reports a large inflight so DRAIN does not end on its own.
Time run_startup_to_drain(Bbr& cc, double bw_Bps, Time rtt, Time start) {
  Time now = start;
  const std::uint64_t big_inflight = static_cast<std::uint64_t>(4.0 * bw_Bps * rtt.seconds());
  for (int round = 0; round < 12 && cc.mode() == Bbr::Mode::kStartup; ++round) {
    cc.on_ack(bbr_ack(now, rtt, bw_Bps, /*round_start=*/true, big_inflight));
    for (int i = 0; i < 4 && cc.mode() == Bbr::Mode::kStartup; ++i) {
      now += rtt / 5;
      cc.on_ack(bbr_ack(now, rtt, bw_Bps, false, big_inflight));
    }
    now += rtt / 5;
  }
  return now;
}

TEST(Bbr, StartsInStartupWithHighGain) {
  Bbr cc(kMss);
  EXPECT_EQ(cc.mode(), Bbr::Mode::kStartup);
  EXPECT_TRUE(cc.in_slow_start());
  EXPECT_EQ(cc.cwnd_bytes(), 10ull * kMss);
  EXPECT_DOUBLE_EQ(cc.pacing_rate_Bps(), 0.0);  // no model yet
}

TEST(Bbr, LearnsBandwidthAndMinRtt) {
  Bbr cc(kMss);
  cc.on_ack(bbr_ack(Seconds(1), Milliseconds(50), 1e6, true, 10 * kMss));
  EXPECT_DOUBLE_EQ(cc.btl_bw_Bps(), 1e6);
  EXPECT_EQ(cc.min_rtt(), Milliseconds(50));
  cc.on_ack(bbr_ack(Seconds(1) + Milliseconds(50), Milliseconds(40), 2e6, false, 10 * kMss));
  EXPECT_DOUBLE_EQ(cc.btl_bw_Bps(), 2e6);
  EXPECT_EQ(cc.min_rtt(), Milliseconds(40));
}

TEST(Bbr, PacingRateIsGainTimesBandwidth) {
  Bbr cc(kMss);
  cc.on_ack(bbr_ack(Seconds(1), Milliseconds(50), 1e6, true, 10 * kMss));
  EXPECT_NEAR(cc.pacing_rate_Bps(), 2.885 * 1e6, 1e3);
}

TEST(Bbr, ExitsStartupWhenBandwidthPlateaus) {
  Bbr cc(kMss);
  run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  EXPECT_NE(cc.mode(), Bbr::Mode::kStartup);
}

TEST(Bbr, StaysInStartupWhileBandwidthGrows) {
  Bbr cc(kMss);
  double bw = 1e6;
  Time now = Seconds(1);
  for (int round = 0; round < 10; ++round) {
    cc.on_ack(bbr_ack(now, Milliseconds(50), bw, true, cc.cwnd_bytes()));
    bw *= 1.5;  // keeps growing >25% per round
    now += Milliseconds(50);
  }
  EXPECT_EQ(cc.mode(), Bbr::Mode::kStartup);
}

TEST(Bbr, DrainEndsWhenInflightReachesBdp) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  ASSERT_EQ(cc.mode(), Bbr::Mode::kDrain);
  // BDP = 1e7 B/s * 0.05 s = 500 kB; report inflight below that.
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  EXPECT_EQ(cc.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, ProbeBwCyclesGains) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  ASSERT_EQ(cc.mode(), Bbr::Mode::kProbeBw);

  bool saw_probe_gain = false;
  bool saw_drain_gain = false;
  for (int i = 0; i < 20; ++i) {
    now += Milliseconds(60);  // > min_rtt advances the cycle
    cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, i % 3 == 0, 300 * kMss));
    const double gain = cc.pacing_rate_Bps() / cc.btl_bw_Bps();
    if (gain > 1.2) saw_probe_gain = true;
    if (gain < 0.8) saw_drain_gain = true;
  }
  EXPECT_TRUE(saw_probe_gain);
  EXPECT_TRUE(saw_drain_gain);
}

TEST(Bbr, CwndTargetsTwoBdpInProbeBw) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  ASSERT_EQ(cc.mode(), Bbr::Mode::kProbeBw);
  // Feed plenty of ACKs so cwnd can climb to its target.
  for (int i = 0; i < 2000; ++i) {
    now += Microseconds(500);
    cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, cc.cwnd_bytes()));
  }
  const double bdp = 1e7 * 0.05;
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 2.0 * bdp, bdp * 0.1);
}

TEST(Bbr, EntersProbeRttWhenMinRttStale) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  ASSERT_EQ(cc.mode(), Bbr::Mode::kProbeBw);
  // No lower RTT sample for >10 s.
  now += Seconds(11);
  cc.on_ack(bbr_ack(now, Milliseconds(60), 1e7, true, 300 * kMss));
  EXPECT_EQ(cc.mode(), Bbr::Mode::kProbeRtt);
  cc.on_ack(bbr_ack(now + Milliseconds(1), Milliseconds(60), 1e7, false, 300 * kMss));
  EXPECT_EQ(cc.cwnd_bytes(), 4ull * kMss);
}

TEST(Bbr, LeavesProbeRttAfterDwell) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  now += Seconds(11);
  cc.on_ack(bbr_ack(now, Milliseconds(60), 1e7, true, 300 * kMss));
  ASSERT_EQ(cc.mode(), Bbr::Mode::kProbeRtt);
  // Inflight drops to <= 4 segments; dwell 200 ms + a round boundary.
  now += Milliseconds(10);
  cc.on_ack(bbr_ack(now, Milliseconds(60), 1e7, false, 3 * kMss));
  now += Milliseconds(250);
  cc.on_ack(bbr_ack(now, Milliseconds(60), 1e7, true, 3 * kMss));
  now += Milliseconds(10);
  cc.on_ack(bbr_ack(now, Milliseconds(60), 1e7, true, 3 * kMss));
  EXPECT_EQ(cc.mode(), Bbr::Mode::kProbeBw);
}

TEST(Bbr, IgnoresLoss) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  const std::uint64_t cwnd = cc.cwnd_bytes();
  const double pacing = cc.pacing_rate_Bps();
  cc.on_loss(now, cwnd);
  EXPECT_EQ(cc.cwnd_bytes(), cwnd);
  EXPECT_DOUBLE_EQ(cc.pacing_rate_Bps(), pacing);
}

TEST(Bbr, RtoConservesThenRecovers) {
  Bbr cc(kMss);
  Time now = run_startup_to_drain(cc, 1e7, Milliseconds(50), Seconds(1));
  cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, 100 * kMss));
  cc.on_rto(now);
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
  // The model survives: subsequent ACKs regrow toward the BDP target.
  for (int i = 0; i < 3000; ++i) {
    now += Microseconds(500);
    cc.on_ack(bbr_ack(now, Milliseconds(50), 1e7, false, cc.cwnd_bytes()));
  }
  EXPECT_GT(cc.cwnd_bytes(), 100ull * kMss);
}

}  // namespace
}  // namespace cebinae
