// Per-queue sojourn instrumentation: every QueueDisc stamps packets at
// enqueue and feeds dequeue − enqueue deltas into an obs::Histogram, and
// Scenario wires a per-link histogram that the standard trace probe exports.
#include <gtest/gtest.h>

#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "queueing/fifo_queue.hpp"
#include "runner/scenario.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {
namespace {

Packet pkt(std::uint32_t size) {
  Packet p;
  p.size_bytes = size;
  return p;
}

TEST(Sojourn, FifoRecordsDequeueMinusEnqueue) {
  Scheduler sched;
  obs::MetricsRegistry reg;
  obs::Histogram& hist = reg.histogram("qdisc.sojourn_s.l0");

  FifoQueue q(FifoQueue::unlimited());
  q.instrument_sojourn(sched, hist);

  sched.schedule(Time::zero(), [&] { q.enqueue(pkt(100)); });
  sched.schedule(Milliseconds(5), [&] { q.enqueue(pkt(100)); });
  // First packet waits 10 ms, second waits 15 ms.
  sched.schedule(Milliseconds(10), [&] { q.dequeue(); });
  sched.schedule(Milliseconds(20), [&] { q.dequeue(); });
  sched.run();

  EXPECT_EQ(hist.count(), 2u);
  EXPECT_NEAR(hist.min(), 0.010, 1e-12);
  EXPECT_NEAR(hist.max(), 0.015, 1e-12);
  EXPECT_NEAR(hist.mean(), 0.0125, 1e-12);
}

TEST(Sojourn, UninstrumentedQueueIsUnaffected) {
  FifoQueue q(FifoQueue::unlimited());
  q.enqueue(pkt(100));
  EXPECT_TRUE(q.dequeue().has_value());
}

TEST(Sojourn, DroppedPacketsNeverReachTheHistogram) {
  Scheduler sched;
  obs::MetricsRegistry reg;
  obs::Histogram& hist = reg.histogram("qdisc.sojourn_s.l0");

  FifoQueue q(150);  // second 100 B packet is tail-dropped
  q.instrument_sojourn(sched, hist);
  q.enqueue(pkt(100));
  q.enqueue(pkt(100));
  q.dequeue();
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(hist.count(), 1u);
}

// Every qdisc kind exposes its per-link sojourn histogram through the
// standard trace probe as qdisc.sojourn_s.l0.{n,mean,max}.
TEST(Sojourn, ScenarioTraceExportsSojournHistogram) {
  for (QdiscKind kind : {QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae,
                         QdiscKind::kAfq, QdiscKind::kStrawman}) {
    ScenarioConfig cfg;
    cfg.qdisc = kind;
    cfg.duration = Milliseconds(500);
    cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));

    Scenario scenario(cfg);
    scenario.enable_trace(Milliseconds(100));
    scenario.run();

    const auto& rows = scenario.trace().rows();
    ASSERT_FALSE(rows.empty()) << to_string(kind);
    const obs::TraceRow& last = rows.back();
    const double n = last.scalar("qdisc.sojourn_s.l0.n");
    const double mean = last.scalar("qdisc.sojourn_s.l0.mean");
    const double max = last.scalar("qdisc.sojourn_s.l0.max");
    EXPECT_FALSE(std::isnan(n)) << to_string(kind);
    EXPECT_GT(n, 0.0) << to_string(kind);
    EXPECT_FALSE(std::isnan(mean)) << to_string(kind);
    EXPECT_GE(mean, 0.0) << to_string(kind);
    EXPECT_GE(max, mean) << to_string(kind);
  }
}

}  // namespace
}  // namespace cebinae
