// src/exp harness: seed derivation, aggregation, JSON building, SweepGrid
// expansion, and the core determinism contract — a batch run with jobs=1
// and jobs=4 yields bit-identical results in stable job order.
#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exp/sweep_grid.hpp"

namespace cebinae::exp {
namespace {

// --- derive_seed ----------------------------------------------------------

TEST(DeriveSeed, IsStableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(42, 17), derive_seed(42, 17));
}

TEST(DeriveSeed, DispersesOverJobsAndBases) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t i = 0; i < 64; ++i) seen.insert(derive_seed(base, i));
  }
  EXPECT_EQ(seen.size(), 8u * 64u);  // no collisions in a small grid
}

TEST(DeriveSeed, DistinctAcrossIndexAndBase) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  // Index is salted, so job 0 is not just a finalization of the base seed.
  EXPECT_NE(derive_seed(derive_seed(1, 0), 0), derive_seed(1, 0));
}

// --- aggregate ------------------------------------------------------------

TEST(Aggregate, EmptyAndSingle) {
  const Aggregate e = aggregate({});
  EXPECT_EQ(e.n, 0);
  const Aggregate s = aggregate({3.5});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Aggregate, MeanStddevMinMax) {
  const Aggregate a = aggregate({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(a.n, 8);
  EXPECT_DOUBLE_EQ(a.mean, 5.0);
  EXPECT_DOUBLE_EQ(a.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(a.min, 2.0);
  EXPECT_DOUBLE_EQ(a.max, 9.0);
}

// --- JsonObject / JsonlWriter --------------------------------------------

TEST(JsonObject, BuildsOrderedObject) {
  JsonObject o;
  o.set("a", 1).set("b", 2.5).set("c", "x").set("d", true);
  EXPECT_EQ(o.str(), R"({"a":1,"b":2.5,"c":"x","d":true})");
}

TEST(JsonObject, EscapesStringsAndHandlesArraysAndNesting) {
  JsonObject inner;
  inner.set("k", std::uint64_t{7});
  JsonObject o;
  o.set("s", "a\"b\\c\nd").set("arr", std::vector<double>{1.0, 0.5}).set("nest", inner);
  EXPECT_EQ(o.str(), R"({"s":"a\"b\\c\nd","arr":[1,0.5],"nest":{"k":7}})");
}

TEST(JsonObject, NonFiniteNumbersBecomeNull) {
  JsonObject o;
  o.set("inf", std::numeric_limits<double>::infinity());
  EXPECT_EQ(o.str(), R"({"inf":null})");
}

TEST(JsonlWriter, DisabledWriterIsANoop) {
  JsonlWriter w("");
  EXPECT_FALSE(w.enabled());
  JsonObject row;
  row.set("x", 1);
  w.write(row);
  EXPECT_EQ(w.rows_written(), 0u);
}

TEST(JsonlWriter, WritesOneLinePerRow) {
  const std::string path = ::testing::TempDir() + "cebinae_jsonl_test.jsonl";
  {
    JsonlWriter w(path);
    ASSERT_TRUE(w.enabled());
    JsonObject a;
    a.set("i", 0);
    JsonObject b;
    b.set("i", 1);
    w.write(a);
    w.write(b);
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, R"({"i":0})");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, R"({"i":1})");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

// --- SweepGrid ------------------------------------------------------------

ScenarioConfig tiny_base() {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 20'000'000;
  cfg.buffer_bytes = 64ull * kMtuBytes;
  cfg.duration = Milliseconds(400);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(10));
  return cfg;
}

TEST(SweepGrid, ExpandsCartesianProductInDeclarationOrder) {
  SweepGrid grid(tiny_base());
  grid.qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel})
      .axis("rtt_ms", {10.0, 20.0},
            [](ScenarioConfig& cfg, double ms) {
              for (auto& f : cfg.flows) f.rtt = MillisecondsF(ms);
            })
      .trials(3);
  EXPECT_EQ(grid.size(), 2u * 2u * 3u);
  const std::vector<ExperimentJob> jobs = grid.build();
  ASSERT_EQ(jobs.size(), 12u);
  // First dimension outermost, trials innermost.
  EXPECT_EQ(jobs[0].label, "qdisc=FIFO rtt_ms=10 trial=0");
  EXPECT_EQ(jobs[1].label, "qdisc=FIFO rtt_ms=10 trial=1");
  EXPECT_EQ(jobs[3].label, "qdisc=FIFO rtt_ms=20 trial=0");
  EXPECT_EQ(jobs[6].label, "qdisc=FQ rtt_ms=10 trial=0");
  EXPECT_EQ(jobs[11].label, "qdisc=FQ rtt_ms=20 trial=2");
  EXPECT_EQ(jobs[6].config.qdisc, QdiscKind::kFqCoDel);
  EXPECT_EQ(jobs[3].config.flows[0].rtt, Milliseconds(20));
  EXPECT_EQ(jobs[0].params.str(), R"({"qdisc":"FIFO","rtt_ms":10,"trial":0})");
}

TEST(SweepGrid, VariantsApplyArbitraryMutations) {
  const std::vector<ExperimentJob> jobs =
      SweepGrid(tiny_base())
          .variants("mix", {{"two", [](ScenarioConfig&) {}},
                            {"four",
                             [](ScenarioConfig& cfg) {
                               cfg.flows = flows_of(CcaType::kCubic, 4, Milliseconds(5));
                             }}})
          .build();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].config.flows.size(), 2u);
  EXPECT_EQ(jobs[1].config.flows.size(), 4u);
  EXPECT_EQ(jobs[1].label, "mix=four");
}

// --- ExperimentRunner -----------------------------------------------------

std::vector<ExperimentJob> mini_batch() {
  return SweepGrid(tiny_base())
      .qdiscs({QdiscKind::kFifo, QdiscKind::kFqCoDel})
      .axis("rtt_ms", {10.0, 30.0},
            [](ScenarioConfig& cfg, double ms) {
              for (auto& f : cfg.flows) f.rtt = MillisecondsF(ms);
            })
      .trials(2)
      .build();
}

std::vector<RunRecord> run_with_jobs(int jobs, JsonlWriter* writer = nullptr) {
  ExperimentRunner::Options opts;
  opts.jobs = jobs;
  opts.base_seed = 7;
  opts.writer = writer;
  return ExperimentRunner(opts).run(mini_batch());
}

TEST(ExperimentRunner, ParallelRunIsBitIdenticalToSerialRun) {
  const std::vector<RunRecord> serial = run_with_jobs(1);
  const std::vector<RunRecord> parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].seed, parallel[i].seed) << "job " << i;
    EXPECT_EQ(serial[i].seed, derive_seed(7, i));
    ASSERT_EQ(serial[i].result.goodput_Bps.size(), parallel[i].result.goodput_Bps.size());
    for (std::size_t f = 0; f < serial[i].result.goodput_Bps.size(); ++f) {
      // Bit-identical, not approximately equal: same seed, same event order.
      EXPECT_EQ(serial[i].result.goodput_Bps[f], parallel[i].result.goodput_Bps[f])
          << "job " << i << " flow " << f;
    }
    EXPECT_EQ(serial[i].result.total_goodput_Bps, parallel[i].result.total_goodput_Bps);
    EXPECT_EQ(serial[i].result.jfi, parallel[i].result.jfi);
    EXPECT_EQ(serial[i].result.throughput_Bps, parallel[i].result.throughput_Bps);
  }
}

TEST(ExperimentRunner, TrialsDifferButAreIndividuallyDeterministic) {
  const std::vector<RunRecord> records = run_with_jobs(2);
  // trial=0 and trial=1 of the same point run different seeds -> different
  // start jitter -> (almost surely) different goodputs.
  EXPECT_NE(records[0].seed, records[1].seed);
  EXPECT_NE(records[0].result.goodput_Bps, records[1].result.goodput_Bps);
}

// Strips the (intentionally non-deterministic) wall-clock field.
std::string strip_wall(const std::string& line) {
  const std::size_t pos = line.find(",\"wall_s\":");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

TEST(ExperimentRunner, JsonlRowsAreInJobOrderAndStableAcrossThreadCounts) {
  const std::string p1 = ::testing::TempDir() + "cebinae_exp_j1.jsonl";
  const std::string p4 = ::testing::TempDir() + "cebinae_exp_j4.jsonl";
  {
    JsonlWriter w1(p1);
    (void)run_with_jobs(1, &w1);
    JsonlWriter w4(p4);
    (void)run_with_jobs(4, &w4);
  }
  std::ifstream in1(p1), in4(p4);
  std::string l1, l4;
  std::size_t rows = 0;
  while (std::getline(in1, l1)) {
    ASSERT_TRUE(std::getline(in4, l4));
    EXPECT_EQ(strip_wall(l1), strip_wall(l4)) << "row " << rows;
    EXPECT_NE(l1.find("\"job_index\":" + std::to_string(rows)), std::string::npos);
    ++rows;
  }
  EXPECT_FALSE(std::getline(in4, l4));
  EXPECT_EQ(rows, mini_batch().size());
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

TEST(JsonlWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(JsonlWriter("/nonexistent-dir/x/y.jsonl"), std::runtime_error);
}

TEST(ExperimentRunner, ProgressCallbackCoversEveryJob) {
  std::vector<std::size_t> seen;
  ExperimentRunner::Options opts;
  opts.jobs = 3;
  opts.base_seed = 7;
  std::mutex mu;
  opts.on_progress = [&](std::size_t done, std::size_t total) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(total, 8u);
    seen.push_back(done);
  };
  (void)ExperimentRunner(opts).run(mini_batch());
  ASSERT_EQ(seen.size(), 8u);
  // Completion counter is serialized, so it must count 1..8 in order.
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

}  // namespace
}  // namespace cebinae::exp
