#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include "queueing/fifo_queue.hpp"
#include "workload/udp_app.hpp"

namespace cebinae {
namespace {

std::function<std::unique_ptr<QueueDisc>(int)> fifo_factory() {
  return [](int) { return std::make_unique<FifoQueue>(FifoQueue::unlimited()); };
}

TEST(Topology, ChainHasExpectedShape) {
  Network net;
  auto topo = build_chain(net, 3, 100'000'000, Microseconds(50), fifo_factory());
  EXPECT_EQ(topo.switches.size(), 4u);
  EXPECT_EQ(topo.bottlenecks.size(), 3u);
  for (Device* d : topo.bottlenecks) {
    EXPECT_EQ(d->rate_bps(), 100'000'000u);
    EXPECT_EQ(d->prop_delay(), Microseconds(50));
  }
}

TEST(Topology, HostsTraverseTheRightLinks) {
  Network net;
  auto topo = build_chain(net, 3, 100'000'000, Microseconds(50), fifo_factory());
  // Host pair crossing only the middle link (enter=1, exit=2).
  auto pair = attach_hosts(net, topo, 1, 2, 400'000'000, Microseconds(100),
                           Microseconds(50));
  net.build_routes();

  UdpSink sink(*pair.dst, 9);
  Packet p;
  p.flow = FlowId{pair.src->id(), pair.dst->id(), 1, 9};
  p.kind = Packet::Kind::kUdp;
  p.size_bytes = 500;
  pair.src->send(p);
  net.scheduler().run();

  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(topo.bottlenecks[0]->tx_packets(), 0u);
  EXPECT_EQ(topo.bottlenecks[1]->tx_packets(), 1u);
  EXPECT_EQ(topo.bottlenecks[2]->tx_packets(), 0u);
}

TEST(Topology, EndToEndHostsCrossAllLinks) {
  Network net;
  auto topo = build_chain(net, 3, 100'000'000, Microseconds(50), fifo_factory());
  auto pair = attach_hosts(net, topo, 0, 3, 400'000'000, Microseconds(100),
                           Microseconds(50));
  net.build_routes();

  UdpSink sink(*pair.dst, 9);
  Packet p;
  p.flow = FlowId{pair.src->id(), pair.dst->id(), 1, 9};
  p.kind = Packet::Kind::kUdp;
  p.size_bytes = 500;
  pair.src->send(p);
  net.scheduler().run();

  for (Device* d : topo.bottlenecks) EXPECT_EQ(d->tx_packets(), 1u);
}

TEST(Topology, PathRttFormula) {
  Network net;
  auto topo = build_chain(net, 2, 100'000'000, Microseconds(50), fifo_factory());
  // 2*(src 100us + 2 hops * 50us + dst 50us) = 500us.
  EXPECT_EQ(chain_path_rtt(topo, 0, 2, Microseconds(100), Microseconds(50)),
            Microseconds(500));
  // Single-hop path.
  EXPECT_EQ(chain_path_rtt(topo, 1, 2, Microseconds(100), Microseconds(50)),
            Microseconds(400));
}

TEST(Topology, QdiscFactoryReceivesLinkIndex) {
  Network net;
  std::vector<int> seen;
  auto topo = build_chain(net, 3, 100'000'000, Microseconds(50), [&](int link) {
    seen.push_back(link);
    return std::make_unique<FifoQueue>(FifoQueue::unlimited());
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace cebinae
