#include "core/params.hpp"

#include "net/packet.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(CebinaeParams, DefaultsMatchPaper) {
  CebinaeParams p;
  EXPECT_DOUBLE_EQ(p.delta_port, 0.01);
  EXPECT_DOUBLE_EQ(p.delta_flow, 0.01);
  EXPECT_DOUBLE_EQ(p.tau, 0.01);
  // dT and vdT are powers of two (Tofino-style masking).
  EXPECT_EQ(p.dt.ns() & (p.dt.ns() - 1), 0);
  EXPECT_EQ(p.vdt.ns() & (p.vdt.ns() - 1), 0);
  EXPECT_LT(p.vdt, p.dt);
}

TEST(CebinaeParams, NextPow2) {
  EXPECT_EQ(CebinaeParams::next_pow2(Nanoseconds(1)).ns(), 1);
  EXPECT_EQ(CebinaeParams::next_pow2(Nanoseconds(2)).ns(), 2);
  EXPECT_EQ(CebinaeParams::next_pow2(Nanoseconds(3)).ns(), 4);
  EXPECT_EQ(CebinaeParams::next_pow2(Nanoseconds(1000)).ns(), 1024);
  EXPECT_EQ(CebinaeParams::next_pow2(Milliseconds(100)).ns(), 1ll << 27);
}

TEST(CebinaeParams, ForLinkSatisfiesEquation2) {
  // dT >= buffer/BW + vdT + L (Eq. 2).
  const std::uint64_t rate = 100'000'000;
  const std::uint64_t buffer = 850ull * kMtuBytes;
  const CebinaeParams p = CebinaeParams::for_link(rate, buffer, Milliseconds(100));
  const double drain_s = static_cast<double>(buffer) * 8.0 / rate;
  EXPECT_GE(p.dt.seconds(), drain_s + p.vdt.seconds() + p.l_deadline.seconds());
  // And remains a power of two.
  EXPECT_EQ(p.dt.ns() & (p.dt.ns() - 1), 0);
}

TEST(CebinaeParams, ForLinkCoversMaxRtt) {
  const CebinaeParams p =
      CebinaeParams::for_link(1'000'000'000, 850ull * kMtuBytes, Milliseconds(100));
  EXPECT_GE((p.dt * p.p_rounds).ns(), Milliseconds(100).ns());
}

TEST(CebinaeParams, SmallBufferGivesSmallDt) {
  const CebinaeParams small =
      CebinaeParams::for_link(10'000'000'000ull, 100ull * kMtuBytes, Milliseconds(10));
  const CebinaeParams large =
      CebinaeParams::for_link(100'000'000, 10'000ull * kMtuBytes, Milliseconds(10));
  EXPECT_LT(small.dt, large.dt);
}

class ParamsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, int>> {};

TEST_P(ParamsSweep, DerivedTimingAlwaysValid) {
  const auto [rate, buf_mtu, rtt_ms] = GetParam();
  const CebinaeParams p =
      CebinaeParams::for_link(rate, buf_mtu * kMtuBytes, Milliseconds(rtt_ms));
  EXPECT_GT(p.dt.ns(), 0);
  EXPECT_EQ(p.dt.ns() & (p.dt.ns() - 1), 0);
  EXPECT_GE(p.p_rounds, 1u);
  EXPECT_GE((p.dt * p.p_rounds).ns(), Milliseconds(rtt_ms).ns());
  const double drain_s = static_cast<double>(buf_mtu * kMtuBytes) * 8.0 / rate;
  EXPECT_GE(p.dt.seconds(), drain_s);
}

INSTANTIATE_TEST_SUITE_P(
    Links, ParamsSweep,
    ::testing::Combine(::testing::Values(100'000'000ull, 1'000'000'000ull,
                                         10'000'000'000ull),
                       ::testing::Values(100ull, 850ull, 8500ull, 41667ull),
                       ::testing::Values(5, 50, 200)));

}  // namespace
}  // namespace cebinae
