#include "queueing/codel.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

Packet pkt(std::uint32_t size, bool ect = false) {
  Packet p;
  p.size_bytes = size;
  p.ect = ect;
  return p;
}

CodelParams no_ecn() {
  CodelParams p;
  p.use_ecn = false;
  return p;
}

TEST(Codel, NoDropsBelowTarget) {
  Scheduler sched;
  CodelQueue q(sched, 1 << 20, no_ecn());
  // Enqueue and dequeue promptly: sojourn ~0, never drops.
  for (int i = 0; i < 100; ++i) {
    q.enqueue(pkt(kMtuBytes));
    sched.run_until(sched.now() + Microseconds(100));
    EXPECT_TRUE(q.dequeue().has_value());
  }
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(Codel, NoDropWithinFirstInterval) {
  Scheduler sched;
  CodelQueue q(sched, 1 << 20, no_ecn());
  for (int i = 0; i < 50; ++i) q.enqueue(pkt(kMtuBytes));
  // Sojourn above target but the 100 ms grace interval has not elapsed.
  sched.run_until(Milliseconds(50));
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

TEST(Codel, DropsAfterPersistentQueue) {
  Scheduler sched;
  CodelQueue q(sched, 1 << 20, no_ecn());
  for (int i = 0; i < 200; ++i) q.enqueue(pkt(kMtuBytes));
  std::uint64_t drops = 0;
  // Dequeue slowly: standing queue with sojourn >> target for >> interval.
  for (int i = 0; i < 100; ++i) {
    sched.run_until(sched.now() + Milliseconds(20));
    (void)q.dequeue();
    drops = q.stats().dropped_packets;
  }
  EXPECT_GT(drops, 0u);
}

TEST(Codel, DropRateAcceleratesWithSqrtLaw) {
  Scheduler sched;
  CodelQueue q(sched, 8 << 20, no_ecn());
  for (int i = 0; i < 2000; ++i) q.enqueue(pkt(kMtuBytes));
  std::uint64_t drops_first_half = 0;
  for (int i = 0; i < 50; ++i) {
    sched.run_until(sched.now() + Milliseconds(20));
    (void)q.dequeue();
  }
  drops_first_half = q.stats().dropped_packets;
  for (int i = 0; i < 50; ++i) {
    sched.run_until(sched.now() + Milliseconds(20));
    (void)q.dequeue();
  }
  const std::uint64_t drops_second_half = q.stats().dropped_packets - drops_first_half;
  EXPECT_GT(drops_second_half, drops_first_half);
}

TEST(Codel, EcnMarksInsteadOfDropping) {
  Scheduler sched;
  CodelParams params;
  params.use_ecn = true;
  CodelQueue q(sched, 8 << 20, params);
  for (int i = 0; i < 500; ++i) q.enqueue(pkt(kMtuBytes, /*ect=*/true));
  bool saw_mark = false;
  for (int i = 0; i < 100; ++i) {
    sched.run_until(sched.now() + Milliseconds(20));
    auto p = q.dequeue();
    if (p && p->ce) saw_mark = true;
  }
  EXPECT_TRUE(saw_mark);
  EXPECT_EQ(q.stats().dropped_packets, 0u);
  EXPECT_GT(q.stats().ecn_marked_packets, 0u);
}

TEST(Codel, RecoverWhenQueueDrains) {
  Scheduler sched;
  CodelQueue q(sched, 1 << 20, no_ecn());
  for (int i = 0; i < 100; ++i) q.enqueue(pkt(kMtuBytes));
  for (int i = 0; i < 100; ++i) {
    sched.run_until(sched.now() + Milliseconds(20));
    (void)q.dequeue();
  }
  while (q.dequeue().has_value()) {
  }
  const std::uint64_t drops_before = q.stats().dropped_packets;
  // Fresh, fast-moving traffic must not be dropped.
  for (int i = 0; i < 50; ++i) {
    q.enqueue(pkt(kMtuBytes));
    sched.run_until(sched.now() + Microseconds(10));
    EXPECT_TRUE(q.dequeue().has_value());
  }
  EXPECT_EQ(q.stats().dropped_packets, drops_before);
}

TEST(Codel, ByteLimitStillApplies) {
  Scheduler sched;
  CodelQueue q(sched, 2 * kMtuBytes, no_ecn());
  EXPECT_TRUE(q.enqueue(pkt(kMtuBytes)));
  EXPECT_TRUE(q.enqueue(pkt(kMtuBytes)));
  EXPECT_FALSE(q.enqueue(pkt(kMtuBytes)));
}

}  // namespace
}  // namespace cebinae
