#include "workload/trace_gen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace cebinae {
namespace {

TraceConfig small_config() {
  TraceConfig cfg;
  cfg.duration = Milliseconds(500);
  cfg.flow_arrivals_per_sec = 2000;
  cfg.seed = 1;
  return cfg;
}

TEST(TraceGen, DeterministicForSeed) {
  const auto a = SyntheticTrace::generate(small_config());
  const auto b = SyntheticTrace::generate(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].flow, b[i].flow);
  }
}

TEST(TraceGen, DifferentSeedsDiffer) {
  TraceConfig cfg = small_config();
  const auto a = SyntheticTrace::generate(cfg);
  cfg.seed = 2;
  const auto b = SyntheticTrace::generate(cfg);
  EXPECT_NE(a.size(), b.size());
}

TEST(TraceGen, SortedByTime) {
  const auto trace = SyntheticTrace::generate(small_config());
  EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                             [](const TracePacket& x, const TracePacket& y) {
                               return x.time < y.time;
                             }));
}

TEST(TraceGen, TimesWithinDuration) {
  const auto trace = SyntheticTrace::generate(small_config());
  ASSERT_FALSE(trace.empty());
  for (const auto& p : trace) {
    EXPECT_GE(p.time, Time::zero());
    EXPECT_LT(p.time, Milliseconds(500));
  }
}

TEST(TraceGen, FlowCountMatchesArrivalRate) {
  const auto trace = SyntheticTrace::generate(small_config());
  const auto summary = SyntheticTrace::summarize(trace);
  // ~2000 arrivals/s * 0.5 s = ~1000 flows (Poisson, wide tolerance).
  EXPECT_GT(summary.flows, 850u);
  EXPECT_LT(summary.flows, 1150u);
}

TEST(TraceGen, ByteDistributionIsHeavyTailed) {
  const auto trace = SyntheticTrace::generate(small_config());
  std::map<std::uint32_t, std::uint64_t> per_flow;
  std::uint64_t total = 0;
  for (const auto& p : trace) {
    per_flow[p.flow.src] += p.bytes;
    total += p.bytes;
  }
  // Top 10% of flows should carry the overwhelming majority of bytes.
  std::vector<std::uint64_t> sizes;
  for (const auto& [f, b] : per_flow) sizes.push_back(b);
  std::sort(sizes.rbegin(), sizes.rend());
  std::uint64_t top_decile = 0;
  for (std::size_t i = 0; i < sizes.size() / 10; ++i) top_decile += sizes[i];
  // Pareto(1.2) rates: the top decile carries the majority of bytes (a
  // uniform rate distribution would give it ~10-20%).
  EXPECT_GT(static_cast<double>(top_decile) / static_cast<double>(total), 0.5);
}

TEST(TraceGen, RateCapRespected) {
  TraceConfig cfg = small_config();
  cfg.max_flow_rate_bps = 1e6;
  cfg.mean_flow_lifetime_s = 0.4;
  const auto trace = SyntheticTrace::generate(cfg);
  std::map<std::uint32_t, std::uint64_t> per_flow;
  for (const auto& p : trace) per_flow[p.flow.src] += p.bytes;
  for (const auto& [f, bytes] : per_flow) {
    // No flow can send more than cap * duration.
    EXPECT_LE(static_cast<double>(bytes) * 8.0, 1e6 * 0.5 * 1.05) << "flow " << f;
  }
}

TEST(TraceGen, SummaryCountsConsistent) {
  const auto trace = SyntheticTrace::generate(small_config());
  const auto summary = SyntheticTrace::summarize(trace);
  EXPECT_EQ(summary.packets, trace.size());
  std::uint64_t bytes = 0;
  for (const auto& p : trace) bytes += p.bytes;
  EXPECT_EQ(summary.bytes, bytes);
}

}  // namespace
}  // namespace cebinae
