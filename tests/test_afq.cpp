#include "queueing/afq.hpp"

#include <gtest/gtest.h>

#include <map>

namespace cebinae {
namespace {

Packet pkt(std::uint32_t flow, std::uint32_t size = kMtuBytes) {
  Packet p;
  p.flow = FlowId{flow, 1000, 5000, 5000};
  p.size_bytes = size;
  return p;
}

AfqParams params(std::uint32_t nq = 32, std::uint32_t bpr = 2 * kMtuBytes) {
  AfqParams p;
  p.num_queues = nq;
  p.bytes_per_round = bpr;
  return p;
}

TEST(Afq, SingleFlowPassesInOrder) {
  Afq q(params());
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p = pkt(1);
    p.seq = i;
    ASSERT_TRUE(q.enqueue(std::move(p)));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
}

TEST(Afq, RoundRobinAcrossBackloggedFlows) {
  Afq q(params(32, kMtuBytes));
  // Two flows, each with 16 packets: the calendar interleaves them round by
  // round rather than serving one flow's backlog first.
  for (int i = 0; i < 16; ++i) {
    q.enqueue(pkt(1));
    q.enqueue(pkt(2));
  }
  std::map<NodeId, int> first8;
  for (int i = 0; i < 8; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++first8[p->flow.src];
  }
  EXPECT_EQ(first8[1], 4);
  EXPECT_EQ(first8[2], 4);
}

TEST(Afq, ByteFairnessForUnequalPacketSizes) {
  Afq q(params(64, kMtuBytes));
  for (int i = 0; i < 20; ++i) q.enqueue(pkt(1, kMtuBytes));
  for (int i = 0; i < 40; ++i) q.enqueue(pkt(2, kMtuBytes / 2));
  std::map<NodeId, std::uint64_t> bytes;
  for (int i = 0; i < 30; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    bytes[p->flow.src] += p->size_bytes;
  }
  EXPECT_NEAR(static_cast<double>(bytes[1]) / static_cast<double>(bytes[2]), 1.0, 0.35);
}

TEST(Afq, HorizonDropsWhenFlowTooFarAhead) {
  // nQ=4, BpR=1 MTU: a flow can have at most ~4 MTU scheduled ahead.
  Afq q(params(4, kMtuBytes));
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.enqueue(pkt(1))) ++admitted;
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(q.horizon_drops(), 6u);
}

TEST(Afq, HorizonScalesWithNqTimesBpr) {
  // Equation 1: buffer_req <= BpR x nQ per flow.
  for (auto [nq, bpr, expect] :
       {std::tuple<std::uint32_t, std::uint32_t, int>{8, kMtuBytes, 8},
        {4, 2 * kMtuBytes, 8},
        {16, kMtuBytes, 16}}) {
    Afq q(params(nq, bpr));
    int admitted = 0;
    for (int i = 0; i < 64; ++i) {
      if (q.enqueue(pkt(1))) ++admitted;
    }
    EXPECT_EQ(admitted, expect) << "nQ=" << nq << " BpR=" << bpr;
  }
}

TEST(Afq, IdleFlowRestartsAtCurrentRound) {
  Afq q(params(8, kMtuBytes));
  // Flow 1 sends a lot early; flow 2 arrives later and must not be charged
  // for rounds it never used.
  for (int i = 0; i < 8; ++i) q.enqueue(pkt(1));
  for (int i = 0; i < 6; ++i) (void)q.dequeue();  // advance several rounds
  ASSERT_TRUE(q.enqueue(pkt(2)));
  // Flow 2's packet sits at (or near) the current round: served promptly.
  auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->flow.src, 2u);
}

TEST(Afq, BufferLimitIndependentOfHorizon) {
  AfqParams p = params(1024, kMtuBytes);
  p.buffer_bytes = 4 * kMtuBytes;
  Afq q(p);
  int admitted = 0;
  for (std::uint32_t f = 1; f <= 8; ++f) {
    if (q.enqueue(pkt(f))) ++admitted;
  }
  EXPECT_EQ(admitted, 4);
}

TEST(Afq, DrainsCompletely) {
  Afq q(params());
  for (std::uint32_t f = 1; f <= 5; ++f) {
    for (int i = 0; i < 3; ++i) q.enqueue(pkt(f));
  }
  int served = 0;
  while (q.dequeue().has_value()) ++served;
  EXPECT_EQ(served, 15);
  EXPECT_EQ(q.byte_count(), 0u);
  EXPECT_EQ(q.packet_count(), 0u);
}

}  // namespace
}  // namespace cebinae
