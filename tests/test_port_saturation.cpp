#include "core/port_saturation.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

// 100 Mbps port: 12.5 MB/s -> 1.25 MB per 100 ms interval.
constexpr std::uint64_t kRate = 100'000'000;
constexpr Time kInterval = Milliseconds(100);
constexpr std::uint64_t kIntervalBytes = 1'250'000;

TEST(PortSaturation, FullUtilizationIsSaturated) {
  PortSaturationDetector det(kRate, 0.01);
  det.on_transmit(kIntervalBytes);
  EXPECT_TRUE(det.sample(kInterval));
  EXPECT_NEAR(det.last_utilization(), 1.0, 1e-9);
}

TEST(PortSaturation, IdlePortIsUnsaturated) {
  PortSaturationDetector det(kRate, 0.01);
  EXPECT_FALSE(det.sample(kInterval));
  EXPECT_DOUBLE_EQ(det.last_utilization(), 0.0);
}

TEST(PortSaturation, ThresholdBoundaryExact) {
  PortSaturationDetector det(kRate, 0.01);
  // Exactly (1 - delta_p) of capacity: counts as saturated (>=).
  det.on_transmit(static_cast<std::uint64_t>(kIntervalBytes * 0.99));
  EXPECT_TRUE(det.sample(kInterval));
}

TEST(PortSaturation, JustBelowThresholdUnsaturated) {
  PortSaturationDetector det(kRate, 0.01);
  det.on_transmit(static_cast<std::uint64_t>(kIntervalBytes * 0.985));
  EXPECT_FALSE(det.sample(kInterval));
}

TEST(PortSaturation, DeltaIsDifferencedNotReset) {
  PortSaturationDetector det(kRate, 0.01);
  det.on_transmit(kIntervalBytes);
  EXPECT_TRUE(det.sample(kInterval));
  // No new traffic: the monotone counter's delta is zero.
  EXPECT_FALSE(det.sample(kInterval));
  EXPECT_DOUBLE_EQ(det.last_utilization(), 0.0);
  // Counter keeps its absolute value.
  EXPECT_EQ(det.tx_bytes(), kIntervalBytes);
}

TEST(PortSaturation, AccumulatesAcrossManyTransmits) {
  PortSaturationDetector det(kRate, 0.01);
  for (int i = 0; i < 1000; ++i) det.on_transmit(kIntervalBytes / 1000);
  EXPECT_TRUE(det.sample(kInterval));
}

TEST(PortSaturation, LargerDeltaLowersBar) {
  PortSaturationDetector det(kRate, 0.20);
  det.on_transmit(static_cast<std::uint64_t>(kIntervalBytes * 0.85));
  EXPECT_TRUE(det.sample(kInterval));
}

class PortSaturationSweep : public ::testing::TestWithParam<double> {};

TEST_P(PortSaturationSweep, SaturationExactlyAtOneMinusDelta) {
  const double delta = GetParam();
  PortSaturationDetector det(kRate, delta);
  det.on_transmit(static_cast<std::uint64_t>(kIntervalBytes * (1.0 - delta) * 1.001));
  EXPECT_TRUE(det.sample(kInterval));

  PortSaturationDetector det2(kRate, delta);
  det2.on_transmit(static_cast<std::uint64_t>(kIntervalBytes * (1.0 - delta) * 0.98));
  EXPECT_FALSE(det2.sample(kInterval));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PortSaturationSweep,
                         ::testing::Values(0.01, 0.02, 0.05, 0.10, 0.25, 0.50));

}  // namespace
}  // namespace cebinae
