#include "core/resource_model.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

TEST(ResourceModel, ReproducesTable3OneStage) {
  TofinoResourceModel model;
  const TofinoResources r = model.estimate(1);
  EXPECT_EQ(r.cache_stages, 1u);
  EXPECT_EQ(r.pipeline_stages, 11u);
  EXPECT_EQ(r.phv_bits, 937u);
  EXPECT_EQ(r.sram_kb, 2448u);
  EXPECT_EQ(r.tcam_kb, 15u);
  EXPECT_EQ(r.vliw_instructions, 89u);
  EXPECT_EQ(r.queues, 64u);
}

TEST(ResourceModel, ReproducesTable3TwoStage) {
  TofinoResourceModel model;
  const TofinoResources r = model.estimate(2);
  EXPECT_EQ(r.phv_bits, 1042u);
  EXPECT_EQ(r.sram_kb, 4096u);
  EXPECT_EQ(r.tcam_kb, 34u);
  EXPECT_EQ(r.vliw_instructions, 93u);
  EXPECT_EQ(r.queues, 64u);
}

TEST(ResourceModel, UnderTwentyFivePercentBudget) {
  // The paper: "Cebinae's resource consumption is less than 25% for all
  // types of compute and memory resources" (within rounding of our
  // approximate chip budgets).
  TofinoResourceModel model;
  for (std::uint32_t stages : {1u, 2u}) {
    const TofinoResources r = model.estimate(stages);
    EXPECT_LT(r.phv_fraction(), 0.26) << stages;
    EXPECT_LT(r.sram_fraction(), 0.27) << stages;
    EXPECT_LT(r.tcam_fraction(), 0.12) << stages;
  }
}

TEST(ResourceModel, SramScalesWithSlots) {
  TofinoResourceModel half_slots(32, 2048);
  const TofinoResources full = TofinoResourceModel(32, 4096).estimate(2);
  const TofinoResources half = half_slots.estimate(2);
  EXPECT_LT(half.sram_kb, full.sram_kb);
  // Only the per-stage (cache) SRAM halves; the base does not.
  EXPECT_GT(half.sram_kb, full.sram_kb / 2);
}

TEST(ResourceModel, QueuesAreTwoPerPort) {
  EXPECT_EQ(TofinoResourceModel(32, 4096).estimate(1).queues, 64u);
  EXPECT_EQ(TofinoResourceModel(64, 4096).estimate(1).queues, 128u);
}

TEST(ResourceModel, ExtrapolatesMonotonically) {
  TofinoResourceModel model;
  const TofinoResources r2 = model.estimate(2);
  const TofinoResources r4 = model.estimate(4);
  EXPECT_GT(r4.phv_bits, r2.phv_bits);
  EXPECT_GT(r4.sram_kb, r2.sram_kb);
  EXPECT_GT(r4.tcam_kb, r2.tcam_kb);
  EXPECT_GT(r4.vliw_instructions, r2.vliw_instructions);
  EXPECT_EQ(r4.queues, r2.queues);  // never more than 2 priorities per port
}

}  // namespace
}  // namespace cebinae
