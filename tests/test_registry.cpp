// Experiment registry: every registered paper figure/table must expand to a
// stable, non-empty job list, and the aggregation layer must group trials
// correctly. cebinae_tests links the bench/experiments OBJECT library, so
// the registry iterated here is exactly what `cebinae_bench` serves.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "exp/registry.hpp"

namespace cebinae::exp {
namespace {

std::vector<const ExperimentSpec*> all_specs() {
  return ExperimentRegistry::instance().all();
}

TEST(ExperimentRegistry, AllPaperExperimentsAreRegistered) {
  std::set<std::string> names;
  for (const ExperimentSpec* s : all_specs()) names.insert(s->name);
  for (const char* expected :
       {"fig01", "fig07", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "table2",
        "table3", "ablation_strawman", "ablation_afq_scaling"}) {
    EXPECT_TRUE(names.count(expected)) << "missing experiment: " << expected;
  }
}

TEST(ExperimentRegistry, ListIsSortedByName) {
  const auto specs = all_specs();
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LT(specs[i - 1]->name, specs[i]->name);
  }
}

TEST(ExperimentRegistry, FindMatchesListAndRejectsUnknown) {
  for (const ExperimentSpec* s : all_specs()) {
    EXPECT_EQ(ExperimentRegistry::instance().find(s->name), s);
  }
  EXPECT_EQ(ExperimentRegistry::instance().find("no_such_experiment"), nullptr);
}

TEST(ExperimentRegistry, EveryExperimentBuildsANonEmptyGrid) {
  RunOptions opts;
  opts.smoke = true;
  for (const ExperimentSpec* s : all_specs()) {
    ASSERT_TRUE(s->make_jobs) << s->name;
    ASSERT_TRUE(s->report) << s->name;
    EXPECT_FALSE(s->description.empty()) << s->name;
    const auto jobs = s->make_jobs(opts);
    EXPECT_FALSE(jobs.empty()) << s->name;
    for (const ExperimentJob& j : jobs) {
      EXPECT_FALSE(j.label.empty()) << s->name;
    }
  }
}

TEST(ExperimentRegistry, GridsAreStableAcrossCalls) {
  RunOptions opts;
  opts.smoke = true;
  for (const ExperimentSpec* s : all_specs()) {
    const auto a = s->make_jobs(opts);
    const auto b = s->make_jobs(opts);
    ASSERT_EQ(a.size(), b.size()) << s->name;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label) << s->name;
      EXPECT_EQ(a[i].params.str(), b[i].params.str()) << s->name;
    }
  }
}

TEST(ExperimentRegistry, JobLabelsAreUniqueWithinAnExperiment) {
  RunOptions opts;
  opts.smoke = true;
  for (const ExperimentSpec* s : all_specs()) {
    std::set<std::string> labels;
    for (const ExperimentJob& j : s->make_jobs(opts)) {
      EXPECT_TRUE(labels.insert(j.label).second)
          << s->name << ": duplicate label " << j.label;
    }
  }
}

TEST(ExperimentRegistry, TrialsMultiplyTheGridAndTagLabels) {
  RunOptions base;
  base.smoke = true;
  RunOptions tripled = base;
  tripled.trials = 3;
  for (const ExperimentSpec* s : all_specs()) {
    const auto single = s->make_jobs(base);
    const auto multi = s->make_jobs(tripled);
    EXPECT_EQ(multi.size(), single.size() * 3) << s->name;
    // Trials are innermost: consecutive triplets share one grid point.
    for (std::size_t i = 0; i + 2 < multi.size(); i += 3) {
      const std::string key = strip_trial(multi[i].label);
      EXPECT_EQ(strip_trial(multi[i + 1].label), key) << s->name;
      EXPECT_EQ(strip_trial(multi[i + 2].label), key) << s->name;
      EXPECT_NE(multi[i].label, multi[i + 1].label) << s->name;
    }
  }
}

TEST(StripTrial, DropsTheTrialTokenWhereverItAppears) {
  EXPECT_EQ(strip_trial("qdisc=FIFO trial=3"), "qdisc=FIFO");
  EXPECT_EQ(strip_trial("trial=0 qdisc=FIFO"), "qdisc=FIFO");
  EXPECT_EQ(strip_trial("qdisc=FIFO"), "qdisc=FIFO");
  EXPECT_EQ(strip_trial("a=1 trial=12 b=2"), "a=1 b=2");
}

TEST(ReplicateTrials, AppendsTrialTokensInnermost) {
  std::vector<ExperimentJob> jobs(2);
  jobs[0].label = "qdisc=FIFO";
  jobs[1].label = "qdisc=Cebinae";
  const auto out = replicate_trials(jobs, 2);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].label, "qdisc=FIFO trial=0");
  EXPECT_EQ(out[1].label, "qdisc=FIFO trial=1");
  EXPECT_EQ(out[2].label, "qdisc=Cebinae trial=0");
  EXPECT_EQ(out[3].label, "qdisc=Cebinae trial=1");
  // n <= 1 is the identity.
  EXPECT_EQ(replicate_trials(jobs, 1)[0].label, "qdisc=FIFO");
}

TEST(AggregateRows, GroupsConsecutiveTrialsAndAggregatesExtras) {
  std::vector<ExperimentJob> jobs(4);
  std::vector<RunRecord> records(4);
  for (int i = 0; i < 4; ++i) {
    jobs[i].label =
        std::string(i < 2 ? "point=a" : "point=b") + " trial=" + std::to_string(i % 2);
    jobs[i].custom = [](std::uint64_t) {
      return std::vector<std::pair<std::string, double>>{};
    };
    records[i].extra.emplace_back("metric", static_cast<double>(i));
  }
  const auto rows = aggregate_rows(jobs, records, nullptr);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].label, "point=a");
  EXPECT_EQ(rows[1].label, "point=b");
  ASSERT_EQ(rows[0].trials.size(), 2u);
  const Aggregate* a = rows[0].metric("metric");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->n, 2);
  EXPECT_DOUBLE_EQ(a->mean, 0.5);
  EXPECT_DOUBLE_EQ(rows[1].mean("metric"), 2.5);
  EXPECT_EQ(rows[0].metric("absent"), nullptr);
  EXPECT_DOUBLE_EQ(rows[0].mean("absent"), 0.0);
}

TEST(AggregateRows, SkippedRecordsJoinTheRowButContributeNoSamples) {
  std::vector<ExperimentJob> jobs(2);
  std::vector<RunRecord> records(2);
  jobs[0].label = "point=a trial=0";
  jobs[1].label = "point=a trial=1";
  for (auto& j : jobs) {
    j.custom = [](std::uint64_t) { return std::vector<std::pair<std::string, double>>{}; };
  }
  records[0].extra.emplace_back("metric", 7.0);
  records[1].skipped = true;
  const auto rows = aggregate_rows(jobs, records, nullptr);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].trials.size(), 2u);
  const Aggregate* a = rows[0].metric("metric");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->n, 1);
  EXPECT_DOUBLE_EQ(a->mean, 7.0);
}

}  // namespace
}  // namespace cebinae::exp
