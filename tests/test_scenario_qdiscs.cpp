// Runner-level behavior of the comparison queue disciplines (AFQ and the
// strawman) plus Cebinae's ECN mode — the pieces the ablation benches rely
// on.
#include <gtest/gtest.h>

#include "runner/scenario.hpp"

namespace cebinae {
namespace {

ScenarioConfig base(QdiscKind qdisc) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 50'000'000;
  cfg.buffer_bytes = 256ull * kMtuBytes;
  cfg.qdisc = qdisc;
  cfg.duration = Seconds(12);
  cfg.seed = 5;
  return cfg;
}

TEST(ScenarioQdiscs, AfqSaturatesWithAdequateCalendar) {
  ScenarioConfig cfg = base(QdiscKind::kAfq);
  cfg.afq.num_queues = 128;
  cfg.afq.bytes_per_round = 2 * kMtuBytes;
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  ScenarioResult r = Scenario(cfg).run();
  EXPECT_GT(r.total_goodput_Bps * 8, 0.85 * 50e6);
}

TEST(ScenarioQdiscs, AfqEqualizesRttAsymmetry) {
  auto run = [](QdiscKind q) {
    ScenarioConfig cfg = base(q);
    cfg.afq.num_queues = 256;
    cfg.duration = Seconds(20);
    cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
    cfg.flows[1].rtt = Milliseconds(80);
    return Scenario(cfg).run();
  };
  // Calendar-queue fair queueing beats FIFO's RTT bias decisively.
  const ScenarioResult afq = run(QdiscKind::kAfq);
  const ScenarioResult fifo = run(QdiscKind::kFifo);
  EXPECT_GT(afq.jfi, fifo.jfi + 0.1);
  EXPECT_GT(afq.jfi, 0.75);
}

TEST(ScenarioQdiscs, AfqCollapsesWhenHorizonTooSmall) {
  // Equation 1: high-RTT flows need a scheduling horizon ~their share of
  // the BDP; nQ=8 with BpR=2 MTU truncates it, nQ=128 suffices.
  auto run = [](std::uint32_t nq) {
    ScenarioConfig cfg;
    cfg.bottleneck_bps = 100'000'000;
    cfg.buffer_bytes = 1700ull * kMtuBytes;
    cfg.qdisc = QdiscKind::kAfq;
    cfg.afq.num_queues = nq;
    cfg.afq.bytes_per_round = 2 * kMtuBytes;
    cfg.duration = Seconds(25);
    cfg.seed = 5;
    cfg.flows = flows_of(CcaType::kNewReno, 4, Milliseconds(200));
    return Scenario(cfg).run();
  };
  const ScenarioResult starved = run(8);
  const ScenarioResult fine = run(128);
  EXPECT_LT(starved.total_goodput_Bps, 0.6 * fine.total_goodput_Bps);
}

TEST(ScenarioQdiscs, StrawmanMatchesFifoThroughput) {
  ScenarioConfig fifo = base(QdiscKind::kFifo);
  fifo.flows = flows_of(CcaType::kNewReno, 4, Milliseconds(30));
  const ScenarioResult f = Scenario(fifo).run();

  ScenarioConfig straw = base(QdiscKind::kStrawman);
  straw.flows = flows_of(CcaType::kNewReno, 4, Milliseconds(30));
  const ScenarioResult s = Scenario(straw).run();

  // Freeze-at-max never caps a flow below the current maximum, so identical
  // homogeneous flows are barely affected.
  EXPECT_NEAR(s.total_goodput_Bps / f.total_goodput_Bps, 1.0, 0.1);
}

TEST(ScenarioQdiscs, StrawmanDoesNotRepairUnfairness) {
  // Scaled Fig. 2a narrative: Vegas victims vs a NewReno aggressor. The
  // strawman must not meaningfully improve JFI over FIFO.
  auto run = [](QdiscKind q) {
    ScenarioConfig cfg = base(q);
    cfg.duration = Seconds(20);
    cfg.flows = flows_of(CcaType::kVegas, 8, Milliseconds(40));
    cfg.flows.push_back(FlowSpec{CcaType::kNewReno, Milliseconds(40)});
    return Scenario(cfg).run();
  };
  const ScenarioResult fifo = run(QdiscKind::kFifo);
  const ScenarioResult straw = run(QdiscKind::kStrawman);
  const ScenarioResult ceb = run(QdiscKind::kCebinae);
  EXPECT_LT(straw.jfi, fifo.jfi + 0.15);  // no meaningful repair
  EXPECT_GT(ceb.jfi, fifo.jfi + 0.2);     // Cebinae repairs
}

TEST(ScenarioQdiscs, CebinaeEcnModeMarksInsteadOfDropping) {
  ScenarioConfig cfg = base(QdiscKind::kCebinae);
  cfg.cebinae.mark_ecn = true;
  cfg.duration = Seconds(20);
  cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(20));
  for (FlowSpec& f : cfg.flows) f.ecn = true;
  cfg.flows[1].rtt = Milliseconds(80);

  Scenario scenario(cfg);
  const ScenarioResult r = scenario.run();
  // The taxed flow receives CE marks (gentler than drops) and efficiency
  // stays high.
  EXPECT_GT(scenario.cebinae_qdisc(0)->stats().ecn_marked_packets, 0u);
  // ECN-mode taxation signals once per RTT via CE; slightly costlier than
  // drop mode in efficiency but far gentler on latency.
  EXPECT_GT(r.total_goodput_Bps * 8, 0.7 * 50e6);
}

TEST(ScenarioQdiscs, AllQdiscKindsRunToCompletion) {
  for (QdiscKind q : {QdiscKind::kFifo, QdiscKind::kFqCoDel, QdiscKind::kCebinae,
                      QdiscKind::kAfq, QdiscKind::kStrawman}) {
    ScenarioConfig cfg = base(q);
    cfg.duration = Seconds(4);
    cfg.flows = flows_of(CcaType::kCubic, 3, Milliseconds(25));
    const ScenarioResult r = Scenario(cfg).run();
    EXPECT_GT(r.total_goodput_Bps, 0.0) << to_string(q);
    EXPECT_LE(r.throughput_Bps[0] * 8, 50e6 * 1.001) << to_string(q);
  }
}

}  // namespace
}  // namespace cebinae
