#include "tcp/vegas.hpp"

#include <gtest/gtest.h>

#include "cc_test_util.hpp"

namespace cebinae {
namespace {

constexpr std::uint32_t kMss = kMssBytes;

// Feed one Vegas round: >=3 RTT samples then a round boundary.
Time vegas_round(Vegas& cc, Time now, Time rtt) {
  for (int i = 0; i < 4; ++i) {
    cc.on_ack(make_ack(now + (rtt / 4) * i, kMss, rtt, /*round_start=*/false));
  }
  cc.on_ack(make_ack(now + rtt, kMss, rtt, /*round_start=*/true));
  return now + rtt;
}

TEST(Vegas, TracksBaseRtt) {
  Vegas cc(kMss);
  cc.on_ack(make_ack(Seconds(1), kMss, Milliseconds(120)));
  cc.on_ack(make_ack(Seconds(1), kMss, Milliseconds(80)));
  cc.on_ack(make_ack(Seconds(1), kMss, Milliseconds(100)));
  EXPECT_EQ(cc.base_rtt(), Milliseconds(80));
}

TEST(Vegas, IncreasesWhenDiffBelowAlpha) {
  Vegas cc(kMss);
  // Force out of slow start with a loss, then run rounds at base RTT
  // (diff = 0 < alpha): +1 MSS per round.
  cc.on_loss(Seconds(1), cc.cwnd_bytes());
  Time now = Seconds(2);
  now = vegas_round(cc, now, Milliseconds(100));  // learns base, first adjust
  const std::uint64_t before = cc.cwnd_bytes();
  now = vegas_round(cc, now, Milliseconds(100));
  EXPECT_EQ(cc.cwnd_bytes(), before + kMss);
}

TEST(Vegas, DecreasesWhenDiffAboveBeta) {
  Vegas cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());  // CA at 5 segments
  Time now = Seconds(2);
  now = vegas_round(cc, now, Milliseconds(100));  // base = 100 ms
  // Grow the window a bit at base RTT.
  for (int i = 0; i < 10; ++i) now = vegas_round(cc, now, Milliseconds(100));
  const std::uint64_t before = cc.cwnd_bytes();
  // Now RTT inflates hugely: diff = cwnd*(1 - 100/200) = cwnd/2 >> beta.
  now = vegas_round(cc, now, Milliseconds(200));
  EXPECT_EQ(cc.cwnd_bytes(), before - kMss);
}

TEST(Vegas, HoldsInsideAlphaBetaBand) {
  Vegas cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());
  Time now = Seconds(2);
  now = vegas_round(cc, now, Milliseconds(100));
  for (int i = 0; i < 5; ++i) now = vegas_round(cc, now, Milliseconds(100));
  const std::uint64_t cwnd = cc.cwnd_bytes();
  const double cwnd_seg = static_cast<double>(cwnd) / kMss;
  // Pick an RTT so queued segments = 3 (between alpha=2 and beta=4):
  // diff = cwnd*(rtt-base)/rtt = 3  =>  rtt = base*cwnd/(cwnd-3).
  const double rtt_ms = 100.0 * cwnd_seg / (cwnd_seg - 3.0);
  now = vegas_round(cc, now, MillisecondsF(rtt_ms));
  EXPECT_EQ(cc.cwnd_bytes(), cwnd);
}

TEST(Vegas, SlowStartDoublesEveryOtherRound) {
  Vegas cc(kMss);
  const std::uint64_t w0 = cc.cwnd_bytes();
  Time now = Seconds(1);
  // Two rounds at base RTT: only one of them grows the window.
  now = vegas_round(cc, now, Milliseconds(100));
  now = vegas_round(cc, now, Milliseconds(100));
  const std::uint64_t w2 = cc.cwnd_bytes();
  EXPECT_LT(w2, 4 * w0);  // strictly less than double-per-round growth
  EXPECT_GT(w2, w0);
}

TEST(Vegas, ExitsSlowStartOnQueueBuildup) {
  Vegas cc(kMss);
  Time now = Seconds(1);
  now = vegas_round(cc, now, Milliseconds(100));  // learn base
  EXPECT_TRUE(cc.in_slow_start());
  // Inflated RTT: diff > gamma forces slow-start exit.
  for (int i = 0; i < 4 && cc.in_slow_start(); ++i) {
    now = vegas_round(cc, now, Milliseconds(150));
  }
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(Vegas, LossFallsBackToRenoHalving) {
  Vegas cc(kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  cc.on_loss(Seconds(1), before);
  EXPECT_EQ(cc.cwnd_bytes(), before / 2);
}

TEST(Vegas, RtoCollapsesToOneSegment) {
  Vegas cc(kMss);
  cc.on_rto(Seconds(1));
  EXPECT_EQ(cc.cwnd_bytes(), kMss);
}

TEST(Vegas, NeedsThreeSamplesPerRound) {
  Vegas cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());
  const std::uint64_t before = cc.cwnd_bytes();
  // Rounds with fewer than 3 samples make no adjustment.
  cc.on_ack(make_ack(Seconds(2), kMss, Milliseconds(100), /*round_start=*/false));
  cc.on_ack(make_ack(Seconds(2) + Milliseconds(100), kMss, Milliseconds(100),
                     /*round_start=*/true));
  cc.on_ack(make_ack(Seconds(2) + Milliseconds(150), kMss, Milliseconds(100),
                     /*round_start=*/false));
  cc.on_ack(make_ack(Seconds(2) + Milliseconds(200), kMss, Milliseconds(100),
                     /*round_start=*/true));
  EXPECT_EQ(cc.cwnd_bytes(), before);
}

}  // namespace
}  // namespace cebinae
