#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cebinae::exp {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
      futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateToTheFuture) {
  ThreadPool pool(2);
  std::future<void> bad = pool.submit([] { throw std::runtime_error("boom"); });
  std::future<int> good = pool.submit([] { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // A throwing job must not take down its worker.
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      // Futures discarded: destruction alone must still run all 50.
      (void)pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, UsesMultipleWorkers) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> blocked{0};
  std::vector<std::future<void>> futures;
  // Jobs rendezvous until all 4 workers hold one, proving concurrency.
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&] {
      blocked.fetch_add(1);
      while (blocked.load() < 4) std::this_thread::yield();
      std::lock_guard<std::mutex> lock(mu);
      ids.insert(std::this_thread::get_id());
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(ids.size(), 4u);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

}  // namespace
}  // namespace cebinae::exp
