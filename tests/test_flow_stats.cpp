#include "metrics/flow_stats.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

const FlowId kFlowA{1, 2, 5000, 5000};
const FlowId kFlowB{3, 4, 5001, 5001};

TEST(FlowStats, TotalsAccumulate) {
  FlowStatsCollector stats;
  stats.on_delivery(kFlowA, 100, Milliseconds(500));
  stats.on_delivery(kFlowA, 200, Milliseconds(700));
  EXPECT_EQ(stats.total_bytes(kFlowA), 300u);
  EXPECT_EQ(stats.total_bytes(kFlowB), 0u);
}

TEST(FlowStats, RegistrationFixesOrdering) {
  FlowStatsCollector stats;
  stats.register_flow(kFlowB);
  stats.register_flow(kFlowA);
  stats.on_delivery(kFlowA, 1000, Milliseconds(100));
  const auto goodputs = stats.goodputs_Bps(Time::zero(), Seconds(1));
  ASSERT_EQ(goodputs.size(), 2u);
  EXPECT_DOUBLE_EQ(goodputs[0], 0.0);     // B registered first
  EXPECT_DOUBLE_EQ(goodputs[1], 1000.0);  // A
}

TEST(FlowStats, DuplicateRegistrationIgnored) {
  FlowStatsCollector stats;
  stats.register_flow(kFlowA);
  stats.register_flow(kFlowA);
  EXPECT_EQ(stats.flow_count(), 1u);
}

TEST(FlowStats, UnregisteredDeliveryAutoRegisters) {
  FlowStatsCollector stats;
  stats.on_delivery(kFlowA, 5, Time::zero());
  EXPECT_EQ(stats.flow_count(), 1u);
}

TEST(FlowStats, BucketedSeries) {
  FlowStatsCollector stats(Seconds(1));
  stats.on_delivery(kFlowA, 100, Milliseconds(200));   // bucket 0
  stats.on_delivery(kFlowA, 200, Milliseconds(1500));  // bucket 1
  stats.on_delivery(kFlowA, 300, Milliseconds(1999));  // bucket 1
  stats.on_delivery(kFlowA, 400, Milliseconds(5000));  // bucket 5
  const auto series = stats.series(kFlowA);
  ASSERT_EQ(series.size(), 6u);
  EXPECT_EQ(series[0], 100u);
  EXPECT_EQ(series[1], 500u);
  EXPECT_EQ(series[2], 0u);
  EXPECT_EQ(series[5], 400u);
}

TEST(FlowStats, WindowedGoodput) {
  FlowStatsCollector stats(Seconds(1));
  stats.on_delivery(kFlowA, 1000, Milliseconds(500));   // bucket 0
  stats.on_delivery(kFlowA, 2000, Milliseconds(1500));  // bucket 1
  stats.on_delivery(kFlowA, 4000, Milliseconds(2500));  // bucket 2
  // Window [1s, 3s): buckets 1 and 2 -> 6000 bytes over 2 s.
  EXPECT_DOUBLE_EQ(stats.goodput_Bps(kFlowA, Seconds(1), Seconds(3)), 3000.0);
  // Whole run.
  EXPECT_DOUBLE_EQ(stats.goodput_Bps(kFlowA, Time::zero(), Seconds(3)), 7000.0 / 3.0);
}

TEST(FlowStats, EmptyWindowIsZero) {
  FlowStatsCollector stats;
  stats.on_delivery(kFlowA, 1000, Milliseconds(500));
  EXPECT_DOUBLE_EQ(stats.goodput_Bps(kFlowA, Seconds(5), Seconds(10)), 0.0);
  EXPECT_DOUBLE_EQ(stats.goodput_Bps(kFlowA, Seconds(3), Seconds(3)), 0.0);
}

TEST(FlowStats, CustomBucketWidth) {
  FlowStatsCollector stats(Milliseconds(100));
  stats.on_delivery(kFlowA, 10, Milliseconds(50));
  stats.on_delivery(kFlowA, 20, Milliseconds(150));
  const auto series = stats.series(kFlowA);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0], 10u);
  EXPECT_EQ(series[1], 20u);
}

}  // namespace
}  // namespace cebinae
