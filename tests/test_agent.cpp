#include "core/agent.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

constexpr std::uint64_t kRate = 100'000'000;  // ~13107 bytes per dT round

CebinaeParams agent_params() {
  CebinaeParams p;
  p.dt = Nanoseconds(1 << 20);
  p.vdt = Nanoseconds(1 << 10);
  p.l_deadline = Nanoseconds(1 << 16);
  p.p_rounds = 4;
  return p;
}

Packet pkt(std::uint32_t flow_src) {
  Packet p;
  p.flow = FlowId{flow_src, 1000, 5000, 5000};
  p.size_bytes = kMtuBytes;
  p.payload_bytes = kMssBytes;
  return p;
}

// Drives the data path: every dT, offer an A-heavy mix and transmit at
// roughly link rate (9 MTU per round ~= 103% utilization).
struct AgentHarness {
  Scheduler sched;
  CebinaeQueueDisc qdisc{sched, kRate, 1000 * kMtuBytes, agent_params()};
  CebinaeAgent agent{sched, qdisc};
  bool feeding = true;

  void feed_tick() {
    if (feeding) {
      for (int i = 0; i < 30; ++i) {
        qdisc.enqueue(pkt(1));  // flow 1: the aggressor
        if (i % 3 == 0) qdisc.enqueue(pkt(2));  // flow 2: 1/4 of the load
      }
    }
    for (int i = 0; i < 9; ++i) (void)qdisc.dequeue();
    sched.schedule(agent_params().dt, [this] { feed_tick(); });
  }

  void start() {
    agent.start();
    sched.schedule(Microseconds(200), [this] { feed_tick(); });
  }
};

TEST(CebinaeAgent, RotatesEveryDt) {
  AgentHarness h;
  h.agent.start();
  h.sched.run_until(agent_params().dt * 10 + Nanoseconds(1));
  EXPECT_EQ(h.agent.rotations(), 10u);
  EXPECT_EQ(h.qdisc.lbf().rotations(), 10u);
}

TEST(CebinaeAgent, RecomputesEveryPRounds) {
  AgentHarness h;
  h.agent.start();
  h.sched.run_until(agent_params().dt * 12 + Nanoseconds(1));
  EXPECT_EQ(h.agent.recomputations(), 3u);
}

TEST(CebinaeAgent, IdlePortStaysUnsaturated) {
  AgentHarness h;
  h.feeding = false;
  h.start();
  h.sched.run_until(agent_params().dt * 8);
  EXPECT_FALSE(h.agent.snapshot().saturated);
  EXPECT_FALSE(h.qdisc.lbf().saturated_phase());
  EXPECT_TRUE(h.qdisc.top_flows().empty());
}

TEST(CebinaeAgent, SaturationDetectedAndTopFlowClassified) {
  AgentHarness h;
  h.start();
  // Two recompute intervals: the first classifies, the commit applies.
  h.sched.run_until(agent_params().dt * 9);
  EXPECT_TRUE(h.agent.snapshot().saturated);
  EXPECT_GE(h.agent.snapshot().utilization, 0.99);
  ASSERT_EQ(h.agent.snapshot().top_flows.size(), 1u);
  EXPECT_EQ(h.agent.snapshot().top_flows[0].src, 1u);
  // Membership was committed to the data plane.
  EXPECT_TRUE(h.qdisc.is_top(FlowId{1, 1000, 5000, 5000}));
  EXPECT_FALSE(h.qdisc.is_top(FlowId{2, 1000, 5000, 5000}));
  EXPECT_TRUE(h.qdisc.lbf().saturated_phase());
  EXPECT_GE(h.agent.phase_changes(), 1u);
}

TEST(CebinaeAgent, TopRateIsTaxedMeasuredRate) {
  AgentHarness h;
  h.start();
  h.sched.run_until(agent_params().dt * 9);
  const auto& snap = h.agent.snapshot();
  ASSERT_TRUE(snap.saturated);
  // Flow 1 carries ~3/4 of the transmitted bytes; its taxed rate must be
  // (1 - tau) * measured, i.e. well below capacity but above half.
  const double capacity_Bps = kRate / 8.0;
  EXPECT_GT(snap.top_rate_Bps, 0.5 * capacity_Bps);
  EXPECT_LT(snap.top_rate_Bps, 0.99 * capacity_Bps);
  EXPECT_NEAR(snap.top_rate_Bps + snap.bottom_rate_Bps, capacity_Bps, 1.0);
}

TEST(CebinaeAgent, ReturnsToUnsaturatedWhenLoadStops) {
  AgentHarness h;
  h.start();
  h.sched.run_until(agent_params().dt * 9);
  ASSERT_TRUE(h.qdisc.lbf().saturated_phase());
  h.feeding = false;
  // Two more recompute intervals with no traffic.
  h.sched.run_until(agent_params().dt * 18);
  EXPECT_FALSE(h.agent.snapshot().saturated);
  EXPECT_FALSE(h.qdisc.lbf().saturated_phase());
  EXPECT_TRUE(h.qdisc.top_flows().empty());
  EXPECT_GE(h.agent.phase_changes(), 2u);
}

TEST(CebinaeAgent, CacheIsPolledEveryInterval) {
  AgentHarness h;
  h.start();
  h.sched.run_until(agent_params().dt * 9);
  // The cache was reset at the last recompute; it only holds bytes from the
  // current partial interval (at most P rounds of traffic).
  const auto entries_bytes = h.qdisc.cache().bytes_for(FlowId{1, 1000, 5000, 5000});
  const double interval_bytes = (kRate / 8.0) * agent_params().dt.seconds() * 4;
  if (entries_bytes.has_value()) {
    EXPECT_LT(static_cast<double>(*entries_bytes), 1.5 * interval_bytes);
  }
}

TEST(CebinaeAgent, BothFlowsTopWhenEqual) {
  // Equal feed: both flows within delta_f of the max -> both taxed. A wider
  // delta_f (10%) absorbs the +-1 packet granularity of MTU-sized counters.
  Scheduler sched;
  CebinaeParams p = agent_params();
  p.delta_flow = 0.10;
  CebinaeQueueDisc q(sched, kRate, 1000 * kMtuBytes, p);
  CebinaeAgent agent(sched, q);
  agent.start();
  // Alternate which flow leads each tick so admission cutoffs do not
  // systematically favor one of them.
  int parity = 0;
  std::function<void()> tick = [&] {
    for (int i = 0; i < 15; ++i) {
      q.enqueue(pkt(parity == 0 ? 1 : 2));
      q.enqueue(pkt(parity == 0 ? 2 : 1));
    }
    parity ^= 1;
    for (int i = 0; i < 10; ++i) (void)q.dequeue();
    sched.schedule(agent_params().dt, tick);
  };
  sched.schedule(Microseconds(200), tick);
  sched.run_until(agent_params().dt * 9);
  EXPECT_TRUE(agent.snapshot().saturated);
  EXPECT_EQ(agent.snapshot().top_flows.size(), 2u);
}

}  // namespace
}  // namespace cebinae
