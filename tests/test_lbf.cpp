#include "core/lbf.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

// 100 Mbps link, dT = 2^20 ns (~1.049 ms), vdT = 2^10 ns.
constexpr std::uint64_t kRate = 100'000'000;
constexpr double kCapacityBps = kRate / 8.0;  // 12.5 MB/s

CebinaeParams params(bool mark_ecn = false) {
  CebinaeParams p;
  p.dt = Nanoseconds(1 << 20);
  p.vdt = Nanoseconds(1 << 10);
  p.mark_ecn = mark_ecn;
  return p;
}

double bytes_per_dt(double rate_Bps) { return rate_Bps * params().dt.seconds(); }

using Queue = LeakyBucketFilter::Queue;

TEST(Lbf, UnsaturatedAdmitsUpToCapacityThenDelaysThenDrops) {
  LeakyBucketFilter lbf(params(), kRate);
  const double per_round = bytes_per_dt(kCapacityBps);  // ~13107 bytes

  int head = 0;
  int tail = 0;
  int drop = 0;
  for (int i = 0; i < 30; ++i) {
    switch (lbf.admit(FlowGroup::kBottom, 1000, Time::zero()).queue) {
      case Queue::kHead:
        ++head;
        break;
      case Queue::kTail:
        ++tail;
        break;
      case Queue::kDrop:
        ++drop;
        break;
    }
  }
  EXPECT_EQ(head, static_cast<int>(per_round / 1000));       // 13
  EXPECT_EQ(tail, static_cast<int>(2 * per_round / 1000) - head);  // 13
  EXPECT_EQ(drop, 30 - head - tail);
}

TEST(Lbf, GroupsIgnoredWhileUnsaturated) {
  LeakyBucketFilter lbf(params(), kRate);
  // Both groups draw from the same aggregate allowance.
  EXPECT_EQ(lbf.admit(FlowGroup::kTop, 8000, Time::zero()).queue, Queue::kHead);
  EXPECT_EQ(lbf.admit(FlowGroup::kBottom, 8000, Time::zero()).queue, Queue::kTail);
}

TEST(Lbf, SaturatedTopGroupIsRateLimited) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(/*top=*/kCapacityBps * 0.2, /*bottom=*/kCapacityBps * 0.8);
  const double top_round = bytes_per_dt(kCapacityBps * 0.2);  // ~2621 bytes

  int head = 0;
  int tail = 0;
  int drop = 0;
  for (int i = 0; i < 12; ++i) {
    switch (lbf.admit(FlowGroup::kTop, 500, Time::zero()).queue) {
      case Queue::kHead:
        ++head;
        break;
      case Queue::kTail:
        ++tail;
        break;
      case Queue::kDrop:
        ++drop;
        break;
    }
  }
  EXPECT_EQ(head, static_cast<int>(top_round / 500));  // 5
  EXPECT_EQ(drop, 12 - static_cast<int>(2 * top_round / 500));
  EXPECT_EQ(head + tail + drop, 12);
}

TEST(Lbf, BottomGroupUnaffectedByTopConsumption) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  // Top exhausts its budget...
  for (int i = 0; i < 12; ++i) (void)lbf.admit(FlowGroup::kTop, 500, Time::zero());
  // ...bottom still gets its full allocation into the head queue.
  const double bottom_round = bytes_per_dt(kCapacityBps * 0.8);
  int head = 0;
  for (int i = 0; i < static_cast<int>(bottom_round / 500); ++i) {
    if (lbf.admit(FlowGroup::kBottom, 500, Time::zero()).queue == Queue::kHead) ++head;
  }
  EXPECT_EQ(head, static_cast<int>(bottom_round / 500));
}

TEST(Lbf, RotateDrainsOneRoundOfAllocation) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  for (int i = 0; i < 10; ++i) (void)lbf.admit(FlowGroup::kTop, 500, Time::zero());
  const double before = lbf.group_bytes(FlowGroup::kTop);
  lbf.rotate(params().dt);
  const double drained = before - lbf.group_bytes(FlowGroup::kTop);
  EXPECT_NEAR(drained, bytes_per_dt(kCapacityBps * 0.2), 1.0);
}

TEST(Lbf, RotateFlipsHeadIndex) {
  LeakyBucketFilter lbf(params(), kRate);
  EXPECT_EQ(lbf.head_index(), 0);
  lbf.rotate(params().dt);
  EXPECT_EQ(lbf.head_index(), 1);
  lbf.rotate(params().dt * 2);
  EXPECT_EQ(lbf.head_index(), 0);
  EXPECT_EQ(lbf.rotations(), 2u);
}

TEST(Lbf, FutureRatesApplyToTailQueueOnly) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  lbf.set_future_rates(kCapacityBps * 0.1, kCapacityBps * 0.9);
  const int head = lbf.head_index();
  EXPECT_DOUBLE_EQ(lbf.rate_Bps(head, FlowGroup::kTop), kCapacityBps * 0.2);
  EXPECT_DOUBLE_EQ(lbf.rate_Bps(1 - head, FlowGroup::kTop), kCapacityBps * 0.1);
  EXPECT_DOUBLE_EQ(lbf.rate_Bps(1 - head, FlowGroup::kBottom), kCapacityBps * 0.9);
}

TEST(Lbf, VirtualPacingLimitsCatchUpBursts) {
  // A group idle for 90% of the round cannot burst its whole round
  // allocation into the head queue at the end: the byte counter is floored
  // to the pacing line (Fig. 5 lines 15-20).
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  const Time late = Nanoseconds((1 << 20) * 9 / 10);

  int head = 0;
  for (int i = 0; i < 10; ++i) {
    if (lbf.admit(FlowGroup::kTop, 500, late).queue == Queue::kHead) ++head;
  }
  // Remaining head entitlement is only ~10% of the round (~262 bytes): at
  // most 0 full 500 B packets fit.
  EXPECT_EQ(head, 0);
}

TEST(Lbf, EarlySenderGetsFullHeadAllocation) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  int head = 0;
  for (int i = 0; i < 10; ++i) {
    if (lbf.admit(FlowGroup::kTop, 500, Time::zero()).queue == Queue::kHead) ++head;
  }
  EXPECT_EQ(head, 5);  // full 2621-byte entitlement available at round start
}

TEST(Lbf, DropsDoNotConsumeAllocation) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  // A giant packet that must be dropped...
  EXPECT_EQ(lbf.admit(FlowGroup::kTop, 50'000, Time::zero()).queue, Queue::kDrop);
  // ...must not charge the group's counter: a normal packet still fits.
  EXPECT_EQ(lbf.admit(FlowGroup::kTop, 500, Time::zero()).queue, Queue::kHead);
}

TEST(Lbf, EcnMarkedOnlyWhenDelayed) {
  LeakyBucketFilter lbf(params(/*mark_ecn=*/true), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  bool saw_head_mark = false;
  bool saw_tail_mark = false;
  for (int i = 0; i < 12; ++i) {
    const auto d = lbf.admit(FlowGroup::kTop, 500, Time::zero());
    if (d.queue == Queue::kHead && d.mark_ecn) saw_head_mark = true;
    if (d.queue == Queue::kTail && d.mark_ecn) saw_tail_mark = true;
  }
  EXPECT_FALSE(saw_head_mark);
  EXPECT_TRUE(saw_tail_mark);
}

TEST(Lbf, PhaseChangeBootstrapSplitsAggregateProportionally) {
  LeakyBucketFilter lbf(params(), kRate);
  // Accumulate 5000 aggregate bytes while unsaturated.
  for (int i = 0; i < 5; ++i) (void)lbf.admit(FlowGroup::kBottom, 1000, Time::zero());
  EXPECT_DOUBLE_EQ(lbf.total_bytes(), 5000.0);

  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  (void)lbf.admit(FlowGroup::kTop, 100, Time::zero());
  // bytes[top] = total * 20% + the packet itself.
  EXPECT_NEAR(lbf.group_bytes(FlowGroup::kTop), 5000.0 * 0.2 + 100.0, 1.0);
}

TEST(Lbf, LeaveSaturatedRestoresCapacityRates) {
  LeakyBucketFilter lbf(params(), kRate);
  lbf.enter_saturated(kCapacityBps * 0.2, kCapacityBps * 0.8);
  lbf.leave_saturated();
  EXPECT_FALSE(lbf.saturated_phase());
  for (int q = 0; q < 2; ++q) {
    EXPECT_DOUBLE_EQ(lbf.rate_Bps(q, FlowGroup::kTop), kCapacityBps);
    EXPECT_DOUBLE_EQ(lbf.rate_Bps(q, FlowGroup::kBottom), kCapacityBps);
  }
}

TEST(Lbf, SteadyStateThroughputMatchesRateOverManyRounds) {
  // Property: over many rounds, the bytes admitted for the top group track
  // top_rate * elapsed_time, regardless of arrival pattern.
  LeakyBucketFilter lbf(params(), kRate);
  const double top_rate = kCapacityBps * 0.3;
  lbf.enter_saturated(top_rate, kCapacityBps * 0.7);

  double admitted = 0;
  Time now = Time::zero();
  const Time dt = params().dt;
  for (int round = 0; round < 100; ++round) {
    // Offered load: 2x the allocation, spread across the round.
    for (int i = 0; i < 40; ++i) {
      const Time t = now + (dt / 40) * i;
      const auto d = lbf.admit(FlowGroup::kTop, 2000, t);
      if (d.queue != Queue::kDrop) admitted += 2000;
    }
    now += dt;
    lbf.rotate(now);
    lbf.set_future_rates(top_rate, kCapacityBps * 0.7);
  }
  const double expected = top_rate * (dt.seconds() * 100);
  EXPECT_NEAR(admitted / expected, 1.0, 0.1);
}

}  // namespace
}  // namespace cebinae
