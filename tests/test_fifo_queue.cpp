#include "queueing/fifo_queue.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

Packet pkt(std::uint32_t size, std::uint64_t seq = 0) {
  Packet p;
  p.size_bytes = size;
  p.seq = seq;
  return p;
}

TEST(FifoQueue, FifoOrder) {
  FifoQueue q(FifoQueue::unlimited());
  q.enqueue(pkt(100, 1));
  q.enqueue(pkt(100, 2));
  q.enqueue(pkt(100, 3));
  EXPECT_EQ(q.dequeue()->seq, 1u);
  EXPECT_EQ(q.dequeue()->seq, 2u);
  EXPECT_EQ(q.dequeue()->seq, 3u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(FifoQueue, ByteLimitDropsTail) {
  FifoQueue q(250);
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_FALSE(q.enqueue(pkt(100)));  // 300 > 250
  EXPECT_TRUE(q.enqueue(pkt(50)));    // exactly fills
  EXPECT_EQ(q.byte_count(), 250u);
  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.stats().dropped_bytes, 100u);
}

TEST(FifoQueue, PacketLimit) {
  FifoQueue q(FifoQueue::unlimited(), 2);
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_FALSE(q.enqueue(pkt(1)));
  EXPECT_EQ(q.packet_count(), 2u);
}

TEST(FifoQueue, CountsTrackDequeues) {
  FifoQueue q(1000);
  q.enqueue(pkt(400));
  q.enqueue(pkt(300));
  EXPECT_EQ(q.byte_count(), 700u);
  q.dequeue();
  EXPECT_EQ(q.byte_count(), 300u);
  EXPECT_EQ(q.packet_count(), 1u);
  EXPECT_EQ(q.stats().dequeued_bytes, 400u);
  EXPECT_EQ(q.stats().dequeued_packets, 1u);
}

TEST(FifoQueue, MtuLimitHelper) {
  FifoQueue q = FifoQueue::with_mtu_limit(2);
  EXPECT_TRUE(q.enqueue(pkt(kMtuBytes)));
  EXPECT_TRUE(q.enqueue(pkt(kMtuBytes)));
  EXPECT_FALSE(q.enqueue(pkt(1)));
}

TEST(FifoQueue, DrainAfterOverflowAdmitsAgain) {
  FifoQueue q(100);
  EXPECT_TRUE(q.enqueue(pkt(100)));
  EXPECT_FALSE(q.enqueue(pkt(100)));
  q.dequeue();
  EXPECT_TRUE(q.enqueue(pkt(100)));
}

}  // namespace
}  // namespace cebinae
