#include "tcp/cubic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cc_test_util.hpp"

namespace cebinae {
namespace {

constexpr std::uint32_t kMss = kMssBytes;

// Drive the window to roughly `segments` via slow start + a loss.
void settle_at(Cubic& cc, double segments) {
  while (cc.cwnd_bytes() < static_cast<std::uint64_t>(2 * segments / 0.7) * kMss) {
    cc.on_ack(make_ack(Seconds(1), 2 * kMss, Milliseconds(100)));
  }
  // Loss brings cwnd to 0.7x and enters congestion avoidance.
  while (cc.cwnd_bytes() > static_cast<std::uint64_t>(segments) * kMss) {
    cc.on_loss(Seconds(2), cc.cwnd_bytes());
  }
}

TEST(Cubic, SlowStartLikeReno) {
  Cubic cc(kMss);
  EXPECT_TRUE(cc.in_slow_start());
  const std::uint64_t before = cc.cwnd_bytes();
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  EXPECT_EQ(cc.cwnd_bytes(), 2 * before);
}

TEST(Cubic, LossReducesByBeta) {
  Cubic cc(kMss);
  feed_round(cc, Seconds(1), Milliseconds(100), kMss);
  const std::uint64_t before = cc.cwnd_bytes();
  cc.on_loss(Seconds(2), before);
  EXPECT_NEAR(static_cast<double>(cc.cwnd_bytes()), 0.7 * static_cast<double>(before),
              static_cast<double>(kMss));
  EXPECT_EQ(cc.w_max_segments(), static_cast<double>(before) / kMss);
}

TEST(Cubic, KMatchesAnalyticFormula) {
  Cubic cc(kMss);
  settle_at(cc, 70.0);
  const double w_max = cc.w_max_segments();
  const double cwnd_seg = static_cast<double>(cc.cwnd_bytes()) / kMss;
  // First CA ack sets the epoch and K = cbrt((w_max - cwnd)/C).
  cc.on_ack(make_ack(Seconds(10), kMss, Milliseconds(100)));
  EXPECT_NEAR(cc.k_seconds(), std::cbrt((w_max - cwnd_seg) / 0.4), 0.2);
}

TEST(Cubic, ConcaveGrowthApproachesWmax) {
  Cubic cc(kMss);
  settle_at(cc, 70.0);
  const double w_max = cc.w_max_segments();

  Time now = Seconds(10);
  const Time rtt = Milliseconds(100);
  // Run CA for well past K seconds of simulated ACK time.
  for (int round = 0; round < 80; ++round) now = feed_round(cc, now, rtt, kMss);

  const double cwnd_seg = static_cast<double>(cc.cwnd_bytes()) / kMss;
  EXPECT_GT(cwnd_seg, w_max * 0.9);
}

TEST(Cubic, GrowthIsSlowNearWmaxFastBeyond) {
  Cubic cc(kMss);
  settle_at(cc, 100.0);
  Time now = Seconds(10);
  const Time rtt = Milliseconds(50);

  // Phase 1: concave region (just after loss) — growth decelerates.
  const std::uint64_t w0 = cc.cwnd_bytes();
  now = feed_round(cc, now, rtt, kMss);
  const std::uint64_t w1 = cc.cwnd_bytes();

  // Let it plateau near w_max.
  for (int i = 0; i < 200; ++i) now = feed_round(cc, now, rtt, kMss);
  const std::uint64_t w_plateau_before = cc.cwnd_bytes();
  now = feed_round(cc, now, rtt, kMss);
  const std::uint64_t w_plateau_after = cc.cwnd_bytes();

  const std::uint64_t early_growth = w1 - w0;
  const std::uint64_t plateau_growth = w_plateau_after - w_plateau_before;
  // Near the inflection point growth is much slower than right after loss —
  // unless we've already entered the convex region; either way the plateau
  // phase must have happened (window passed w_max).
  const double w_max = cc.w_max_segments();
  EXPECT_GT(static_cast<double>(cc.cwnd_bytes()) / kMss, w_max * 0.95);
  (void)early_growth;
  (void)plateau_growth;
}

TEST(Cubic, FastConvergenceLowersWmax) {
  Cubic cc(kMss);
  settle_at(cc, 100.0);
  const double w_max_1 = cc.w_max_segments();
  // Second loss while cwnd < w_max: fast convergence sets
  // w_max = cwnd*(2-beta)/2 < cwnd-at-loss.
  const double cwnd_seg = static_cast<double>(cc.cwnd_bytes()) / kMss;
  ASSERT_LT(cwnd_seg, w_max_1);
  cc.on_loss(Seconds(20), cc.cwnd_bytes());
  EXPECT_NEAR(cc.w_max_segments(), cwnd_seg * (2.0 - 0.7) / 2.0, 0.01 * cwnd_seg);
  EXPECT_LT(cc.w_max_segments(), w_max_1);
}

TEST(Cubic, NeverBelowTwoSegments) {
  Cubic cc(kMss);
  for (int i = 0; i < 30; ++i) cc.on_loss(Seconds(i + 1), cc.cwnd_bytes());
  EXPECT_GE(cc.cwnd_bytes(), 2ull * kMss);
}

TEST(Cubic, TcpFriendlyRegionDominatesAtSmallWindows) {
  // At small windows and large RTT, the Reno estimate grows faster than the
  // cubic curve; Cubic must at least keep Reno-rate growth.
  Cubic cc(kMss);
  cc.on_loss(Seconds(1), cc.cwnd_bytes());  // 10 -> 7 segments, CA mode
  const std::uint64_t before = cc.cwnd_bytes();
  Time now = Seconds(2);
  for (int i = 0; i < 10; ++i) now = feed_round(cc, now, Milliseconds(100), kMss);
  // Reno with beta=0.7 grows ~3(1-b)/(1+b) ~ 0.53 segments/RTT.
  const double growth_seg = static_cast<double>(cc.cwnd_bytes() - before) / kMss;
  EXPECT_GT(growth_seg, 3.0);
}

}  // namespace
}  // namespace cebinae
