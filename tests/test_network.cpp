#include "net/network.hpp"

#include <gtest/gtest.h>

#include "queueing/fifo_queue.hpp"

namespace cebinae {
namespace {

TEST(Network, NodeIdsAreSequential) {
  Network net;
  EXPECT_EQ(net.add_node().id(), 0u);
  EXPECT_EQ(net.add_node().id(), 1u);
  EXPECT_EQ(net.add_node().id(), 2u);
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_EQ(net.node(1).id(), 1u);
}

TEST(Network, LinkWiresPeersBothWays) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  auto devs = net.link(a, b, 1'000'000, Milliseconds(1), nullptr, nullptr);
  EXPECT_EQ(&devs.ab.owner(), &a);
  EXPECT_EQ(&devs.ba.owner(), &b);
  EXPECT_EQ(&devs.ab.peer_node(), &b);
  EXPECT_EQ(&devs.ba.peer_node(), &a);
  EXPECT_EQ(devs.ab.rate_bps(), 1'000'000u);
  EXPECT_EQ(devs.ab.prop_delay(), Milliseconds(1));
}

TEST(Network, NullQdiscDefaultsToUnlimitedFifo) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  auto devs = net.link(a, b, 1'000'000, Milliseconds(1), nullptr, nullptr);
  // Enqueue far beyond any reasonable limit; nothing may drop.
  Packet p;
  p.size_bytes = kMtuBytes;
  for (int i = 0; i < 10'000; ++i) devs.ab.qdisc().enqueue(p);
  EXPECT_EQ(devs.ab.qdisc().stats().dropped_packets, 0u);
}

TEST(Network, CustomQdiscIsInstalledOnForwardDirection) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  auto devs = net.link(a, b, 1'000'000, Milliseconds(1),
                       std::make_unique<FifoQueue>(kMtuBytes), nullptr);
  Packet p;
  p.size_bytes = kMtuBytes;
  EXPECT_TRUE(devs.ab.qdisc().enqueue(p));
  EXPECT_FALSE(devs.ab.qdisc().enqueue(p));  // limited
  EXPECT_TRUE(devs.ba.qdisc().enqueue(p));   // reverse stays unlimited
  EXPECT_TRUE(devs.ba.qdisc().enqueue(p));
}

TEST(Network, RngSeedControlsStreams) {
  Network a(42);
  Network b(42);
  Network c(43);
  const double va = a.rng().uniform(0, 1);
  const double vb = b.rng().uniform(0, 1);
  const double vc = c.rng().uniform(0, 1);
  EXPECT_DOUBLE_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(Network, BuildRoutesIsIdempotent) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  Node& c = net.add_node();
  net.link(a, b, 1'000'000, Milliseconds(1), nullptr, nullptr);
  net.link(b, c, 1'000'000, Milliseconds(1), nullptr, nullptr);
  net.build_routes();
  Device* first = a.route_to(c.id());
  net.build_routes();
  EXPECT_EQ(a.route_to(c.id()), first);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(&first->peer_node(), &b);
}

TEST(Network, SchedulerIsShared) {
  Network net;
  bool fired = false;
  net.scheduler().schedule(Milliseconds(1), [&] { fired = true; });
  net.scheduler().run();
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace cebinae
