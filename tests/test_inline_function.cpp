#include "sim/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace cebinae {
namespace {

using Fn64 = InlineFunction<64>;

// Tracks construction/destruction so tests can pin down object lifetimes
// across inline storage, heap fallback, and relocation.
struct LifeCounter {
  static int live;
  static int destroyed;
  static void reset() { live = 0, destroyed = 0; }

  LifeCounter() { ++live; }
  LifeCounter(const LifeCounter&) { ++live; }
  LifeCounter(LifeCounter&&) noexcept { ++live; }
  ~LifeCounter() { --live, ++destroyed; }
};
int LifeCounter::live = 0;
int LifeCounter::destroyed = 0;

TEST(InlineFunction, SmallCaptureStoresInline) {
  int x = 0;
  auto small = [&x] { ++x; };
  static_assert(Fn64::stores_inline<decltype(small)>());
  Fn64 f = small;
  f();
  f();
  EXPECT_EQ(x, 2);
}

TEST(InlineFunction, CaptureAtExactCapacityStoresInline) {
  std::array<std::uint64_t, 8> payload{};  // exactly 64 bytes
  payload[7] = 7;
  auto fits = [payload] { (void)payload; };
  static_assert(sizeof(fits) == 64);
  static_assert(Fn64::stores_inline<decltype(fits)>());
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndStillRuns) {
  std::array<std::uint64_t, 9> payload{};  // 72 bytes > 64
  payload[8] = 99;
  std::uint64_t seen = 0;
  auto big = [payload, &seen] { seen = payload[8]; };
  static_assert(!Fn64::stores_inline<decltype(big)>());
  Fn64 f = big;
  f();
  EXPECT_EQ(seen, 99u);
}

TEST(InlineFunction, DefaultConstructedIsEmpty) {
  Fn64 f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveTransfersOwnership) {
  int calls = 0;
  Fn64 a = [&calls] { ++calls; };
  Fn64 b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget) {
  LifeCounter::reset();
  {
    Fn64 a = [c = LifeCounter{}] { (void)c; };
    Fn64 b = [c = LifeCounter{}] { (void)c; };
    b = std::move(a);  // b's original callable must be destroyed here
    EXPECT_EQ(LifeCounter::live, 1);
  }
  EXPECT_EQ(LifeCounter::live, 0);
}

TEST(InlineFunction, DestructorRunsCaptureDestructorsExactlyOnce) {
  LifeCounter::reset();
  {
    Fn64 f = [c = LifeCounter{}] { (void)c; };
    Fn64 g = std::move(f);  // relocation must not double-destroy
    (void)g;
  }
  EXPECT_EQ(LifeCounter::live, 0);
  // Temporaries during capture/relocation may add to the destroyed tally;
  // what matters is that nothing is left alive and nothing leaked.
}

TEST(InlineFunction, HeapFallbackDestroysCapture) {
  LifeCounter::reset();
  {
    Fn64 f;
    {
      std::array<std::uint64_t, 16> pad{};
      auto big = [pad, c = LifeCounter{}] { (void)pad, (void)c; };
      static_assert(!Fn64::stores_inline<decltype(big)>());
      f = std::move(big);
    }
    Fn64 g = std::move(f);  // heap fallback relocates by pointer swap
    (void)g;
    EXPECT_EQ(LifeCounter::live, 1);
  }
  EXPECT_EQ(LifeCounter::live, 0);
}

TEST(InlineFunction, ResetReleasesCapture) {
  auto owned = std::make_shared<int>(5);
  std::weak_ptr<int> watch = owned;
  Fn64 f = [owned] { (void)owned; };
  owned.reset();
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InlineFunction, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(11);
  int seen = 0;
  Fn64 f = [p = std::move(p), &seen] { seen = *p; };
  f();
  EXPECT_EQ(seen, 11);
}

}  // namespace
}  // namespace cebinae
