#include "tcp/windowed_filter.hpp"

#include <gtest/gtest.h>

#include "sim/time.hpp"

namespace cebinae {
namespace {

using MaxFilter = WindowedFilter<double, std::int64_t, MaxCompare>;
using MinFilter = WindowedFilter<double, std::int64_t, MinCompare>;

TEST(WindowedFilter, TracksMaximum) {
  MaxFilter f(10);
  f.update(1.0, 0);
  f.update(5.0, 1);
  f.update(3.0, 2);
  EXPECT_DOUBLE_EQ(f.get(), 5.0);
}

TEST(WindowedFilter, NewMaximumReplacesImmediately) {
  MaxFilter f(10);
  f.update(5.0, 0);
  f.update(9.0, 1);
  EXPECT_DOUBLE_EQ(f.get(), 9.0);
}

TEST(WindowedFilter, OldMaximumExpires) {
  MaxFilter f(10);
  f.update(100.0, 0);
  for (std::int64_t t = 1; t <= 30; ++t) f.update(2.0, t);
  // The 100.0 sample at t=0 is far outside the 10-wide window.
  EXPECT_DOUBLE_EQ(f.get(), 2.0);
}

TEST(WindowedFilter, DecaysThroughRunnersUp) {
  MaxFilter f(10);
  f.update(100.0, 0);
  f.update(50.0, 2);
  f.update(25.0, 4);
  for (std::int64_t t = 5; t <= 12; ++t) f.update(10.0, t);
  // 100 expired at t=11; the estimate degrades to a runner-up, not to 10.
  const double v = f.get();
  EXPECT_LT(v, 100.0);
  EXPECT_GE(v, 10.0);
}

TEST(WindowedFilter, MinVariantTracksMinimum) {
  MinFilter f(10);
  f.update(10.0, 0);
  f.update(3.0, 1);
  f.update(7.0, 2);
  EXPECT_DOUBLE_EQ(f.get(), 3.0);
}

TEST(WindowedFilter, WorksWithTimeType) {
  WindowedFilter<double, Time, MaxCompare> f(Seconds(10));
  f.update(4.0, Seconds(1));
  f.update(2.0, Seconds(2));
  EXPECT_DOUBLE_EQ(f.get(), 4.0);
  EXPECT_EQ(f.get_time(), Seconds(1));
}

TEST(WindowedFilter, ResetReplacesAll) {
  MaxFilter f(10);
  f.update(100.0, 0);
  f.reset(1.0, 5);
  EXPECT_DOUBLE_EQ(f.get(), 1.0);
}

}  // namespace
}  // namespace cebinae
