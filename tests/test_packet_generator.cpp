#include "control/packet_generator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cebinae {
namespace {

TEST(PacketGenerator, FiresPeriodically) {
  Scheduler sched;
  std::vector<Time> fire_times;
  PacketGenerator gen(sched, Milliseconds(10), [&] { fire_times.push_back(sched.now()); });
  gen.start(Milliseconds(10));
  sched.run_until(Milliseconds(55));
  ASSERT_EQ(fire_times.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(fire_times[i], Milliseconds(10 * (i + 1)));
}

TEST(PacketGenerator, FirstDelayIndependentOfPeriod) {
  Scheduler sched;
  std::vector<Time> fire_times;
  PacketGenerator gen(sched, Milliseconds(10), [&] { fire_times.push_back(sched.now()); });
  gen.start(Milliseconds(3));
  sched.run_until(Milliseconds(25));
  ASSERT_EQ(fire_times.size(), 3u);
  EXPECT_EQ(fire_times[0], Milliseconds(3));
  EXPECT_EQ(fire_times[1], Milliseconds(13));
}

TEST(PacketGenerator, StopCancelsFutureFirings) {
  Scheduler sched;
  int count = 0;
  PacketGenerator gen(sched, Milliseconds(10), [&] { ++count; });
  gen.start(Milliseconds(10));
  sched.schedule(Milliseconds(25), [&] { gen.stop(); });
  sched.run_until(Seconds(1));
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(gen.running());
}

TEST(PacketGenerator, NoDriftAcrossManyPeriods) {
  Scheduler sched;
  Time last;
  std::uint64_t fires = 0;
  PacketGenerator gen(sched, Microseconds(128), [&] {
    last = sched.now();
    ++fires;
  });
  gen.start(Microseconds(128));
  sched.run_until(Seconds(1));
  EXPECT_EQ(fires, gen.fired());
  // Exactly periodic: last firing at fires * period.
  EXPECT_EQ(last.ns(), static_cast<std::int64_t>(fires) * 128'000);
}

TEST(PacketGenerator, StartIsIdempotent) {
  Scheduler sched;
  int count = 0;
  PacketGenerator gen(sched, Milliseconds(10), [&] { ++count; });
  gen.start(Milliseconds(10));
  gen.start(Milliseconds(1));  // ignored; already running
  sched.run_until(Milliseconds(10));
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace cebinae
