// Shared helpers for congestion-control unit tests: drive a CCA with
// synthetic ACK streams without a full socket.
#pragma once

#include "tcp/congestion_control.hpp"

namespace cebinae {

inline AckEvent make_ack(Time now, std::uint64_t acked_bytes, Time rtt,
                         bool round_start = false, std::uint64_t bytes_in_flight = 0) {
  AckEvent ev;
  ev.now = now;
  ev.acked_bytes = acked_bytes;
  ev.rtt = rtt;
  ev.round_start = round_start;
  ev.bytes_in_flight = bytes_in_flight;
  ev.min_rtt = rtt;
  return ev;
}

// Feed one RTT "round" of per-packet ACKs: enough ACKs of `mss` bytes to
// cover the current window, with the first ACK flagged round_start.
inline Time feed_round(CongestionControl& cc, Time now, Time rtt, std::uint32_t mss) {
  const std::uint64_t window = cc.cwnd_bytes();
  const std::uint64_t acks = window / mss;
  const Time spacing = acks > 0 ? rtt / static_cast<std::int64_t>(acks) : rtt;
  Time t = now;
  for (std::uint64_t i = 0; i < acks; ++i) {
    AckEvent ev = make_ack(t, mss, rtt, /*round_start=*/i == 0, cc.cwnd_bytes());
    cc.on_ack(ev);
    t += spacing;
  }
  return now + rtt;
}

}  // namespace cebinae
