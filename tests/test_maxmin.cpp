#include "metrics/maxmin.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace cebinae {
namespace {

TEST(MaxMin, SingleLinkEqualShare) {
  MaxMinProblem p;
  p.link_capacity = {30.0};
  p.flow_links = {{0}, {0}, {0}};
  const auto rates = maxmin_rates(p);
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(MaxMin, Figure2bExample) {
  // The paper's Fig. 2b: l1=20, l2=10, l3=20, l4=20, l5=2.
  // A: l1,l3,l4 ; B: l2,l3(?) — per the figure A,B share l3; B,C share l2;
  // C exits via l5. Max-min: C=2 (l5), B=8 (l2 leftover), A=12 (l3 leftover).
  MaxMinProblem p;
  p.link_capacity = {20, 10, 20, 20, 2};
  p.flow_links = {
      {0, 2, 3},  // A
      {1, 2},     // B
      {1, 4},     // C
  };
  const auto rates = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(rates[2], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
  EXPECT_DOUBLE_EQ(rates[0], 12.0);
}

TEST(MaxMin, ParkingLotFromFig11) {
  // 3 links of 100; 8 long flows traverse all; 2 locals on l0, 8 on l1,
  // 4 on l2. Bottleneck is l1: long flows get 100/16 = 6.25; locals
  // get the leftovers: l0: (100-50)/2 = 25, l2: (100-50)/4 = 12.5.
  MaxMinProblem p;
  p.link_capacity = {100, 100, 100};
  for (int i = 0; i < 8; ++i) p.flow_links.push_back({0, 1, 2});
  for (int i = 0; i < 2; ++i) p.flow_links.push_back({0});
  for (int i = 0; i < 8; ++i) p.flow_links.push_back({1});
  for (int i = 0; i < 4; ++i) p.flow_links.push_back({2});
  const auto rates = maxmin_rates(p);
  for (int i = 0; i < 8; ++i) EXPECT_NEAR(rates[i], 6.25, 1e-9);
  for (int i = 8; i < 10; ++i) EXPECT_NEAR(rates[i], 25.0, 1e-9);
  for (int i = 10; i < 18; ++i) EXPECT_NEAR(rates[i], 6.25, 1e-9);
  for (int i = 18; i < 22; ++i) EXPECT_NEAR(rates[i], 12.5, 1e-9);
}

TEST(MaxMin, DemandCapsFreezeFlows) {
  MaxMinProblem p;
  p.link_capacity = {30.0};
  p.flow_links = {{0}, {0}, {0}};
  p.demand = {4.0, 1e18, 1e18};
  const auto rates = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
  EXPECT_DOUBLE_EQ(rates[1], 13.0);
  EXPECT_DOUBLE_EQ(rates[2], 13.0);
}

TEST(MaxMin, FlowWithoutLinksGetsDemand) {
  MaxMinProblem p;
  p.link_capacity = {10.0};
  p.flow_links = {{0}, {}};
  p.demand = {1e18, 7.0};
  const auto rates = maxmin_rates(p);
  EXPECT_DOUBLE_EQ(rates[0], 10.0);
  EXPECT_DOUBLE_EQ(rates[1], 7.0);
}

TEST(MaxMin, AllocationIsParetoEfficientOnRandomTopologies) {
  // Property: every flow has at least one saturated link (with infinite
  // demands), and no link is over capacity.
  RandomStream rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    MaxMinProblem p;
    const int links = 2 + static_cast<int>(rng.uniform_int(0, 4));
    const int flows = 2 + static_cast<int>(rng.uniform_int(0, 8));
    for (int l = 0; l < links; ++l) p.link_capacity.push_back(rng.uniform(10, 100));
    for (int f = 0; f < flows; ++f) {
      std::vector<std::size_t> path;
      for (int l = 0; l < links; ++l) {
        if (rng.bernoulli(0.5)) path.push_back(static_cast<std::size_t>(l));
      }
      if (path.empty()) path.push_back(0);
      p.flow_links.push_back(std::move(path));
    }
    const auto rates = maxmin_rates(p);

    std::vector<double> used(p.link_capacity.size(), 0.0);
    for (std::size_t f = 0; f < p.flow_links.size(); ++f) {
      for (std::size_t l : p.flow_links[f]) used[l] += rates[f];
    }
    for (std::size_t l = 0; l < used.size(); ++l) {
      EXPECT_LE(used[l], p.link_capacity[l] + 1e-6) << "trial " << trial;
    }
    for (std::size_t f = 0; f < p.flow_links.size(); ++f) {
      bool has_saturated_link = false;
      for (std::size_t l : p.flow_links[f]) {
        if (used[l] >= p.link_capacity[l] - 1e-6) has_saturated_link = true;
      }
      EXPECT_TRUE(has_saturated_link) << "trial " << trial << " flow " << f;
    }
  }
}

TEST(MaxMin, BottleneckDefinitionHolds) {
  // Definition 2: each flow has a saturated link where it is (one of) the
  // largest flows.
  MaxMinProblem p;
  p.link_capacity = {20, 10};
  p.flow_links = {{0}, {0, 1}, {1}};
  const auto rates = maxmin_rates(p);
  // Link 1 splits 5/5 between flows 1,2; flow 0 takes the rest of link 0.
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
  EXPECT_DOUBLE_EQ(rates[2], 5.0);
  EXPECT_DOUBLE_EQ(rates[0], 15.0);
}

}  // namespace
}  // namespace cebinae
