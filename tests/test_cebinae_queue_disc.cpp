#include "core/cebinae_queue_disc.hpp"

#include <gtest/gtest.h>

namespace cebinae {
namespace {

constexpr std::uint64_t kRate = 100'000'000;

CebinaeParams params() {
  CebinaeParams p;
  p.dt = Nanoseconds(1 << 20);
  p.vdt = Nanoseconds(1 << 10);
  return p;
}

Packet pkt(std::uint32_t flow_src, std::uint32_t size = kMtuBytes) {
  Packet p;
  p.flow = FlowId{flow_src, 1000, 5000, 5000};
  p.size_bytes = size;
  p.payload_bytes = size - kHeaderBytes;
  return p;
}

TEST(CebinaeQueueDisc, PassesTrafficWhenUnsaturated) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 100 * kMtuBytes, params());
  EXPECT_TRUE(q.enqueue(pkt(1)));
  auto out = q.dequeue();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->flow.src, 1u);
  EXPECT_EQ(q.byte_count(), 0u);
}

TEST(CebinaeQueueDisc, BufferLimitEnforced) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 3 * kMtuBytes, params());
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_FALSE(q.enqueue(pkt(1)));
  EXPECT_EQ(q.buffer_dropped_packets(), 1u);
}

TEST(CebinaeQueueDisc, HeadQueueHasStrictPriority) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 1000 * kMtuBytes, params());
  // Fill past one round's capacity so later packets land in the tail queue.
  // Round capacity ~13107 bytes = ~8.7 MTU.
  for (int i = 0; i < 12; ++i) EXPECT_TRUE(q.enqueue(pkt(1)));
  EXPECT_GT(q.delayed_packets(), 0u);

  // After a rotation the tail queue becomes the head queue: its packets
  // must now be served first. Before rotation, head-queue packets first.
  int served_before_delay = 0;
  for (int i = 0; i < 8; ++i) {
    auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served_before_delay;
  }
  EXPECT_EQ(served_before_delay, 8);
}

TEST(CebinaeQueueDisc, DequeueFeedsCacheAndPortCounter) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 100 * kMtuBytes, params());
  q.enqueue(pkt(1));
  q.enqueue(pkt(2, 500));
  (void)q.dequeue();
  (void)q.dequeue();
  EXPECT_EQ(q.port().tx_bytes(), kMtuBytes + 500u);
  EXPECT_EQ(q.cache().bytes_for(FlowId{1, 1000, 5000, 5000}),
            std::optional<std::uint64_t>(kMtuBytes));
  EXPECT_EQ(q.cache().bytes_for(FlowId{2, 1000, 5000, 5000}),
            std::optional<std::uint64_t>(500));
}

TEST(CebinaeQueueDisc, DroppedPacketsNotCounted) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 2 * kMtuBytes, params());
  q.enqueue(pkt(1));
  q.enqueue(pkt(1));
  q.enqueue(pkt(1));  // buffer drop
  while (q.dequeue().has_value()) {
  }
  // Egress counters reflect transmitted traffic only.
  EXPECT_EQ(q.port().tx_bytes(), 2ull * kMtuBytes);
  EXPECT_EQ(q.cache().bytes_for(FlowId{1, 1000, 5000, 5000}),
            std::optional<std::uint64_t>(2ull * kMtuBytes));
}

TEST(CebinaeQueueDisc, TopMembershipRoutesToGroups) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 1000 * kMtuBytes, params());
  std::unordered_set<FlowId, FlowIdHash> top;
  top.insert(FlowId{1, 1000, 5000, 5000});
  q.set_top_flows(std::move(top));
  // 20% of capacity for the top group: ~2621 bytes per round.
  q.lbf().enter_saturated(kRate / 8.0 * 0.2, kRate / 8.0 * 0.8);

  // Flow 1 (top) is throttled hard; flow 2 (bottom) passes freely.
  int flow1_admitted = 0;
  int flow2_admitted = 0;
  for (int i = 0; i < 6; ++i) {
    if (q.enqueue(pkt(1))) ++flow1_admitted;
    if (q.enqueue(pkt(2))) ++flow2_admitted;
  }
  EXPECT_LT(flow1_admitted, 6);
  EXPECT_EQ(flow2_admitted, 6);
  EXPECT_GT(q.lbf_dropped_packets(), 0u);
}

TEST(CebinaeQueueDisc, EcnMarkingOnDelayedEctPackets) {
  Scheduler sched;
  CebinaeParams p = params();
  p.mark_ecn = true;
  CebinaeQueueDisc q(sched, kRate, 1000 * kMtuBytes, p);
  // Marking only applies in the saturated phase (Fig. 5 line 26).
  q.lbf().enter_saturated(kRate / 8.0 * 0.5, kRate / 8.0 * 0.5);
  // Push past one round's group allocation with ECT packets.
  bool saw_mark = false;
  for (int i = 0; i < 20; ++i) {
    Packet pk = pkt(1);
    pk.ect = true;
    q.enqueue(std::move(pk));
  }
  while (auto out = q.dequeue()) {
    if (out->ce) saw_mark = true;
  }
  EXPECT_TRUE(saw_mark);
  EXPECT_GT(q.stats().ecn_marked_packets, 0u);
}

TEST(CebinaeQueueDisc, RotateDelegatesToLbf) {
  Scheduler sched;
  CebinaeQueueDisc q(sched, kRate, 100 * kMtuBytes, params());
  EXPECT_EQ(q.lbf().head_index(), 0);
  sched.schedule(params().dt, [&] { q.rotate(); });
  sched.run();
  EXPECT_EQ(q.lbf().head_index(), 1);
}

}  // namespace
}  // namespace cebinae
