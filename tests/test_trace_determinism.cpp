// Telemetry determinism contract: the trace sidecar produced by a traced
// batch is byte-identical for any --jobs count and across same-seed reruns,
// and resumable sweeps complete a truncated results file without disturbing
// the rows already on disk.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace cebinae::exp {
namespace {

std::vector<ExperimentJob> traced_batch() {
  ScenarioConfig base;
  base.bottleneck_bps = 20'000'000;
  base.buffer_bytes = 64ull * kMtuBytes;
  base.duration = Milliseconds(400);
  base.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(10));

  std::vector<ExperimentJob> jobs;
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    ExperimentJob job;
    job.config = base;
    job.config.qdisc = qdisc;
    job.label = std::string(to_string(qdisc));
    job.trace_period = Milliseconds(100);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string run_traced(int workers, const std::string& path,
                       std::vector<RunRecord>* records_out = nullptr) {
  {
    JsonlWriter trace_writer(path);
    ExperimentRunner::Options opts;
    opts.jobs = workers;
    opts.base_seed = 11;
    opts.trace_writer = &trace_writer;
    std::vector<RunRecord> records = ExperimentRunner(opts).run(traced_batch());
    if (records_out != nullptr) *records_out = std::move(records);
  }
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(TraceDeterminism, SidecarIsByteIdenticalAcrossWorkerCountsAndReruns) {
  const std::string p1 = ::testing::TempDir() + "cebinae_trace_j1.jsonl";
  const std::string p4 = ::testing::TempDir() + "cebinae_trace_j4.jsonl";
  const std::string p1b = ::testing::TempDir() + "cebinae_trace_j1b.jsonl";
  const std::string serial = run_traced(1, p1);
  const std::string parallel = run_traced(4, p4);
  const std::string rerun = run_traced(1, p1b);
  ASSERT_FALSE(serial.empty());
  // Trace rows carry no wall-clock field, so whole files compare equal.
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial, rerun);
  std::remove(p1.c_str());
  std::remove(p4.c_str());
  std::remove(p1b.c_str());
}

TEST(TraceDeterminism, RecordsCarrySampledRowsWithTheDocumentedSchema) {
  const std::string path = ::testing::TempDir() + "cebinae_trace_schema.jsonl";
  std::vector<RunRecord> records;
  (void)run_traced(2, path, &records);
  std::remove(path.c_str());

  ASSERT_EQ(records.size(), 2u);
  for (const RunRecord& rec : records) {
    // 400 ms at a 100 ms period: ticks at 0.1..0.4 (run_until is inclusive).
    ASSERT_EQ(rec.trace.size(), 4u);
    EXPECT_DOUBLE_EQ(rec.trace[0].t_s(), 0.1);
    EXPECT_DOUBLE_EQ(rec.trace[3].t_s(), 0.4);
    for (const obs::TraceRow& row : rec.trace) {
      EXPECT_GE(row.scalar("jfi"), 0.0);
      ASSERT_NE(row.array("tput_Bps"), nullptr);
      EXPECT_EQ(row.array("tput_Bps")->size(), 2u);  // one slot per flow
      ASSERT_NE(row.array("q_bytes"), nullptr);
      ASSERT_NE(row.array("cwnd_bytes"), nullptr);
      ASSERT_NE(row.array("srtt_s"), nullptr);
      // Component-registered aggregates flow through sample_registry.
      EXPECT_GT(row.scalar("net.tx_bytes"), 0.0);
    }
  }
  // Cebinae-only arrays appear only on the Cebinae job's rows.
  EXPECT_EQ(records[0].trace[0].array("ceb_rotations"), nullptr);
  ASSERT_NE(records[1].trace[0].array("ceb_rotations"), nullptr);
  ASSERT_NE(records[1].trace[0].array("top_flow"), nullptr);
  EXPECT_EQ(records[1].trace[0].array("top_flow")->size(), 2u);
}

TEST(TraceDeterminism, ProbeSetupHookAddsCustomColumns) {
  std::vector<ExperimentJob> jobs = traced_batch();
  for (ExperimentJob& job : jobs) {
    job.probe_setup = [](Scenario& scenario, obs::Probe& probe) {
      probe.add_scalar("events", [&scenario](Time) {
        return static_cast<double>(scenario.network().scheduler().executed_events());
      });
    };
  }
  ExperimentRunner::Options opts;
  opts.jobs = 2;
  opts.base_seed = 11;
  const std::vector<RunRecord> records = ExperimentRunner(opts).run(jobs);
  for (const RunRecord& rec : records) {
    ASSERT_EQ(rec.trace.size(), 4u);
    EXPECT_GT(rec.trace[0].scalar("events"), 0.0);
  }
}

// --- resumable sweeps -----------------------------------------------------

TEST(CompletedJobIndices, ParsesCompleteRowsOnly) {
  std::istringstream in(
      "{\"label\":\"a\",\"job_index\":0,\"jfi\":1}\n"
      "not json at all\n"
      "{\"label\":\"b\",\"job_index\":3,\"jfi\":0.5}\n"
      "{\"label\":\"c\",\"job_index\":5,\"jfi\":0.2");  // killed mid-write
  const auto done = completed_job_indices(in);
  EXPECT_EQ(done.size(), 2u);
  EXPECT_TRUE(done.count(0));
  EXPECT_TRUE(done.count(3));
  EXPECT_FALSE(done.count(5));  // no closing brace -> job reruns
}

TEST(CompletedJobIndices, MissingFileYieldsEmptySet) {
  EXPECT_TRUE(completed_job_indices_file("/nonexistent/cebinae.jsonl").empty());
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Strips the (intentionally non-deterministic) wall-clock field.
std::string strip_wall(const std::string& line) {
  const std::size_t pos = line.find(",\"wall_s\":");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

TEST(ResumableSweep, SkipsCompletedJobsAndCompletesTheFile) {
  const std::string full_path = ::testing::TempDir() + "cebinae_resume_full.jsonl";
  const std::string resumed_path = ::testing::TempDir() + "cebinae_resume_part.jsonl";

  const std::vector<ExperimentJob> jobs = traced_batch();
  auto run = [&jobs](JsonlWriter& writer, std::unordered_set<std::uint64_t> skip) {
    ExperimentRunner::Options opts;
    opts.jobs = 2;
    opts.base_seed = 11;
    opts.writer = &writer;
    opts.skip_completed = std::move(skip);
    return ExperimentRunner(opts).run(jobs);
  };

  {
    JsonlWriter writer(full_path);
    (void)run(writer, {});
  }
  const std::vector<std::string> full = read_lines(full_path);
  ASSERT_EQ(full.size(), 2u);

  // Simulate a killed sweep: only job 0's row made it to disk.
  {
    std::ofstream out(resumed_path, std::ios::trunc);
    out << full[0] << '\n';
  }
  const auto done = completed_job_indices_file(resumed_path);
  ASSERT_EQ(done.size(), 1u);
  ASSERT_TRUE(done.count(0));

  std::vector<RunRecord> records;
  {
    JsonlWriter writer(resumed_path, JsonlWriter::Mode::kAppend);
    records = run(writer, done);
  }
  // Job 0 was resumed over: not re-run, seed still derived for bookkeeping.
  EXPECT_TRUE(records[0].skipped);
  EXPECT_EQ(records[0].seed, derive_seed(11, 0));
  EXPECT_TRUE(records[0].trace.empty());
  EXPECT_FALSE(records[1].skipped);
  EXPECT_EQ(records[1].trace.size(), 4u);

  // The resumed file holds the original job-0 row plus a fresh job-1 row
  // equal (modulo wall clock) to the full run's.
  const std::vector<std::string> resumed = read_lines(resumed_path);
  ASSERT_EQ(resumed.size(), 2u);
  EXPECT_EQ(resumed[0], full[0]);
  EXPECT_EQ(strip_wall(resumed[1]), strip_wall(full[1]));

  std::remove(full_path.c_str());
  std::remove(resumed_path.c_str());
}

}  // namespace
}  // namespace cebinae::exp
