#include <gtest/gtest.h>

#include "net/network.hpp"
#include "workload/udp_app.hpp"

namespace cebinae {
namespace {

Packet udp_packet(NodeId src, NodeId dst, std::uint16_t dst_port) {
  Packet p;
  p.flow = FlowId{src, dst, 1, dst_port};
  p.kind = Packet::Kind::kUdp;
  p.size_bytes = 500;
  p.payload_bytes = 500 - kHeaderBytes;
  return p;
}

TEST(Routing, ForwardsAcrossAChain) {
  Network net;
  // h0 - s1 - s2 - h3
  Node& h0 = net.add_node();
  Node& s1 = net.add_node();
  Node& s2 = net.add_node();
  Node& h3 = net.add_node();
  net.link(h0, s1, 1'000'000'000, Microseconds(10), nullptr, nullptr);
  net.link(s1, s2, 1'000'000'000, Microseconds(10), nullptr, nullptr);
  net.link(s2, h3, 1'000'000'000, Microseconds(10), nullptr, nullptr);
  net.build_routes();

  UdpSink sink(h3, 9);
  h0.send(udp_packet(h0.id(), h3.id(), 9));
  net.scheduler().run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(h3.delivered_packets(), 1u);
}

TEST(Routing, PicksShortestPath) {
  Network net;
  // Square with a diagonal shortcut: a-b-d is 2 hops, a-c-e-d is 3.
  Node& a = net.add_node();
  Node& b = net.add_node();
  Node& c = net.add_node();
  Node& e = net.add_node();
  Node& d = net.add_node();
  auto ab = net.link(a, b, 1'000'000, Microseconds(1), nullptr, nullptr);
  auto ac = net.link(a, c, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.link(c, e, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.link(e, d, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.link(b, d, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.build_routes();

  UdpSink sink(d, 9);
  a.send(udp_packet(a.id(), d.id(), 9));
  net.scheduler().run();
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_GT(ab.ab.tx_packets(), 0u);
  EXPECT_EQ(ac.ab.tx_packets(), 0u);
}

TEST(Routing, UnroutableDestinationCountsDrop) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  net.link(a, b, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.build_routes();
  a.send(udp_packet(a.id(), 99, 9));
  net.scheduler().run();
  EXPECT_EQ(a.routing_drops(), 1u);
}

TEST(Routing, UnboundPortIsDiscardedAtDestination) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  net.link(a, b, 1'000'000, Microseconds(1), nullptr, nullptr);
  net.build_routes();
  a.send(udp_packet(a.id(), b.id(), 12345));
  net.scheduler().run();
  EXPECT_EQ(b.delivered_packets(), 0u);
}

TEST(Routing, BindRejectsDuplicatePort) {
  Network net;
  Node& a = net.add_node();
  UdpSink s1(a, 9);
  EXPECT_DEATH({ UdpSink s2(a, 9); }, "");
}

TEST(Routing, RebindAfterUnbind) {
  Network net;
  Node& a = net.add_node();
  { UdpSink s1(a, 9); }
  UdpSink s2(a, 9);  // destructor unbound the port; rebinding must work
  SUCCEED();
}

}  // namespace
}  // namespace cebinae
