// Property-style sweeps over the leaky-bucket filter: rate conservation,
// ordering guarantees, and admission monotonicity across capacities, rate
// splits, and offered loads.
#include <gtest/gtest.h>

#include "core/lbf.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"

namespace cebinae {
namespace {

CebinaeParams params() {
  CebinaeParams p;
  p.dt = Nanoseconds(1 << 20);
  p.vdt = Nanoseconds(1 << 10);
  return p;
}

using Queue = LeakyBucketFilter::Queue;

class LbfRateSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(LbfRateSweep, AdmittedTopBytesTrackAllocatedRate) {
  const auto [capacity_bps, top_share] = GetParam();
  const double capacity_Bps = static_cast<double>(capacity_bps) / 8.0;
  LeakyBucketFilter lbf(params(), capacity_bps);
  lbf.enter_saturated(capacity_Bps * top_share, capacity_Bps * (1 - top_share));

  const Time dt = params().dt;
  double admitted = 0;
  Time now = Time::zero();
  const int rounds = 60;
  for (int r = 0; r < rounds; ++r) {
    // Offered: 3x the group's allocation, spread over the round.
    const double offered = 3.0 * capacity_Bps * top_share * dt.seconds();
    const int pkts = std::max(4, static_cast<int>(offered / kMtuBytes));
    for (int i = 0; i < pkts; ++i) {
      const Time t = now + (dt / pkts) * i;
      if (lbf.admit(FlowGroup::kTop, kMtuBytes, t).queue != Queue::kDrop) {
        admitted += kMtuBytes;
      }
    }
    now += dt;
    lbf.rotate(now);
    lbf.set_future_rates(capacity_Bps * top_share, capacity_Bps * (1 - top_share));
  }
  const double expected = capacity_Bps * top_share * dt.seconds() * rounds;
  EXPECT_NEAR(admitted / expected, 1.0, 0.25)
      << "capacity=" << capacity_bps << " share=" << top_share;
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndShares, LbfRateSweep,
    ::testing::Combine(::testing::Values(100'000'000ull, 1'000'000'000ull),
                       ::testing::Values(0.1, 0.3, 0.5, 0.8)));

TEST(LbfProperties, GroupsAreIsolated) {
  // Whatever the top group offers, the bottom group's admissions into the
  // head queue are unaffected.
  RandomStream rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    LeakyBucketFilter lbf(params(), 100'000'000);
    const double cap = 12.5e6;
    lbf.enter_saturated(cap * 0.3, cap * 0.7);

    // Random top-group interference.
    const int top_pkts = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < top_pkts; ++i) {
      (void)lbf.admit(FlowGroup::kTop,
                      static_cast<std::uint32_t>(rng.uniform_int(64, kMtuBytes)),
                      Time::zero());
    }

    // Bottom group's head admission must equal its full allocation.
    const double bottom_round = cap * 0.7 * params().dt.seconds();
    int head = 0;
    const int offered = static_cast<int>(bottom_round / 500) + 4;
    for (int i = 0; i < offered; ++i) {
      if (lbf.admit(FlowGroup::kBottom, 500, Time::zero()).queue == Queue::kHead) ++head;
    }
    EXPECT_EQ(head, static_cast<int>(bottom_round / 500)) << "trial " << trial;
  }
}

TEST(LbfProperties, HeadThenTailNeverReorders) {
  // Within one round, a group's packets can only move from head to tail to
  // drop — never back — so FIFO order within the group is preserved.
  LeakyBucketFilter lbf(params(), 100'000'000);
  lbf.enter_saturated(12.5e6 * 0.2, 12.5e6 * 0.8);
  int phase = 0;  // 0=head, 1=tail, 2=drop
  for (int i = 0; i < 40; ++i) {
    const auto d = lbf.admit(FlowGroup::kTop, 500, Time::zero());
    const int now_phase = d.queue == Queue::kHead ? 0 : (d.queue == Queue::kTail ? 1 : 2);
    EXPECT_GE(now_phase, phase) << "packet " << i;
    phase = now_phase;
  }
  EXPECT_EQ(phase, 2);  // offered enough to reach the drop region
}

TEST(LbfProperties, RotationsAreIdempotentOnIdleGroups) {
  LeakyBucketFilter lbf(params(), 100'000'000);
  lbf.enter_saturated(12.5e6 * 0.5, 12.5e6 * 0.5);
  Time now = Time::zero();
  for (int r = 0; r < 10; ++r) {
    now += params().dt;
    lbf.rotate(now);
  }
  EXPECT_DOUBLE_EQ(lbf.group_bytes(FlowGroup::kTop), 0.0);
  EXPECT_DOUBLE_EQ(lbf.group_bytes(FlowGroup::kBottom), 0.0);
  // A fresh packet after long idleness is admitted to the head queue.
  EXPECT_EQ(lbf.admit(FlowGroup::kTop, 500, now).queue, Queue::kHead);
}

TEST(LbfProperties, AdmissionMonotoneInRate) {
  // More allocated rate never admits fewer bytes.
  double prev_admitted = -1;
  for (double share : {0.1, 0.2, 0.4, 0.6, 0.9}) {
    LeakyBucketFilter lbf(params(), 100'000'000);
    lbf.enter_saturated(12.5e6 * share, 12.5e6 * (1 - share));
    double admitted = 0;
    for (int i = 0; i < 60; ++i) {
      if (lbf.admit(FlowGroup::kTop, 1000, Time::zero()).queue != Queue::kDrop) {
        admitted += 1000;
      }
    }
    EXPECT_GE(admitted, prev_admitted) << "share " << share;
    prev_admitted = admitted;
  }
}

TEST(LbfProperties, TotalAdmissionNeverExceedsTwoRoundsOfCapacity) {
  // Safety property behind Eq. 2: in any single round, at most 2 rounds'
  // worth of capacity can be admitted across both groups (head + tail).
  RandomStream rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    LeakyBucketFilter lbf(params(), 100'000'000);
    const double cap = 12.5e6;
    const double share = rng.uniform(0.05, 0.95);
    lbf.enter_saturated(cap * share, cap * (1 - share));
    double admitted = 0;
    for (int i = 0; i < 600; ++i) {
      const FlowGroup g = rng.bernoulli(0.5) ? FlowGroup::kTop : FlowGroup::kBottom;
      const std::uint32_t size = static_cast<std::uint32_t>(rng.uniform_int(64, kMtuBytes));
      if (lbf.admit(g, size, Time::zero()).queue != Queue::kDrop) admitted += size;
    }
    EXPECT_LE(admitted, 2.0 * cap * params().dt.seconds() + 2.0 * kMtuBytes)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace cebinae
