#include "net/packet_pool.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace cebinae {
namespace {

// A packet with every mutable field dirtied, to prove scrub-on-release.
Packet dirty_packet() {
  Packet p;
  p.flow = FlowId{1, 2, 300, 400};
  p.kind = Packet::Kind::kTcpAck;
  p.size_bytes = 1500;
  p.payload_bytes = 1448;
  p.seq = 123456;
  p.ack = 654321;
  p.sack[0] = Packet::SackBlock{10, 20};
  p.sack_count = 1;
  p.ts_sent = Seconds(7);
  p.ts_echo = Seconds(6);
  p.ect = true;
  p.ce = true;
  p.ece = true;
  return p;
}

void expect_pristine(const Packet& p) {
  const Packet fresh;
  EXPECT_EQ(p.flow, fresh.flow);
  EXPECT_EQ(p.kind, fresh.kind);
  EXPECT_EQ(p.size_bytes, 0u);
  EXPECT_EQ(p.payload_bytes, 0u);
  EXPECT_EQ(p.seq, 0u);
  EXPECT_EQ(p.ack, 0u);
  EXPECT_EQ(p.sack_count, 0u);
  EXPECT_EQ(p.sack[0].begin, 0u);
  EXPECT_EQ(p.sack[0].end, 0u);
  EXPECT_EQ(p.ts_sent, Time::zero());
  EXPECT_EQ(p.ts_echo, Time::zero());
  EXPECT_FALSE(p.ect);
  EXPECT_FALSE(p.ce);
  EXPECT_FALSE(p.ece);
}

TEST(PacketPool, ReleaseScrubsAllFields) {
  PacketPool pool;
  Packet* p = pool.acquire();
  *p = dirty_packet();
  pool.release(p);
  // The same slot comes back on the next acquire — and must be pristine, or
  // stale ECN/timestamp state would bleed into an unrelated future packet.
  Packet* q = pool.acquire();
  EXPECT_EQ(q, p);
  expect_pristine(*q);
  pool.release(q);
}

TEST(PacketPool, ReusesSlotsInsteadOfGrowing) {
  PacketPool pool;
  Packet* p = pool.acquire();
  pool.release(p);
  for (int i = 0; i < 100; ++i) {
    Packet* q = pool.acquire();
    EXPECT_EQ(q, p);
    pool.release(q);
  }
  EXPECT_EQ(pool.high_water(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(PacketPool, HighWaterTracksPeakConcurrency) {
  PacketPool pool;
  std::vector<Packet*> held;
  for (int i = 0; i < 8; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.high_water(), 8u);
  EXPECT_EQ(pool.idle(), 0u);
  for (Packet* p : held) pool.release(p);
  EXPECT_EQ(pool.high_water(), 8u);
  EXPECT_EQ(pool.idle(), 8u);
}

TEST(PacketPool, AddressesStableWhileGrowing) {
  PacketPool pool;
  Packet* first = pool.acquire();
  first->seq = 77;
  for (int i = 0; i < 1000; ++i) (void)pool.acquire();  // force deque growth
  EXPECT_EQ(first->seq, 77u);  // handle survived the growth
}

TEST(PooledPacket, ReturnsToPoolScrubbed) {
  PacketPool pool;
  {
    PooledPacket h(&pool, dirty_packet());
    EXPECT_TRUE(static_cast<bool>(h));
    EXPECT_EQ(h->seq, 123456u);
  }
  EXPECT_EQ(pool.idle(), 1u);
  expect_pristine(*pool.acquire());
}

TEST(PooledPacket, MoveTransfersOwnership) {
  PacketPool pool;
  PooledPacket a(&pool, dirty_packet());
  PooledPacket b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  EXPECT_EQ((*b).ack, 654321u);
  EXPECT_EQ(pool.idle(), 0u);  // still checked out exactly once
}

TEST(PooledPacket, NullPoolFallsBackToHeap) {
  // Devices built outside a Network run with no pool; the handle degrades to
  // plain heap ownership (ASan would flag a leak or double-free here).
  PooledPacket h(nullptr, dirty_packet());
  ASSERT_TRUE(static_cast<bool>(h));
  EXPECT_EQ(h->seq, 123456u);
  PooledPacket moved = std::move(h);
  EXPECT_EQ(moved->seq, 123456u);
}

TEST(PooledPacket, MoveAssignReleasesPreviousPacket) {
  PacketPool pool;
  PooledPacket a(&pool, dirty_packet());
  Packet clean;
  clean.seq = 1;
  PooledPacket b(&pool, clean);
  EXPECT_EQ(pool.high_water(), 2u);
  a = std::move(b);  // a's original packet goes back to the pool
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(a->seq, 1u);
}

}  // namespace
}  // namespace cebinae
