#include "control/shadow_register.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace cebinae {
namespace {

TEST(ShadowRegister, LiveWritesVisibleImmediately) {
  ShadowRegisterArray<std::uint64_t> reg(4);
  reg.at(2) = 42;
  EXPECT_EQ(reg.at(2), 42u);
  EXPECT_EQ(reg.size(), 4u);
}

TEST(ShadowRegister, SnapshotFreezesValues) {
  ShadowRegisterArray<std::uint64_t> reg(2);
  reg.at(0) = 10;
  reg.at(1) = 20;
  reg.snapshot();
  // Data plane keeps writing after the snapshot...
  reg.at(0) = 99;
  reg.at(1) = 99;
  // ...but the control plane reads the consistent capture.
  EXPECT_EQ(reg.shadow_at(0), 10u);
  EXPECT_EQ(reg.shadow_at(1), 20u);
}

TEST(ShadowRegister, StagedWritesInvisibleUntilCommit) {
  ShadowRegisterArray<std::uint64_t> reg(2);
  reg.stage_write(0, 7);
  reg.stage_write(1, 8);
  EXPECT_EQ(reg.at(0), 0u);
  EXPECT_EQ(reg.staged_count(), 2u);
  reg.commit();
  EXPECT_EQ(reg.at(0), 7u);
  EXPECT_EQ(reg.at(1), 8u);
  EXPECT_EQ(reg.staged_count(), 0u);
}

TEST(ShadowRegister, AbortDiscardsStagedWrites) {
  ShadowRegisterArray<std::uint64_t> reg(1);
  reg.stage_write(0, 7);
  reg.abort();
  reg.commit();
  EXPECT_EQ(reg.at(0), 0u);
}

TEST(ShadowRegister, CommitAppliesInStagingOrder) {
  ShadowRegisterArray<std::uint64_t> reg(1);
  reg.stage_write(0, 1);
  reg.stage_write(0, 2);  // last staged write wins
  reg.commit();
  EXPECT_EQ(reg.at(0), 2u);
}

TEST(ShadowRegister, SnapshotVectorAccess) {
  ShadowRegisterArray<int> reg(3);
  reg.at(0) = 1;
  reg.at(1) = 2;
  reg.at(2) = 3;
  reg.snapshot();
  EXPECT_EQ(reg.shadow(), (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace cebinae
