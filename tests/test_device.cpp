#include "net/device.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "queueing/fifo_queue.hpp"
#include "workload/udp_app.hpp"

namespace cebinae {
namespace {

// Two nodes, one link; a UDP sink on node B counts arrivals.
struct Harness {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  Network::LinkDevices devs;
  UdpSink sink{b, 9};

  explicit Harness(std::uint64_t rate_bps = 8'000'000, Time delay = Milliseconds(1))
      : devs(net.link(a, b, rate_bps, delay, nullptr, nullptr)) {
    net.build_routes();
  }

  Packet make_packet(std::uint32_t size) {
    Packet p;
    p.flow = FlowId{a.id(), b.id(), 1, 9};
    p.kind = Packet::Kind::kUdp;
    p.size_bytes = size;
    p.payload_bytes = size - kHeaderBytes;
    return p;
  }
};

TEST(Device, SerializationDelayMatchesRate) {
  Harness h(8'000'000);  // 1 byte/us
  EXPECT_EQ(h.devs.ab.serialization_delay(1000), Microseconds(1000));
  EXPECT_EQ(h.devs.ab.serialization_delay(1), Microseconds(1));
}

TEST(Device, PacketArrivesAfterSerializationPlusPropagation) {
  Harness h(8'000'000, Milliseconds(1));
  h.a.send(h.make_packet(1000));
  // 1000 B at 1 B/us = 1 ms serialization + 1 ms propagation.
  h.net.scheduler().run_until(Milliseconds(2) - Nanoseconds(1));
  EXPECT_EQ(h.sink.packets(), 0u);
  h.net.scheduler().run_until(Milliseconds(2));
  EXPECT_EQ(h.sink.packets(), 1u);
}

TEST(Device, BackToBackPacketsSerializeSequentially) {
  Harness h(8'000'000, Time::zero());
  for (int i = 0; i < 3; ++i) h.a.send(h.make_packet(1000));
  h.net.scheduler().run_until(Milliseconds(1));
  EXPECT_EQ(h.sink.packets(), 1u);
  h.net.scheduler().run_until(Milliseconds(3));
  EXPECT_EQ(h.sink.packets(), 3u);
}

TEST(Device, TxCountersTrackWireBytes) {
  Harness h;
  h.a.send(h.make_packet(700));
  h.a.send(h.make_packet(300));
  h.net.scheduler().run();
  EXPECT_EQ(h.devs.ab.tx_bytes(), 1000u);
  EXPECT_EQ(h.devs.ab.tx_packets(), 2u);
  EXPECT_EQ(h.devs.ba.tx_bytes(), 0u);
}

TEST(Device, QueueDropsDoNotReachPeer) {
  Network net;
  Node& a = net.add_node();
  Node& b = net.add_node();
  // Queue fits exactly one MTU.
  auto devs = net.link(a, b, 8'000'000, Time::zero(),
                       std::make_unique<FifoQueue>(kMtuBytes), nullptr);
  net.build_routes();
  UdpSink sink(b, 9);

  Packet p;
  p.flow = FlowId{a.id(), b.id(), 1, 9};
  p.kind = Packet::Kind::kUdp;
  p.size_bytes = kMtuBytes;
  p.payload_bytes = kMssBytes;
  // First packet dequeues immediately (transmitter idle); the next two fill
  // and overflow the queue.
  a.send(p);
  a.send(p);
  a.send(p);
  net.scheduler().run();
  EXPECT_EQ(sink.packets(), 2u);
  EXPECT_EQ(devs.ab.qdisc().stats().dropped_packets, 1u);
}

TEST(Device, FullDuplexDirectionsAreIndependent) {
  Harness h(8'000'000, Milliseconds(1));
  UdpSink sink_a(h.a, 7);

  Packet fwd = h.make_packet(1000);
  Packet rev;
  rev.flow = FlowId{h.b.id(), h.a.id(), 1, 7};
  rev.kind = Packet::Kind::kUdp;
  rev.size_bytes = 1000;
  rev.payload_bytes = 1000 - kHeaderBytes;

  h.a.send(fwd);
  h.b.send(rev);
  h.net.scheduler().run();
  EXPECT_EQ(h.sink.packets(), 1u);
  EXPECT_EQ(sink_a.packets(), 1u);
}

}  // namespace
}  // namespace cebinae
