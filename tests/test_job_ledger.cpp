// JobLedger protocol tests: exactly-once claims under contention, lease
// expiry + steal, quarantine accounting, manifests. Everything runs against
// a throwaway directory with an injected ManualClock — no sleeps anywhere;
// "time passes" only when a test says so.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "dispatch/clock.hpp"
#include "dispatch/ledger.hpp"

namespace fs = std::filesystem;
using cebinae::dispatch::JobFailure;
using cebinae::dispatch::JobLedger;
using cebinae::dispatch::ManualClock;
using cebinae::dispatch::Manifest;

namespace {

class JobLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cebinae_ledger_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  JobLedger make(const std::string& worker, double ttl = 10.0, int max_retries = 1) {
    JobLedger::Options o;
    o.dir = dir_.string();
    o.worker = worker;
    o.lease_ttl_s = ttl;
    o.max_retries = max_retries;
    o.clock = &clock_;
    return JobLedger(o);
  }

  fs::path dir_;
  ManualClock clock_{1000.0};
};

TEST_F(JobLedgerTest, ClaimIsExclusive) {
  JobLedger a = make("w0");
  JobLedger b = make("w1");
  EXPECT_EQ(a.try_claim(0), JobLedger::ClaimResult::kClaimed);
  EXPECT_EQ(b.try_claim(0), JobLedger::ClaimResult::kHeld);
  // Releasing frees the slot for the other client.
  a.release(0);
  EXPECT_EQ(b.try_claim(0), JobLedger::ClaimResult::kClaimed);
}

TEST_F(JobLedgerTest, DoneMarkerShortCircuitsClaims) {
  JobLedger a = make("w0");
  JobLedger b = make("w1");
  ASSERT_EQ(a.try_claim(3), JobLedger::ClaimResult::kClaimed);
  a.mark_done(3);
  a.release(3);
  EXPECT_TRUE(b.is_done(3));
  EXPECT_EQ(b.done_worker(3), "w0");
  EXPECT_EQ(b.try_claim(3), JobLedger::ClaimResult::kDone);
  EXPECT_EQ(a.done_count(4), 1u);
  EXPECT_EQ(a.settled_count(4), 1u);
}

// The satellite requirement: two in-process clients racing over one grid
// must produce exactly-once job execution. Claims are the only
// synchronization; the injected clock never advances, so no lease ever
// expires and every job has exactly one winner.
TEST_F(JobLedgerTest, TwoClientsRaceExactlyOnce) {
  constexpr std::uint64_t kJobs = 64;
  std::vector<std::atomic<int>> executions(kJobs);
  for (auto& e : executions) e.store(0);

  auto client = [&](const std::string& id, std::uint64_t offset) {
    JobLedger ledger = make(id);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::uint64_t k = 0; k < kJobs; ++k) {
        const std::uint64_t i = (k + offset) % kJobs;
        if (ledger.try_claim(i) != JobLedger::ClaimResult::kClaimed) continue;
        executions[i].fetch_add(1);  // "run" the job
        ledger.mark_done(i);
        ledger.release(i);
        progressed = true;
      }
    }
  };

  std::thread t0(client, "w0", 0);
  std::thread t1(client, "w1", kJobs / 2);
  t0.join();
  t1.join();

  for (std::uint64_t i = 0; i < kJobs; ++i) {
    EXPECT_EQ(executions[i].load(), 1) << "job " << i << " executed wrong number of times";
  }
  JobLedger check = make("checker");
  EXPECT_EQ(check.done_count(kJobs), kJobs);
}

TEST_F(JobLedgerTest, HeartbeatKeepsLeaseAlive) {
  JobLedger a = make("w0", /*ttl=*/10.0);
  JobLedger b = make("w1", /*ttl=*/10.0);
  ASSERT_EQ(a.try_claim(0), JobLedger::ClaimResult::kClaimed);

  // Heartbeats outpace the clock: never stealable.
  for (int step = 0; step < 5; ++step) {
    clock_.advance(8.0);
    a.heartbeat(0);
    EXPECT_EQ(b.try_claim(0), JobLedger::ClaimResult::kHeld) << "step " << step;
  }
}

TEST_F(JobLedgerTest, ExpiredLeaseIsStolen) {
  JobLedger a = make("w0", /*ttl=*/10.0);
  JobLedger b = make("w1", /*ttl=*/10.0);
  ASSERT_EQ(a.try_claim(7), JobLedger::ClaimResult::kClaimed);

  clock_.advance(10.5);  // crash simulation: w0 goes silent past the TTL
  EXPECT_EQ(b.try_claim(7), JobLedger::ClaimResult::kClaimed);
  b.mark_done(7);
  b.release(7);
  EXPECT_EQ(b.done_worker(7), "w1");
}

// A wedged worker resuming after its lease was stolen must not corrupt the
// winner's completion: both mark done, merge reads the marker's owner.
TEST_F(JobLedgerTest, StolenThenResumedJobKeepsOneOwner) {
  JobLedger a = make("w0", 10.0);
  JobLedger b = make("w1", 10.0);
  ASSERT_EQ(a.try_claim(0), JobLedger::ClaimResult::kClaimed);
  clock_.advance(11.0);
  ASSERT_EQ(b.try_claim(0), JobLedger::ClaimResult::kClaimed);
  b.mark_done(0);
  b.release(0);
  // w0 wakes up and finishes too (it cannot know it was stolen).
  a.mark_done(0);
  a.release(0);
  // Last marker wins, but SOME single worker owns it — that is all the
  // merge needs for exactly-once output.
  const std::string owner = a.done_worker(0);
  EXPECT_TRUE(owner == "w0" || owner == "w1");
  EXPECT_EQ(a.done_count(1), 1u);
}

TEST_F(JobLedgerTest, OwnFailureBlocksOnlyThatWorker) {
  JobLedger a = make("w0");
  JobLedger b = make("w1");
  ASSERT_EQ(a.try_claim(2), JobLedger::ClaimResult::kClaimed);
  a.record_failure(2, "boom: scenario exploded");
  a.release(2);

  // The failing worker must not retry its own deterministic failure...
  EXPECT_EQ(a.try_claim(2), JobLedger::ClaimResult::kOwnFailure);
  // ...but another worker gets its shot.
  EXPECT_EQ(b.try_claim(2), JobLedger::ClaimResult::kClaimed);

  const std::vector<JobFailure> fails = b.failures(2);
  ASSERT_EQ(fails.size(), 1u);
  EXPECT_EQ(fails[0].worker, "w0");
  EXPECT_EQ(fails[0].error, "boom: scenario exploded");
}

TEST_F(JobLedgerTest, SecondDistinctFailureQuarantines) {
  JobLedger a = make("w0", 10.0, /*max_retries=*/1);
  JobLedger b = make("w1", 10.0, /*max_retries=*/1);
  JobLedger c = make("w2", 10.0, /*max_retries=*/1);

  ASSERT_EQ(a.try_claim(5), JobLedger::ClaimResult::kClaimed);
  a.record_failure(5, "deterministic bug");
  a.release(5);
  EXPECT_FALSE(b.quarantined(5));

  ASSERT_EQ(b.try_claim(5), JobLedger::ClaimResult::kClaimed);
  b.record_failure(5, "deterministic bug");
  b.release(5);

  EXPECT_TRUE(c.quarantined(5));
  EXPECT_EQ(c.try_claim(5), JobLedger::ClaimResult::kQuarantined);
  // Quarantined counts as settled: the sweep can finish and report it.
  EXPECT_EQ(c.settled_count(6), 1u);
  EXPECT_EQ(c.done_count(6), 0u);
}

TEST_F(JobLedgerTest, ManifestRoundTrips) {
  JobLedger a = make("coordinator");
  Manifest m;
  m.experiment = "fig12";
  m.n_jobs = 9;
  m.base_seed = 0xDEADBEEFCAFE1234ull;  // > 2^53: exercises exact u64 parse
  m.trials = 3;
  m.smoke = true;
  a.write_manifest(m);

  JobLedger b = make("w0");
  const auto back = b.read_manifest();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->experiment, "fig12");
  EXPECT_EQ(back->n_jobs, 9u);
  EXPECT_EQ(back->base_seed, 0xDEADBEEFCAFE1234ull);
  EXPECT_EQ(back->trials, 3);
  EXPECT_TRUE(back->smoke);
  EXPECT_FALSE(back->full);
}

}  // namespace
