// Heavy-hitter cache demo: Cebinae's passive HashPipe-style flow cache
// (paper §4.2) finding the top flows in a synthetic backbone trace.
//
// Shows the property the design leans on: false positives are (nearly)
// impossible because exact flow keys are stored, while false negatives
// shrink as stages/slots grow — and heavy hitters re-claim their slots
// right after every poll-and-reset because they send the most packets.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "core/flow_cache.hpp"
#include "workload/trace_gen.hpp"

using namespace cebinae;

int main() {
  TraceConfig tc;
  tc.duration = Seconds(2);
  tc.flow_arrivals_per_sec = 3000;
  tc.seed = 7;
  const auto trace = SyntheticTrace::generate(tc);
  const auto summary = SyntheticTrace::summarize(trace);
  std::printf("synthetic trace: %llu packets from %llu flows over %.0f s\n\n",
              (unsigned long long)summary.packets, (unsigned long long)summary.flows,
              tc.duration.seconds());

  const Time interval = Milliseconds(100);
  for (std::uint32_t stages : {1u, 2u, 4u}) {
    FlowCache cache(stages, 1024);
    std::unordered_map<FlowId, std::uint64_t, FlowIdHash> truth;
    int intervals = 0;
    int max_found = 0;
    std::uint64_t uncounted = 0;

    Time boundary = interval;
    auto settle = [&]() {
      if (truth.empty()) return;
      auto top_true =
          std::max_element(truth.begin(), truth.end(),
                           [](const auto& a, const auto& b) { return a.second < b.second; });
      const auto entries = cache.poll_and_reset();
      const FlowCache::Entry* top_cache = nullptr;
      for (const auto& e : entries) {
        if (!top_cache || e.bytes > top_cache->bytes) top_cache = &e;
      }
      ++intervals;
      if (top_cache && top_cache->flow == top_true->first) ++max_found;
      truth.clear();
    };

    for (const TracePacket& pkt : trace) {
      while (pkt.time >= boundary) {
        settle();
        boundary += interval;
      }
      truth[pkt.flow] += pkt.bytes;
      cache.add(pkt.flow, pkt.bytes);
    }
    settle();
    uncounted = cache.uncounted_packets();

    std::printf("%u-stage x 1024 slots: top-flow found in %d/%d intervals; "
                "%llu packets went uncounted\n",
                stages, max_found, intervals, (unsigned long long)uncounted);
  }

  std::printf("\nmore stages -> fewer collisions -> the true maximum is identified\n"
              "in (almost) every interval, with zero false attributions.\n");
  return 0;
}
