// Multi-bottleneck demo: Cebinae's per-link taxation composes into global
// max-min fairness (paper §3.2, Definition 2).
//
// Topology: a 3-link 'parking lot'. Two end-to-end flows cross all links;
// local flows load each link differently, so each link is a different
// bottleneck for someone. The example prints measured goodputs against the
// water-filling ideal computed by metrics/maxmin.
#include <cstdio>

#include "metrics/jfi.hpp"
#include "runner/scenario.hpp"

using namespace cebinae;

int main() {
  std::printf("Parking-lot topology: 3 x 50 Mbps links\n");
  std::printf("flows: 2 end-to-end NewReno; 4 local Cubic on link 0; 2 local NewReno on link 2\n\n");

  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    ScenarioConfig cfg;
    cfg.chain_links = 3;
    cfg.bottleneck_bps = 50'000'000;
    cfg.buffer_bytes = 420ull * kMtuBytes;
    cfg.qdisc = qdisc;
    cfg.duration = Seconds(30);

    cfg.flows = flows_of(CcaType::kNewReno, 2, Milliseconds(60));  // end-to-end
    for (FlowSpec f : flows_of(CcaType::kCubic, 4, Milliseconds(30))) {
      f.enter = 0;
      f.exit = 1;
      cfg.flows.push_back(f);
    }
    for (FlowSpec f : flows_of(CcaType::kNewReno, 2, Milliseconds(30))) {
      f.enter = 2;
      f.exit = 3;
      cfg.flows.push_back(f);
    }

    Scenario scenario(cfg);
    const std::vector<double> ideal = scenario.ideal_goodputs_Bps();
    const ScenarioResult r = scenario.run();

    std::printf("--- %s ---\n", std::string(to_string(qdisc)).c_str());
    std::printf("  %-18s %10s %10s\n", "flow", "ideal", "measured");
    const char* labels[] = {"NewReno e2e",  "NewReno e2e",  "Cubic link-0", "Cubic link-0",
                            "Cubic link-0", "Cubic link-0", "NewReno link-2", "NewReno link-2"};
    for (std::size_t i = 0; i < r.goodput_Bps.size(); ++i) {
      std::printf("  %-18s %7.2f Mb %7.2f Mb\n", labels[i], ideal[i] * 8 / 1e6,
                  r.goodput_Bps[i] * 8 / 1e6);
    }
    std::printf("  normalized JFI vs ideal: %.3f\n\n",
                normalized_jain_index(r.goodput_Bps, ideal));
  }
  return 0;
}
