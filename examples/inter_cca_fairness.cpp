// Inter-CCA fairness: the paper's motivating scenario. Heterogeneous
// congestion control algorithms sharing one bottleneck reach wildly unfair
// allocations; a Cebinae router at the bottleneck mitigates this without
// knowing anything about the algorithms involved.
//
// Runs three classic matchups and prints the per-group shares:
//   1. 16 Vegas vs 1 NewReno (loss-based starves delay-based)
//   2. 16 NewReno vs 1 Cubic (more aggressive loss-based wins)
//   3. 8 NewReno vs 1 BBR    (model-based ignores loss signals)
#include <cstdio>
#include <string>
#include <vector>

#include "runner/scenario.hpp"

using namespace cebinae;

namespace {

struct Matchup {
  const char* name;
  CcaType victim;
  int victim_count;
  CcaType aggressor;
  int aggressor_count;
  std::uint64_t buffer_mtu;  // BBRv1 dominates with sub-BDP buffers
};

void run_matchup(const Matchup& m) {
  std::printf("--- %s ---\n", m.name);
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    ScenarioConfig cfg;
    cfg.bottleneck_bps = 100'000'000;
    cfg.buffer_bytes = m.buffer_mtu * kMtuBytes;
    cfg.qdisc = qdisc;
    cfg.duration = Seconds(25);
    cfg.flows = flows_of(m.victim, m.victim_count, Milliseconds(60));
    for (const FlowSpec& f : flows_of(m.aggressor, m.aggressor_count, Milliseconds(60))) {
      cfg.flows.push_back(f);
    }
    const ScenarioResult r = Scenario(cfg).run();

    double victim_sum = 0;
    double aggressor_sum = 0;
    for (int i = 0; i < m.victim_count; ++i) victim_sum += r.goodput_Bps[i];
    for (std::size_t i = m.victim_count; i < r.goodput_Bps.size(); ++i) {
      aggressor_sum += r.goodput_Bps[i];
    }
    const double total = victim_sum + aggressor_sum;
    std::printf(
        "  %-8s JFI %.3f | %s share %5.1f%% (per-flow %5.2f Mbps) | %s share %5.1f%% "
        "(per-flow %5.2f Mbps)\n",
        std::string(to_string(qdisc)).c_str(), r.jfi, std::string(to_string(m.victim)).c_str(),
        100 * victim_sum / total, victim_sum * 8 / 1e6 / m.victim_count,
        std::string(to_string(m.aggressor)).c_str(), 100 * aggressor_sum / total,
        aggressor_sum * 8 / 1e6 / m.aggressor_count);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Inter-CCA fairness on a shared 100 Mbps bottleneck\n\n");
  run_matchup({"16 Vegas vs 1 NewReno", CcaType::kVegas, 16, CcaType::kNewReno, 1, 850});
  run_matchup({"16 NewReno vs 1 Cubic", CcaType::kNewReno, 16, CcaType::kCubic, 1, 850});
  run_matchup({"8 NewReno vs 1 BBR", CcaType::kNewReno, 8, CcaType::kBbr, 1, 250});
  return 0;
}
