// Quickstart: the smallest end-to-end use of the library.
//
// Builds a dumbbell with two NewReno flows of different RTTs, runs it once
// behind a FIFO bottleneck and once behind Cebinae, and prints per-flow
// goodput and Jain's fairness index. This is the paper's Figure 1 scenario
// in ~40 lines.
//
//   ./quickstart
#include <cstdio>

#include "runner/scenario.hpp"

using namespace cebinae;

namespace {

ScenarioResult run(QdiscKind qdisc) {
  ScenarioConfig cfg;
  cfg.bottleneck_bps = 100'000'000;       // 100 Mbps bottleneck
  cfg.buffer_bytes = 850ull * kMtuBytes;  // switch buffer
  cfg.qdisc = qdisc;                      // FIFO / FQ-CoDel / Cebinae
  cfg.duration = Seconds(60);

  // Two long-lived NewReno flows; the short-RTT one dominates under FIFO.
  cfg.flows = {
      FlowSpec{CcaType::kNewReno, MillisecondsF(20.4)},
      FlowSpec{CcaType::kNewReno, Milliseconds(40)},
  };
  return Scenario(cfg).run();
}

}  // namespace

int main() {
  std::printf("Cebinae quickstart: 2 NewReno flows (20.4 ms vs 40 ms RTT), 100 Mbps\n\n");
  for (QdiscKind qdisc : {QdiscKind::kFifo, QdiscKind::kCebinae}) {
    const ScenarioResult r = run(qdisc);
    std::printf("%-8s: flow0 %6.2f Mbps, flow1 %6.2f Mbps, JFI %.3f, link use %.1f%%\n",
                std::string(to_string(qdisc)).c_str(), r.goodput_Bps[0] * 8 / 1e6,
                r.goodput_Bps[1] * 8 / 1e6, r.jfi,
                100.0 * r.throughput_Bps[0] * 8 / 100e6);
  }
  std::printf("\nCebinae taxes whichever flow exceeds its fair share, letting the\n"
              "long-RTT flow reclaim bandwidth -- with negligible efficiency cost.\n");
  return 0;
}
