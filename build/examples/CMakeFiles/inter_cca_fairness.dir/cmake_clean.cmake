file(REMOVE_RECURSE
  "CMakeFiles/inter_cca_fairness.dir/inter_cca_fairness.cpp.o"
  "CMakeFiles/inter_cca_fairness.dir/inter_cca_fairness.cpp.o.d"
  "inter_cca_fairness"
  "inter_cca_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inter_cca_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
