# Empty compiler generated dependencies file for inter_cca_fairness.
# This may be replaced when dependencies are built.
