
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_afq.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_afq.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_afq.cpp.o.d"
  "/root/repo/tests/test_agent.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_agent.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_agent.cpp.o.d"
  "/root/repo/tests/test_bbr.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_bbr.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_bbr.cpp.o.d"
  "/root/repo/tests/test_bic.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_bic.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_bic.cpp.o.d"
  "/root/repo/tests/test_cc_factory.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_cc_factory.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_cc_factory.cpp.o.d"
  "/root/repo/tests/test_cebinae_queue_disc.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_cebinae_queue_disc.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_cebinae_queue_disc.cpp.o.d"
  "/root/repo/tests/test_codel.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_codel.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_codel.cpp.o.d"
  "/root/repo/tests/test_cubic.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_cubic.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_cubic.cpp.o.d"
  "/root/repo/tests/test_device.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_device.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_device.cpp.o.d"
  "/root/repo/tests/test_fifo_queue.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_fifo_queue.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_fifo_queue.cpp.o.d"
  "/root/repo/tests/test_flow_cache.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_flow_cache.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_flow_cache.cpp.o.d"
  "/root/repo/tests/test_flow_stats.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_flow_stats.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_flow_stats.cpp.o.d"
  "/root/repo/tests/test_fq_codel.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_fq_codel.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_fq_codel.cpp.o.d"
  "/root/repo/tests/test_jfi.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_jfi.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_jfi.cpp.o.d"
  "/root/repo/tests/test_lbf.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_lbf.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_lbf.cpp.o.d"
  "/root/repo/tests/test_lbf_properties.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_lbf_properties.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_lbf_properties.cpp.o.d"
  "/root/repo/tests/test_maxmin.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_maxmin.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_maxmin.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_newreno.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_newreno.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_newreno.cpp.o.d"
  "/root/repo/tests/test_packet.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_packet.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_packet.cpp.o.d"
  "/root/repo/tests/test_packet_generator.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_packet_generator.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_packet_generator.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_params.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_params.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_params.cpp.o.d"
  "/root/repo/tests/test_port_saturation.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_port_saturation.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_port_saturation.cpp.o.d"
  "/root/repo/tests/test_random.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_random.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_random.cpp.o.d"
  "/root/repo/tests/test_resource_model.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_resource_model.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_resource_model.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_rtt_estimator.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_rtt_estimator.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_rtt_estimator.cpp.o.d"
  "/root/repo/tests/test_scenario_integration.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_scenario_integration.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_scenario_integration.cpp.o.d"
  "/root/repo/tests/test_scenario_qdiscs.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_scenario_qdiscs.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_scenario_qdiscs.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_shadow_register.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_shadow_register.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_shadow_register.cpp.o.d"
  "/root/repo/tests/test_tcp_socket.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_tcp_socket.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_tcp_socket.cpp.o.d"
  "/root/repo/tests/test_time.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_time.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_time.cpp.o.d"
  "/root/repo/tests/test_token_bucket.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_token_bucket.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_token_bucket.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace_gen.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_trace_gen.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_trace_gen.cpp.o.d"
  "/root/repo/tests/test_udp_app.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_udp_app.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_udp_app.cpp.o.d"
  "/root/repo/tests/test_vegas.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_vegas.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_vegas.cpp.o.d"
  "/root/repo/tests/test_windowed_filter.cpp" "tests/CMakeFiles/cebinae_tests.dir/test_windowed_filter.cpp.o" "gcc" "tests/CMakeFiles/cebinae_tests.dir/test_windowed_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cebinae.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
