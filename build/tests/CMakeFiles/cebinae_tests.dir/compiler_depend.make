# Empty compiler generated dependencies file for cebinae_tests.
# This may be replaced when dependencies are built.
