file(REMOVE_RECURSE
  "libcebinae.a"
)
