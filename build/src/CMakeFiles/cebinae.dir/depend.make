# Empty dependencies file for cebinae.
# This may be replaced when dependencies are built.
