
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/packet_generator.cpp" "src/CMakeFiles/cebinae.dir/control/packet_generator.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/control/packet_generator.cpp.o.d"
  "/root/repo/src/core/agent.cpp" "src/CMakeFiles/cebinae.dir/core/agent.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/agent.cpp.o.d"
  "/root/repo/src/core/cebinae_queue_disc.cpp" "src/CMakeFiles/cebinae.dir/core/cebinae_queue_disc.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/cebinae_queue_disc.cpp.o.d"
  "/root/repo/src/core/flow_cache.cpp" "src/CMakeFiles/cebinae.dir/core/flow_cache.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/flow_cache.cpp.o.d"
  "/root/repo/src/core/lbf.cpp" "src/CMakeFiles/cebinae.dir/core/lbf.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/lbf.cpp.o.d"
  "/root/repo/src/core/port_saturation.cpp" "src/CMakeFiles/cebinae.dir/core/port_saturation.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/port_saturation.cpp.o.d"
  "/root/repo/src/core/resource_model.cpp" "src/CMakeFiles/cebinae.dir/core/resource_model.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/core/resource_model.cpp.o.d"
  "/root/repo/src/metrics/flow_stats.cpp" "src/CMakeFiles/cebinae.dir/metrics/flow_stats.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/metrics/flow_stats.cpp.o.d"
  "/root/repo/src/metrics/maxmin.cpp" "src/CMakeFiles/cebinae.dir/metrics/maxmin.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/metrics/maxmin.cpp.o.d"
  "/root/repo/src/net/device.cpp" "src/CMakeFiles/cebinae.dir/net/device.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/net/device.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/cebinae.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/cebinae.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/net/node.cpp.o.d"
  "/root/repo/src/queueing/afq.cpp" "src/CMakeFiles/cebinae.dir/queueing/afq.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/queueing/afq.cpp.o.d"
  "/root/repo/src/queueing/codel.cpp" "src/CMakeFiles/cebinae.dir/queueing/codel.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/queueing/codel.cpp.o.d"
  "/root/repo/src/queueing/fifo_queue.cpp" "src/CMakeFiles/cebinae.dir/queueing/fifo_queue.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/queueing/fifo_queue.cpp.o.d"
  "/root/repo/src/queueing/fq_codel.cpp" "src/CMakeFiles/cebinae.dir/queueing/fq_codel.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/queueing/fq_codel.cpp.o.d"
  "/root/repo/src/queueing/token_bucket.cpp" "src/CMakeFiles/cebinae.dir/queueing/token_bucket.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/queueing/token_bucket.cpp.o.d"
  "/root/repo/src/runner/scenario.cpp" "src/CMakeFiles/cebinae.dir/runner/scenario.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/runner/scenario.cpp.o.d"
  "/root/repo/src/sim/logging.cpp" "src/CMakeFiles/cebinae.dir/sim/logging.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/sim/logging.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/cebinae.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/cebinae.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/tcp/bbr.cpp" "src/CMakeFiles/cebinae.dir/tcp/bbr.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/bbr.cpp.o.d"
  "/root/repo/src/tcp/bic.cpp" "src/CMakeFiles/cebinae.dir/tcp/bic.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/bic.cpp.o.d"
  "/root/repo/src/tcp/cubic.cpp" "src/CMakeFiles/cebinae.dir/tcp/cubic.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/cubic.cpp.o.d"
  "/root/repo/src/tcp/new_reno.cpp" "src/CMakeFiles/cebinae.dir/tcp/new_reno.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/new_reno.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/CMakeFiles/cebinae.dir/tcp/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/tcp_socket.cpp" "src/CMakeFiles/cebinae.dir/tcp/tcp_socket.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/tcp_socket.cpp.o.d"
  "/root/repo/src/tcp/vegas.cpp" "src/CMakeFiles/cebinae.dir/tcp/vegas.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/tcp/vegas.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/cebinae.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/topology/topology.cpp.o.d"
  "/root/repo/src/workload/bulk_app.cpp" "src/CMakeFiles/cebinae.dir/workload/bulk_app.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/workload/bulk_app.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/CMakeFiles/cebinae.dir/workload/trace_gen.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/workload/trace_gen.cpp.o.d"
  "/root/repo/src/workload/udp_app.cpp" "src/CMakeFiles/cebinae.dir/workload/udp_app.cpp.o" "gcc" "src/CMakeFiles/cebinae.dir/workload/udp_app.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
