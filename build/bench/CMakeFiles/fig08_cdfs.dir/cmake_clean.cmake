file(REMOVE_RECURSE
  "CMakeFiles/fig08_cdfs.dir/fig08_cdfs.cpp.o"
  "CMakeFiles/fig08_cdfs.dir/fig08_cdfs.cpp.o.d"
  "fig08_cdfs"
  "fig08_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
