# Empty dependencies file for fig08_cdfs.
# This may be replaced when dependencies are built.
