file(REMOVE_RECURSE
  "CMakeFiles/fig01_rtt_timeseries.dir/fig01_rtt_timeseries.cpp.o"
  "CMakeFiles/fig01_rtt_timeseries.dir/fig01_rtt_timeseries.cpp.o.d"
  "fig01_rtt_timeseries"
  "fig01_rtt_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_rtt_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
