# Empty compiler generated dependencies file for fig01_rtt_timeseries.
# This may be replaced when dependencies are built.
