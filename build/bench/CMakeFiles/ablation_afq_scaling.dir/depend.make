# Empty dependencies file for ablation_afq_scaling.
# This may be replaced when dependencies are built.
