file(REMOVE_RECURSE
  "CMakeFiles/ablation_afq_scaling.dir/ablation_afq_scaling.cpp.o"
  "CMakeFiles/ablation_afq_scaling.dir/ablation_afq_scaling.cpp.o.d"
  "ablation_afq_scaling"
  "ablation_afq_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_afq_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
