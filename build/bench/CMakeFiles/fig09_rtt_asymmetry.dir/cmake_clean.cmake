file(REMOVE_RECURSE
  "CMakeFiles/fig09_rtt_asymmetry.dir/fig09_rtt_asymmetry.cpp.o"
  "CMakeFiles/fig09_rtt_asymmetry.dir/fig09_rtt_asymmetry.cpp.o.d"
  "fig09_rtt_asymmetry"
  "fig09_rtt_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_rtt_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
