# Empty dependencies file for fig09_rtt_asymmetry.
# This may be replaced when dependencies are built.
