file(REMOVE_RECURSE
  "CMakeFiles/micro_datapath.dir/micro_datapath.cpp.o"
  "CMakeFiles/micro_datapath.dir/micro_datapath.cpp.o.d"
  "micro_datapath"
  "micro_datapath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_datapath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
