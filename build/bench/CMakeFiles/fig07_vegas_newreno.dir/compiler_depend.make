# Empty compiler generated dependencies file for fig07_vegas_newreno.
# This may be replaced when dependencies are built.
