file(REMOVE_RECURSE
  "CMakeFiles/fig07_vegas_newreno.dir/fig07_vegas_newreno.cpp.o"
  "CMakeFiles/fig07_vegas_newreno.dir/fig07_vegas_newreno.cpp.o.d"
  "fig07_vegas_newreno"
  "fig07_vegas_newreno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_vegas_newreno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
