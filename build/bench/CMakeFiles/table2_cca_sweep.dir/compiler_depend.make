# Empty compiler generated dependencies file for table2_cca_sweep.
# This may be replaced when dependencies are built.
