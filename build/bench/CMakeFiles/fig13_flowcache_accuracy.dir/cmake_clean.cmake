file(REMOVE_RECURSE
  "CMakeFiles/fig13_flowcache_accuracy.dir/fig13_flowcache_accuracy.cpp.o"
  "CMakeFiles/fig13_flowcache_accuracy.dir/fig13_flowcache_accuracy.cpp.o.d"
  "fig13_flowcache_accuracy"
  "fig13_flowcache_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_flowcache_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
