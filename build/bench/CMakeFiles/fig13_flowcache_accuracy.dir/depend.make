# Empty dependencies file for fig13_flowcache_accuracy.
# This may be replaced when dependencies are built.
