# Empty dependencies file for ablation_strawman.
# This may be replaced when dependencies are built.
