file(REMOVE_RECURSE
  "CMakeFiles/ablation_strawman.dir/ablation_strawman.cpp.o"
  "CMakeFiles/ablation_strawman.dir/ablation_strawman.cpp.o.d"
  "ablation_strawman"
  "ablation_strawman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strawman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
