# Empty compiler generated dependencies file for fig11_parking_lot.
# This may be replaced when dependencies are built.
