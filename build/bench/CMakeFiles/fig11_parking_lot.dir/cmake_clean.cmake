file(REMOVE_RECURSE
  "CMakeFiles/fig11_parking_lot.dir/fig11_parking_lot.cpp.o"
  "CMakeFiles/fig11_parking_lot.dir/fig11_parking_lot.cpp.o.d"
  "fig11_parking_lot"
  "fig11_parking_lot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_parking_lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
