# Empty dependencies file for fig10_jfi_timeseries.
# This may be replaced when dependencies are built.
