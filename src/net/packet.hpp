// Packet and flow-identity types shared by the whole simulator.
//
// Packets are small value types; the simulator models only the metadata that
// congestion control and queueing react to (sizes, sequence numbers, ECN
// bits, timestamps) — payload bytes are never materialized.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>

#include "sim/time.hpp"

namespace cebinae {

// Wire-size constants. A full-sized frame is one MTU; the TCP/IP/Ethernet
// header overhead is folded into kHeaderBytes so goodput (payload delivered)
// and throughput (frames on the wire) can both be measured.
inline constexpr std::uint32_t kMtuBytes = 1500;
inline constexpr std::uint32_t kHeaderBytes = 52;  // 14 eth + 20 IP + ~18 TCP w/ options
inline constexpr std::uint32_t kMssBytes = kMtuBytes - kHeaderBytes;
inline constexpr std::uint32_t kAckBytes = 64;  // minimum Ethernet frame

using NodeId = std::uint32_t;

// Directional transport 5-tuple (protocol is implied by Packet::Kind).
struct FlowId {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  friend constexpr auto operator<=>(const FlowId&, const FlowId&) = default;

  // The flow id of traffic in the opposite direction (e.g., the ACK stream
  // of a data flow).
  [[nodiscard]] constexpr FlowId reversed() const { return {dst, src, dst_port, src_port}; }
};

struct FlowIdHash {
  std::size_t operator()(const FlowId& f) const {
    std::uint64_t key = (static_cast<std::uint64_t>(f.src) << 32) | f.dst;
    std::uint64_t key2 = (static_cast<std::uint64_t>(f.src_port) << 16) | f.dst_port;
    key ^= key2 + 0x9e3779b97f4a7c15ULL + (key << 6) + (key >> 2);
    // splitmix64 finalizer for good bit dispersion (the flow cache relies on it).
    key ^= key >> 30;
    key *= 0xbf58476d1ce4e5b9ULL;
    key ^= key >> 27;
    key *= 0x94d049bb133111ebULL;
    key ^= key >> 31;
    return static_cast<std::size_t>(key);
  }
};

inline std::ostream& operator<<(std::ostream& os, const FlowId& f) {
  return os << f.src << ':' << f.src_port << "->" << f.dst << ':' << f.dst_port;
}

struct Packet {
  enum class Kind : std::uint8_t { kTcpData, kTcpAck, kUdp, kRotate };

  FlowId flow;
  Kind kind = Kind::kTcpData;
  std::uint32_t size_bytes = 0;     // frame size on the wire
  std::uint32_t payload_bytes = 0;  // application bytes carried

  // Transport fields (TCP semantics; UDP leaves them zero).
  std::uint64_t seq = 0;  // first payload byte offset of this segment
  std::uint64_t ack = 0;  // cumulative ACK: next byte expected by receiver

  // SACK option (RFC 2018): up to 3 received-but-not-yet-acked byte ranges.
  struct SackBlock {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  // exclusive
  };
  std::array<SackBlock, 3> sack{};
  std::uint8_t sack_count = 0;

  // Timestamp option: senders stamp ts_sent; receivers echo it in ts_echo so
  // the sender can take RTT samples without per-packet maps.
  Time ts_sent;
  Time ts_echo;

  // ECN state. `ect` is set by ECN-capable senders, `ce` by congested
  // routers, `ece` echoed on ACKs by receivers.
  bool ect = false;
  bool ce = false;
  bool ece = false;

  [[nodiscard]] std::uint64_t seq_end() const { return seq + payload_bytes; }
};

// Anything that terminates packets at a node (TCP sockets, UDP sinks, ...).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(const Packet& pkt) = 0;
};

}  // namespace cebinae
