#include "net/device.hpp"

#include <cassert>
#include <utility>

#include "net/node.hpp"

namespace cebinae {

Device::Device(Scheduler& sched, Node& owner, std::uint64_t rate_bps, Time prop_delay,
               std::unique_ptr<QueueDisc> qdisc, obs::MetricsRegistry* metrics,
               PacketPool* pool)
    : sched_(sched),
      owner_(owner),
      rate_bps_(rate_bps),
      prop_delay_(prop_delay),
      qdisc_(std::move(qdisc)),
      pool_(pool) {
  assert(rate_bps_ > 0);
  assert(qdisc_ != nullptr);
  if (metrics != nullptr) {
    tx_bytes_metric_ = &metrics->counter("net.tx_bytes");
    tx_packets_metric_ = &metrics->counter("net.tx_packets");
  }
}

Node& Device::peer_node() {
  assert(peer_ != nullptr);
  return peer_->owner();
}

void Device::send(Packet pkt) {
  qdisc_->enqueue(std::move(pkt));
  try_transmit();
}

void Device::try_transmit() {
  if (busy_) return;
  std::optional<Packet> pkt = qdisc_->dequeue();
  if (!pkt) return;

  busy_ = true;
  const Time tx_time = serialization_delay(pkt->size_bytes);
  tx_bytes_ += pkt->size_bytes;
  ++tx_packets_;
  if (tx_bytes_metric_ != nullptr) {
    tx_bytes_metric_->add(pkt->size_bytes);
    tx_packets_metric_->inc();
  }

  sched_.schedule(tx_time, [this] {
    busy_ = false;
    try_transmit();
  });
  assert(peer_ != nullptr && "device transmitted before the link was connected");
  // The in-flight frame lives in the pool; the propagation event captures
  // only {Device*, pool handle}, which fits the scheduler's inline budget —
  // zero heap allocations per hop in steady state.
  sched_.schedule(tx_time + prop_delay_,
                  [peer = peer_, p = PooledPacket(pool_, std::move(*pkt))]() mutable {
                    peer->owner().receive(std::move(*p));
                  });
}

}  // namespace cebinae
