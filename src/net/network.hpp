// Root object of a simulation: owns the scheduler, RNG, and topology.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1) : rng_(seed) {}

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] RandomStream& rng() { return rng_; }
  // Per-network metrics registry: instrumented components (devices, sockets,
  // qdiscs) register counters here; probes sample it. Never shared across
  // Networks, so parallel scenarios stay isolated.
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return metrics_; }
  // Per-scenario arena recycling in-flight packet storage (see
  // packet_pool.hpp); every device of this network transmits through it.
  [[nodiscard]] PacketPool& packet_pool() { return pool_; }

  Node& add_node();
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  struct LinkDevices {
    Device& ab;  // egress of a toward b
    Device& ba;  // egress of b toward a
  };

  // Create a full-duplex link between `a` and `b`. Each direction gets its
  // own queue disc; either may be nullptr to get an effectively unlimited
  // FIFO (used for uncongested reverse paths).
  LinkDevices link(Node& a, Node& b, std::uint64_t rate_bps, Time delay,
                   std::unique_ptr<QueueDisc> q_ab, std::unique_ptr<QueueDisc> q_ba);

  // Populate every node's routing table with shortest-path (hop count)
  // first-hop devices via per-destination BFS. Call after topology is built.
  void build_routes();

 private:
  struct Edge {
    NodeId a;
    NodeId b;
    Device* ab;
    Device* ba;
  };

  // Destruction order: pending scheduler events may hold PooledPacket
  // handles, so the pool is declared first (destroyed last).
  PacketPool pool_;
  Scheduler sched_;
  RandomStream rng_;
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<Edge> edges_;
};

}  // namespace cebinae
