#include "net/network.hpp"

#include <deque>
#include <utility>

#include "queueing/fifo_queue.hpp"

namespace cebinae {

Node& Network::add_node() {
  nodes_.push_back(std::make_unique<Node>(static_cast<NodeId>(nodes_.size())));
  return *nodes_.back();
}

Network::LinkDevices Network::link(Node& a, Node& b, std::uint64_t rate_bps, Time delay,
                                   std::unique_ptr<QueueDisc> q_ab,
                                   std::unique_ptr<QueueDisc> q_ba) {
  if (!q_ab) q_ab = std::make_unique<FifoQueue>(FifoQueue::unlimited());
  if (!q_ba) q_ba = std::make_unique<FifoQueue>(FifoQueue::unlimited());

  Device& dab = a.add_device(std::make_unique<Device>(sched_, a, rate_bps, delay,
                                                      std::move(q_ab), &metrics_, &pool_));
  Device& dba = b.add_device(std::make_unique<Device>(sched_, b, rate_bps, delay,
                                                      std::move(q_ba), &metrics_, &pool_));
  dab.set_peer(dba);
  dba.set_peer(dab);
  edges_.push_back(Edge{a.id(), b.id(), &dab, &dba});
  return LinkDevices{dab, dba};
}

void Network::build_routes() {
  const std::size_t n = nodes_.size();
  // Adjacency: for each node, (neighbor, egress device toward neighbor).
  std::vector<std::vector<std::pair<NodeId, Device*>>> adj(n);
  for (const Edge& e : edges_) {
    adj[e.a].emplace_back(e.b, e.ab);
    adj[e.b].emplace_back(e.a, e.ba);
  }

  // BFS from every destination; the tree edge used to reach a node is that
  // node's first hop toward the destination.
  std::vector<int> dist(n);
  for (NodeId dst = 0; dst < static_cast<NodeId>(n); ++dst) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[dst] = 0;
    std::deque<NodeId> frontier{dst};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      for (const auto& [nbr, toward_nbr] : adj[cur]) {
        (void)toward_nbr;
        if (dist[nbr] != -1) continue;
        dist[nbr] = dist[cur] + 1;
        // Find nbr's device toward cur.
        for (const auto& [nn, dev] : adj[nbr]) {
          if (nn == cur) {
            nodes_[nbr]->set_route(dst, *dev);
            break;
          }
        }
        frontier.push_back(nbr);
      }
    }
  }
}

}  // namespace cebinae
