// A network node: host or switch.
//
// Nodes forward packets via a static routing table (destination node ->
// egress device) and deliver locally-addressed packets to the sink
// registered on the destination port.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/device.hpp"
#include "net/packet.hpp"

namespace cebinae {

class Node {
 public:
  explicit Node(NodeId id) : id_(id) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  Device& add_device(std::unique_ptr<Device> dev);
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] Device& device(std::size_t i) { return *devices_.at(i); }

  // Static routing: packets destined to `dst` leave through `egress`.
  void set_route(NodeId dst, Device& egress);
  // Hot path: NodeIds are dense (assigned sequentially by Network), so the
  // table is a flat vector indexed by destination — one bounds check and one
  // load per forwarded packet instead of a hash lookup.
  [[nodiscard]] Device* route_to(NodeId dst) const {
    return dst < routes_.size() ? routes_[dst] : nullptr;
  }

  // Register/unregister the local sink for a destination port.
  void bind(std::uint16_t port, PacketSink& sink);
  void unbind(std::uint16_t port);

  // Entry point for packets arriving from the wire and for locally
  // originated traffic: delivers locally or forwards via the routing table.
  void receive(Packet pkt);

  // Send a locally originated packet toward pkt.flow.dst.
  void send(Packet pkt);

  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_packets_; }
  [[nodiscard]] std::uint64_t routing_drops() const { return routing_drops_; }

 private:
  [[nodiscard]] PacketSink* sink_for(std::uint16_t port) const;

  NodeId id_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Device*> routes_;  // indexed by destination NodeId
  // A node binds a handful of ports; a scanned flat vector beats a hash map
  // on the delivery path and keeps iteration deterministic.
  std::vector<std::pair<std::uint16_t, PacketSink*>> sinks_;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t routing_drops_ = 0;
};

}  // namespace cebinae
