// Per-scenario packet arena.
//
// In-flight frames (a packet serialized onto a wire, waiting out its
// propagation delay) used to be captured by value inside the propagation
// event's std::function — ~140 bytes of capture, i.e. one heap
// allocation/free per packet hop. The pool recycles Packet storage through
// a free list instead: steady-state runs reach the link's bandwidth-delay
// high-water mark once and never allocate per packet again.
//
// Ownership is RAII through PooledPacket. Release scrubs the packet back to
// default-constructed state, so a recycled slot can never leak stale
// ECN/timestamp/SACK fields into the next packet that reuses it (the ASan
// CI leg plus test_packet_pool.cpp hold this invariant).
//
// A Network owns one pool per scenario; the pool must therefore be declared
// before (destroyed after) the scheduler, whose pending events may hold
// PooledPacket handles.
#pragma once

#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace cebinae {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  [[nodiscard]] Packet* acquire() {
    if (free_.empty()) {
      // std::deque gives stable addresses, so handles stay valid as the
      // pool grows.
      return &storage_.emplace_back();
    }
    Packet* p = free_.back();
    free_.pop_back();
    return p;
  }

  void release(Packet* p) {
    *p = Packet{};  // scrub: no stale fields survive into the next acquire
    free_.push_back(p);
  }

  // Capacity diagnostics: total slots ever created / currently idle.
  [[nodiscard]] std::size_t high_water() const { return storage_.size(); }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  std::deque<Packet> storage_;
  std::vector<Packet*> free_;
};

// Owning handle to a pooled packet. Move-only; returns the packet to its
// pool on destruction. A null pool (devices constructed outside a Network,
// e.g. in unit tests) degrades to plain heap ownership.
class PooledPacket {
 public:
  PooledPacket() = default;
  PooledPacket(PacketPool* pool, Packet pkt)
      : pool_(pool), pkt_(pool != nullptr ? pool->acquire() : new Packet) {
    *pkt_ = std::move(pkt);
  }

  PooledPacket(PooledPacket&& other) noexcept
      : pool_(other.pool_), pkt_(std::exchange(other.pkt_, nullptr)) {}

  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      pkt_ = std::exchange(other.pkt_, nullptr);
    }
    return *this;
  }

  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;

  ~PooledPacket() { reset(); }

  [[nodiscard]] Packet& operator*() { return *pkt_; }
  [[nodiscard]] Packet* operator->() { return pkt_; }
  [[nodiscard]] explicit operator bool() const { return pkt_ != nullptr; }

 private:
  void reset() {
    if (pkt_ == nullptr) return;
    if (pool_ != nullptr) {
      pool_->release(pkt_);
    } else {
      delete pkt_;
    }
    pkt_ = nullptr;
  }

  PacketPool* pool_ = nullptr;
  Packet* pkt_ = nullptr;
};

}  // namespace cebinae
