// Point-to-point network device: one half of a full-duplex link.
//
// A device owns the egress queue disc for its direction. Transmission
// serializes packets at the link rate; propagation adds a fixed delay before
// the peer's node receives the frame.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"
#include "obs/metrics.hpp"
#include "queueing/queue_disc.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

class Node;

class Device {
 public:
  // `metrics` (optional) aggregates transmit accounting across every device
  // of a network into the "net.tx_bytes"/"net.tx_packets" counters.
  // `pool` (optional) recycles in-flight packet storage; without one the
  // propagation event heap-allocates per packet (Network always passes its
  // per-scenario pool).
  Device(Scheduler& sched, Node& owner, std::uint64_t rate_bps, Time prop_delay,
         std::unique_ptr<QueueDisc> qdisc, obs::MetricsRegistry* metrics = nullptr,
         PacketPool* pool = nullptr);

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  void set_peer(Device& peer) { peer_ = &peer; }

  // Enqueue a packet for transmission; starts the transmitter if idle.
  void send(Packet pkt);

  [[nodiscard]] QueueDisc& qdisc() { return *qdisc_; }
  [[nodiscard]] const QueueDisc& qdisc() const { return *qdisc_; }
  [[nodiscard]] std::uint64_t rate_bps() const { return rate_bps_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] Node& owner() { return owner_; }
  [[nodiscard]] Node& peer_node();

  // Total bytes fully serialized onto the wire (the paper's per-port egress
  // transmit counter).
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }
  [[nodiscard]] std::uint64_t tx_packets() const { return tx_packets_; }

  [[nodiscard]] Time serialization_delay(std::uint32_t bytes) const {
    return Time(static_cast<std::int64_t>(bytes) * 8 * 1'000'000'000 /
                static_cast<std::int64_t>(rate_bps_));
  }

 private:
  void try_transmit();

  Scheduler& sched_;
  Node& owner_;
  std::uint64_t rate_bps_;
  Time prop_delay_;
  std::unique_ptr<QueueDisc> qdisc_;
  PacketPool* pool_ = nullptr;  // not owned; may be null
  Device* peer_ = nullptr;
  bool busy_ = false;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
  obs::Counter* tx_bytes_metric_ = nullptr;    // network-wide aggregates; may be null
  obs::Counter* tx_packets_metric_ = nullptr;
};

}  // namespace cebinae
