#include "net/node.hpp"

#include <cassert>
#include <utility>

#include "sim/logging.hpp"

namespace cebinae {

Device& Node::add_device(std::unique_ptr<Device> dev) {
  devices_.push_back(std::move(dev));
  return *devices_.back();
}

Device* Node::route_to(NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : it->second;
}

void Node::bind(std::uint16_t port, PacketSink& sink) {
  assert(sinks_.find(port) == sinks_.end() && "port already bound");
  sinks_[port] = &sink;
}

void Node::unbind(std::uint16_t port) { sinks_.erase(port); }

void Node::receive(Packet pkt) {
  if (pkt.flow.dst == id_) {
    auto it = sinks_.find(pkt.flow.dst_port);
    if (it == sinks_.end()) {
      CEBINAE_WARN("node", "node " << id_ << " has no sink on port " << pkt.flow.dst_port);
      return;
    }
    ++delivered_packets_;
    it->second->deliver(pkt);
    return;
  }
  send(std::move(pkt));
}

void Node::send(Packet pkt) {
  Device* egress = route_to(pkt.flow.dst);
  if (egress == nullptr) {
    ++routing_drops_;
    CEBINAE_WARN("node", "node " << id_ << " has no route to " << pkt.flow.dst);
    return;
  }
  egress->send(std::move(pkt));
}

}  // namespace cebinae
