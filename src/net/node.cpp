#include "net/node.hpp"

#include <cassert>
#include <utility>

#include "sim/logging.hpp"

namespace cebinae {

Device& Node::add_device(std::unique_ptr<Device> dev) {
  devices_.push_back(std::move(dev));
  return *devices_.back();
}

void Node::set_route(NodeId dst, Device& egress) {
  if (dst >= routes_.size()) routes_.resize(dst + 1, nullptr);
  routes_[dst] = &egress;
}

PacketSink* Node::sink_for(std::uint16_t port) const {
  for (const auto& [p, sink] : sinks_) {
    if (p == port) return sink;
  }
  return nullptr;
}

void Node::bind(std::uint16_t port, PacketSink& sink) {
  assert(sink_for(port) == nullptr && "port already bound");
  sinks_.emplace_back(port, &sink);
}

void Node::unbind(std::uint16_t port) {
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->first == port) {
      sinks_.erase(it);
      return;
    }
  }
}

void Node::receive(Packet pkt) {
  if (pkt.flow.dst == id_) {
    PacketSink* sink = sink_for(pkt.flow.dst_port);
    if (sink == nullptr) {
      CEBINAE_WARN("node", "node " << id_ << " has no sink on port " << pkt.flow.dst_port);
      return;
    }
    ++delivered_packets_;
    sink->deliver(pkt);
    return;
  }
  send(std::move(pkt));
}

void Node::send(Packet pkt) {
  Device* egress = route_to(pkt.flow.dst);
  if (egress == nullptr) {
    ++routing_drops_;
    CEBINAE_WARN("node", "node " << id_ << " has no route to " << pkt.flow.dst);
    return;
  }
  egress->send(std::move(pkt));
}

}  // namespace cebinae
