// TCP BIC (Xu, Harfoush, Rhee 2004): binary-increase congestion control,
// Cubic's predecessor; appears in the paper's Table 2 and Fig. 11 workloads.
#pragma once

#include <memory>

#include "tcp/window_cc.hpp"

namespace cebinae {

class Bic final : public WindowCc {
 public:
  explicit Bic(std::uint32_t mss = kMssBytes) : WindowCc(mss) {}

  [[nodiscard]] std::string_view name() const override { return "bic"; }

  static std::unique_ptr<CongestionControl> make(std::uint32_t mss) {
    return std::make_unique<Bic>(mss);
  }

  [[nodiscard]] double w_max_segments() const { return w_max_; }

 private:
  void congestion_avoidance(const AckEvent& ev) override;
  void reduce(Time now) override;

  static constexpr double kBeta = 0.8;      // multiplicative decrease
  static constexpr double kSmax = 16.0;     // max increment (segments/RTT)
  static constexpr double kSmin = 0.01;     // min increment (segments/RTT)
  static constexpr double kLowWindow = 14.0;  // below this, act like Reno

  double w_max_ = 0.0;  // segments
  double increment_accumulator_ = 0.0;
};

}  // namespace cebinae
