// TCP sender and receiver endpoints.
//
// The model covers everything the paper's workloads exercise: bytestream
// transfer with cumulative ACKs, out-of-order reassembly, RTT sampling via
// timestamp echo, fast retransmit / NewReno-style recovery, RTO with
// exponential backoff, optional pacing (used by BBR), and ECN. Connection
// setup/teardown (SYN/FIN) is omitted: sockets are born connected, which the
// long-lived infinite-demand flows in the evaluation never notice.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/interval_set.hpp"
#include "tcp/rtt_estimator.hpp"

namespace cebinae {

class TcpReceiver final : public PacketSink {
 public:
  // Callback invoked on every in-order application-level delivery; used by
  // metrics collection (goodput accounting).
  using DeliveryCallback = std::function<void(const FlowId& flow, std::uint64_t bytes, Time now)>;

  TcpReceiver(Scheduler& sched, Node& local, FlowId data_flow);
  ~TcpReceiver() override;

  void deliver(const Packet& pkt) override;

  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  [[nodiscard]] std::uint64_t delivered_bytes() const { return delivered_bytes_; }
  [[nodiscard]] std::uint64_t rcv_next() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t ooo_bytes() const;
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void send_ack(const Packet& data_pkt);

  Scheduler& sched_;
  Node& local_;
  FlowId data_flow_;  // the forward (data) direction; ACKs use its reverse
  std::uint64_t rcv_nxt_ = 0;
  IntervalSet ooo_;  // received-but-not-yet-in-order byte ranges
  // Interval holding the most recently arrived data; advertised first in the
  // SACK option (RFC 2018) so the sender's scoreboard converges even when
  // there are far more than 3 holes.
  Packet::SackBlock latest_block_{};
  std::uint64_t sack_rotation_seq_ = 0;  // round-robin cursor over ooo_
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t acks_sent_ = 0;
  bool ece_pending_ = false;
  DeliveryCallback on_delivery_;
};

class TcpSender final : public PacketSink {
 public:
  struct Config {
    FlowId flow;  // data direction: flow.src must be the local node
    std::uint32_t mss = kMssBytes;
    std::uint64_t rcv_wnd = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t bytes_to_send = std::numeric_limits<std::uint64_t>::max();
    bool ecn_capable = false;
    // Selective acknowledgments (RFC 2018); on by default, matching modern
    // stacks (and ns-3.35, which the paper's simulations use).
    bool sack = true;
    Time start_time;
    Time stop_time = Time::max();  // stop offering new data after this time
    // Optional observability hookup (the owning Network's registry).
    // Aggregated across senders: "tcp.retransmits", "tcp.rtos",
    // "tcp.fast_retransmits" counters and a "tcp.srtt_s" sample histogram.
    obs::MetricsRegistry* metrics = nullptr;
  };

  TcpSender(Scheduler& sched, Node& local, std::unique_ptr<CongestionControl> cc, Config config);
  ~TcpSender() override;

  // Schedules the first transmission at config.start_time.
  void start();

  void deliver(const Packet& pkt) override;  // ACK arrival

  [[nodiscard]] const CongestionControl& cc() const { return *cc_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] const FlowId& flow() const { return config_.flow; }

  [[nodiscard]] std::uint64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return total_sent_bytes_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t rto_count() const { return rto_count_; }
  [[nodiscard]] std::uint64_t fast_retransmit_count() const { return fast_retransmits_; }
  [[nodiscard]] std::uint64_t bytes_in_flight() const { return snd_nxt_ - snd_una_; }
  // RFC 6675-style pipe estimate: bytes believed to be in the network.
  // SACKed bytes were delivered; segments marked lost (a SACK above them)
  // have left the network unless retransmitted.
  [[nodiscard]] std::uint64_t pipe_bytes() const {
    return snd_nxt_ - snd_una_ - sacked_bytes_ - lost_bytes_;
  }
  enum class LossMode { kNone, kFastRecovery, kRtoRecovery };
  [[nodiscard]] bool in_recovery() const { return loss_mode_ != LossMode::kNone; }
  [[nodiscard]] LossMode loss_mode() const { return loss_mode_; }
  [[nodiscard]] std::uint64_t sacked_bytes_dbg() const { return sacked_bytes_; }
  [[nodiscard]] std::uint64_t lost_bytes_dbg() const { return lost_bytes_; }

 private:
  struct SegMeta {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;
    Time sent_time;
    std::uint64_t delivered_at_send = 0;
    Time delivered_stamp_at_send;  // time of the last delivery event at send
    bool retransmitted = false;
    bool sacked = false;
    bool counted_lost = false;  // deducted from the pipe estimate
  };

  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool is_retransmission);
  // Classic NewReno retransmission of the first unacknowledged segment
  // (non-SACK mode).
  void retransmit_front();
  // Retransmit the first known-lost, not-yet-retransmitted segment.
  // Returns true when a segment was retransmitted.
  bool retransmit_hole();
  // Retransmit holes while the pipe estimate leaves window headroom.
  void repair_holes();
  void process_sack(const Packet& ack);
  // RTO: mark every unSACKed outstanding segment lost (CA_Loss semantics).
  void mark_all_lost();
  void on_new_ack(const Packet& ack);
  void on_dup_ack();
  void on_rto_fire();
  void arm_rto();
  void disarm_rto();
  [[nodiscard]] std::uint64_t send_window() const;
  [[nodiscard]] bool demand_exhausted() const;

  Scheduler& sched_;
  Node& local_;
  std::unique_ptr<CongestionControl> cc_;
  Config config_;
  RttEstimator rtt_;

  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t delivered_ = 0;   // cumulative bytes known delivered
  Time delivered_stamp_;          // when delivered_ last advanced

  std::deque<SegMeta> unacked_;

  std::uint32_t dup_acks_ = 0;
  bool pending_ece_ = false;
  LossMode loss_mode_ = LossMode::kNone;
  std::uint64_t recover_ = 0;
  std::uint64_t recovery_extra_ = 0;  // non-SACK dup-ACK window inflation
  std::uint64_t sacked_bytes_ = 0;
  std::uint64_t lost_bytes_ = 0;      // unSACKed, unretransmitted, below highest SACK
  std::uint64_t highest_sacked_ = 0;  // end of the highest SACKed range
  std::uint64_t lost_scan_seq_ = 0;   // loss-marking watermark

  // Proportional Rate Reduction (RFC 6937): paces transmissions during fast
  // recovery to the ACK clock so hole repairs are not burst-dropped.
  std::uint64_t prr_delivered_ = 0;
  std::uint64_t prr_out_ = 0;
  std::uint64_t recover_fs_ = 0;  // flight size at recovery entry
  [[nodiscard]] std::uint64_t prr_budget() const;

  // RTT-round tracking (Vegas/BBR need per-round hooks).
  std::uint64_t round_end_seq_ = 0;
  std::uint64_t round_count_ = 0;

  EventId rto_timer_;
  EventId pacing_timer_;
  Time last_send_time_ = Time::zero();
  Time next_pacing_gate_ = Time::zero();

  std::uint64_t total_sent_bytes_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t rto_count_ = 0;
  std::uint64_t fast_retransmits_ = 0;
  bool started_ = false;

  // Aggregate metric cells (null when the socket runs unregistered).
  obs::Counter* m_retransmits_ = nullptr;
  obs::Counter* m_rtos_ = nullptr;
  obs::Counter* m_fast_retransmits_ = nullptr;
  obs::Histogram* m_srtt_ = nullptr;
};

}  // namespace cebinae
