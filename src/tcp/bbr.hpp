// TCP BBR v1 (Cardwell et al. 2016): model-based congestion control that
// paces at the estimated bottleneck bandwidth and caps inflight at a multiple
// of the estimated BDP, largely ignoring packet loss. The paper evaluates
// BBR as the canonical loss-agnostic aggressor (Table 2, Fig. 8a).
#pragma once

#include <memory>

#include "net/packet.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/windowed_filter.hpp"

namespace cebinae {

class Bbr final : public CongestionControl {
 public:
  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };

  explicit Bbr(std::uint32_t mss = kMssBytes)
      : mss_(mss),
        cwnd_(static_cast<std::uint64_t>(mss) * 10),
        btl_bw_filter_(kBwWindowRounds) {}

  [[nodiscard]] std::string_view name() const override { return "bbr"; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] double pacing_rate_Bps() const override { return pacing_rate_; }
  [[nodiscard]] bool in_slow_start() const override { return mode_ == Mode::kStartup; }

  void on_ack(const AckEvent& ev) override;
  void on_loss(Time now, std::uint64_t bytes_in_flight) override;
  void on_rto(Time now) override;

  static std::unique_ptr<CongestionControl> make(std::uint32_t mss) {
    return std::make_unique<Bbr>(mss);
  }

  // Exposed for unit tests.
  [[nodiscard]] Mode mode() const { return mode_; }
  [[nodiscard]] double btl_bw_Bps() const { return btl_bw_filter_.get(); }
  [[nodiscard]] Time min_rtt() const { return min_rtt_; }

 private:
  static constexpr double kHighGain = 2.885;        // 2/ln(2)
  static constexpr double kDrainGain = 1.0 / 2.885;
  static constexpr double kCwndGain = 2.0;
  static constexpr int kBwWindowRounds = 10;
  static constexpr int kGainCycleLen = 8;
  static constexpr double kPacingGainCycle[kGainCycleLen] = {1.25, 0.75, 1, 1, 1, 1, 1, 1};
  static constexpr Time kMinRttWindow = Seconds(10);
  static constexpr Time kProbeRttDuration = Milliseconds(200);

  void update_model(const AckEvent& ev);
  void update_state(const AckEvent& ev);
  void update_control(const AckEvent& ev);
  [[nodiscard]] std::uint64_t bdp_bytes(double gain) const;
  void enter_probe_bw(Time now);

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  double pacing_rate_ = 0.0;

  Mode mode_ = Mode::kStartup;
  WindowedFilter<double, std::int64_t, MaxCompare> btl_bw_filter_;  // keyed by round count
  std::int64_t round_count_ = 0;

  Time min_rtt_ = Time::max();
  Time min_rtt_stamp_ = Time::zero();
  bool min_rtt_expired_ = false;
  Time probe_rtt_done_stamp_ = Time::zero();
  bool probe_rtt_round_done_ = false;

  double full_bw_ = 0.0;
  int full_bw_count_ = 0;
  bool filled_pipe_ = false;

  int cycle_index_ = 0;
  Time cycle_stamp_ = Time::zero();

  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;
};

}  // namespace cebinae
