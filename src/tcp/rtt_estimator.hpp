// RTT estimation and retransmission timeout per RFC 6298.
#pragma once

#include "sim/time.hpp"

namespace cebinae {

class RttEstimator {
 public:
  struct Params {
    Time initial_rto = Seconds(1);
    Time min_rto = Milliseconds(200);  // Linux-style floor
    Time max_rto = Seconds(60);
  };

  RttEstimator() : RttEstimator(Params()) {}
  explicit RttEstimator(Params params) : params_(params), rto_(params.initial_rto) {}

  void on_sample(Time rtt);

  // Exponential backoff after a retransmission timeout (Karn's algorithm).
  void backoff();

  [[nodiscard]] Time rto() const { return rto_; }
  [[nodiscard]] Time srtt() const { return srtt_; }
  [[nodiscard]] Time rttvar() const { return rttvar_; }
  [[nodiscard]] Time min_rtt() const { return min_rtt_; }
  [[nodiscard]] bool has_sample() const { return has_sample_; }

 private:
  void clamp_rto();

  Params params_;
  Time srtt_ = Time::zero();
  Time rttvar_ = Time::zero();
  Time min_rtt_ = Time::max();
  Time rto_;
  bool has_sample_ = false;
};

}  // namespace cebinae
