// TCP Vegas (Brakmo & Peterson 1994): delay-based congestion avoidance.
// The paper uses Vegas as the canonical victim CCA — it backs off on queueing
// delay long before loss-based competitors do, so FIFO starves it.
#pragma once

#include <limits>
#include <memory>

#include "net/packet.hpp"
#include "tcp/congestion_control.hpp"

namespace cebinae {

class Vegas final : public CongestionControl {
 public:
  explicit Vegas(std::uint32_t mss = kMssBytes)
      : mss_(mss), cwnd_(static_cast<std::uint64_t>(mss) * 10) {}

  [[nodiscard]] std::string_view name() const override { return "vegas"; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const override { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const override { return cwnd_ < ssthresh_; }

  void on_ack(const AckEvent& ev) override;
  void on_loss(Time now, std::uint64_t bytes_in_flight) override;
  void on_rto(Time now) override;

  static std::unique_ptr<CongestionControl> make(std::uint32_t mss) {
    return std::make_unique<Vegas>(mss);
  }

  // Exposed for unit tests.
  [[nodiscard]] Time base_rtt() const { return base_rtt_; }

 private:
  // Vegas thresholds in queued segments.
  static constexpr double kAlpha = 2.0;
  static constexpr double kBeta = 4.0;
  static constexpr double kGamma = 1.0;

  void round_update();

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();

  Time base_rtt_ = Time::max();   // lifetime minimum RTT (propagation estimate)
  Time round_min_rtt_ = Time::max();
  std::uint32_t round_samples_ = 0;
  bool grow_this_round_ = true;   // slow start doubles every *other* RTT
};

}  // namespace cebinae
