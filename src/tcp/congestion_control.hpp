// Pluggable congestion control interface.
//
// The socket owns loss detection (dup-ACK counting, RTO timers, recovery
// bookkeeping) and calls into the algorithm at well-defined points, mirroring
// the split between Linux's tcp_input.c and its CC modules. Algorithms
// control the congestion window and, optionally, a pacing rate.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/time.hpp"

namespace cebinae {

struct AckEvent {
  Time now;
  std::uint64_t acked_bytes = 0;     // bytes newly acknowledged by this ACK
  Time rtt;                          // RTT sample (zero when unavailable)
  std::uint64_t bytes_in_flight = 0; // after processing this ACK
  std::uint64_t delivered = 0;       // total bytes delivered so far
  double delivery_rate_Bps = 0.0;    // per-ACK delivery rate sample (0 if none)
  bool ece = false;                  // ECN congestion echo
  bool round_start = false;          // first ACK of a new RTT round
  bool in_recovery = false;          // socket is in loss recovery
  Time min_rtt;                      // connection-lifetime minimum RTT
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void on_ack(const AckEvent& ev) = 0;

  // Loss inferred via fast retransmit (entering recovery). Called once per
  // recovery episode, not per lost packet.
  virtual void on_loss(Time now, std::uint64_t bytes_in_flight) = 0;

  // Retransmission timeout fired.
  virtual void on_rto(Time now) = 0;

  [[nodiscard]] virtual std::uint64_t cwnd_bytes() const = 0;

  // Bytes/second; 0 disables pacing (pure window-based transmission).
  [[nodiscard]] virtual double pacing_rate_Bps() const { return 0.0; }

  [[nodiscard]] virtual bool in_slow_start() const { return false; }
  [[nodiscard]] virtual std::string_view name() const = 0;
};

// Factory signature used by scenario configuration.
using CongestionControlFactory = std::unique_ptr<CongestionControl> (*)(std::uint32_t mss);

}  // namespace cebinae
