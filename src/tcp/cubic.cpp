#include "tcp/cubic.hpp"

#include <cmath>

namespace cebinae {

void Cubic::on_slow_start_ack(const AckEvent& ev) {
  if (ev.round_start) {
    hystart_last_min_ = hystart_samples_ >= 3 ? hystart_curr_min_ : Time::max();
    hystart_curr_min_ = Time::max();
    hystart_samples_ = 0;
  }
  if (ev.rtt > Time::zero()) {
    hystart_curr_min_ = std::min(hystart_curr_min_, ev.rtt);
    ++hystart_samples_;
  }
  if (cwnd_ < 16ull * mss_ || hystart_last_min_ == Time::max() ||
      hystart_curr_min_ == Time::max() || hystart_samples_ < 3) {
    return;
  }
  // Linux's delay threshold: last_min/8, clamped to [4ms, 16ms].
  const Time eta = std::clamp(hystart_last_min_ / 8, Milliseconds(4), Milliseconds(16));
  if (hystart_curr_min_ >= hystart_last_min_ + eta) {
    ssthresh_ = cwnd_;  // leave slow start before the queue overflows
  }
}

void Cubic::congestion_avoidance(const AckEvent& ev) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  if (ev.rtt > Time::zero()) min_rtt_ = ev.min_rtt;

  if (epoch_start_ == Time::zero()) {
    epoch_start_ = ev.now;
    ack_cnt_ = 0.0;
    if (cwnd_seg < w_max_) {
      k_ = std::cbrt((w_max_ - cwnd_seg) / kC);
      origin_point_ = w_max_;
    } else {
      k_ = 0.0;
      origin_point_ = cwnd_seg;
    }
    w_est_ = cwnd_seg;
  }

  ack_cnt_ += static_cast<double>(ev.acked_bytes) / mss_;

  // Cubic window at one RTT in the future (so growth anticipates the curve).
  const double t = (ev.now - epoch_start_).seconds() + min_rtt_.seconds();
  const double target = origin_point_ + kC * std::pow(t - k_, 3.0);

  double cnt;  // ACKs (in segments) per segment of window growth
  if (target > cwnd_seg) {
    cnt = cwnd_seg / (target - cwnd_seg);
  } else {
    cnt = 100.0 * cwnd_seg;  // effectively hold the window
  }

  // TCP-friendly region: grow a Reno-equivalent estimate (with beta = 0.7,
  // one ACKed window adds 3(1-beta)/(1+beta) segments per RTT) and never run
  // slower than it.
  w_est_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) *
            (static_cast<double>(ev.acked_bytes) / mss_) / std::max(cwnd_seg, 1.0);
  if (w_est_ > cwnd_seg && cwnd_seg / (w_est_ - cwnd_seg) < cnt) {
    cnt = cwnd_seg / (w_est_ - cwnd_seg);
  }

  cnt = std::max(cnt, 0.01);
  const double increment = static_cast<double>(mss_) / cnt *
                           (static_cast<double>(ev.acked_bytes) / mss_);
  // Never grow faster than slow start would (Linux bounds the same way);
  // this tames jumbo cumulative ACKs after recovery.
  cwnd_ += std::min<std::uint64_t>(static_cast<std::uint64_t>(increment), ev.acked_bytes);
}

void Cubic::reduce(Time /*now*/) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  // Fast convergence: release extra bandwidth when the window shrank since
  // the last loss event (another flow is ramping up).
  if (cwnd_seg < w_max_) {
    w_max_ = cwnd_seg * (2.0 - kBeta) / 2.0;
  } else {
    w_max_ = cwnd_seg;
  }
  epoch_start_ = Time::zero();
  ssthresh_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(cwnd_ * kBeta), 2 * mss_);
  cwnd_ = ssthresh_;
}

void Cubic::on_timeout_reset(Time /*now*/) {
  epoch_start_ = Time::zero();
  w_max_ = static_cast<double>(cwnd_) / mss_;
}

}  // namespace cebinae
