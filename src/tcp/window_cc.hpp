// Shared base for window-based (loss/ECN reactive) congestion control:
// slow start, ECE handling with a once-per-RTT reduction guard, and the
// common RTO response. Subclasses supply the congestion-avoidance increase
// rule and the multiplicative-decrease rule.
#pragma once

#include <algorithm>
#include <limits>

#include "net/packet.hpp"
#include "tcp/congestion_control.hpp"

namespace cebinae {

class WindowCc : public CongestionControl {
 public:
  [[nodiscard]] std::uint64_t cwnd_bytes() const final { return cwnd_; }
  [[nodiscard]] bool in_slow_start() const final { return cwnd_ < ssthresh_; }

  void on_ack(const AckEvent& ev) final {
    // No window growth while repairing losses (Linux: cong_avoid is not
    // called in CA_Recovery/CA_Loss).
    if (ev.in_recovery) return;
    if (ev.ece && can_reduce(ev)) {
      // ECN congestion echo: multiplicative decrease without retransmission.
      last_reduction_ = ev.now;
      reduce(ev.now);
      return;
    }
    if (in_slow_start()) {
      on_slow_start_ack(ev);  // may exit slow start (e.g., HyStart)
      if (in_slow_start()) {
        cwnd_ += std::min<std::uint64_t>(ev.acked_bytes, 2 * mss_);
        clamp();
        return;
      }
    }
    congestion_avoidance(ev);
    clamp();
  }

  void on_loss(Time now, std::uint64_t /*bytes_in_flight*/) override {
    last_reduction_ = now;
    reduce(now);
    clamp();
  }

  void on_rto(Time now) override {
    last_reduction_ = now;
    ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * mss_);
    cwnd_ = mss_;
    on_timeout_reset(now);
  }

 protected:
  explicit WindowCc(std::uint32_t mss, std::uint32_t initial_window_segments = 10)
      : mss_(mss), cwnd_(static_cast<std::uint64_t>(mss) * initial_window_segments) {}

  // Additive-increase step while cwnd >= ssthresh.
  virtual void congestion_avoidance(const AckEvent& ev) = 0;

  // Hook invoked on every slow-start ACK before the exponential increase;
  // implementations may lower ssthresh_ to terminate slow start early.
  virtual void on_slow_start_ack(const AckEvent& /*ev*/) {}

  // Multiplicative decrease on loss/ECN; must update cwnd_ and ssthresh_.
  virtual void reduce(Time now) = 0;

  // Extra state reset after an RTO (e.g., Cubic clears its epoch).
  virtual void on_timeout_reset(Time /*now*/) {}

  void clamp() { cwnd_ = std::max<std::uint64_t>(cwnd_, 2 * mss_); }

  [[nodiscard]] bool can_reduce(const AckEvent& ev) const {
    // At most one reduction per RTT so a burst of marks is a single signal.
    const Time guard = ev.rtt > Time::zero() ? ev.rtt : Milliseconds(10);
    return ev.now - last_reduction_ >= guard;
  }

  std::uint32_t mss_;
  std::uint64_t cwnd_;
  std::uint64_t ssthresh_ = std::numeric_limits<std::uint64_t>::max();
  Time last_reduction_ = Time::zero();
};

}  // namespace cebinae
