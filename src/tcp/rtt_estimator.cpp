#include "tcp/rtt_estimator.hpp"

#include <algorithm>
#include <cstdlib>

namespace cebinae {

void RttEstimator::on_sample(Time rtt) {
  if (rtt <= Time::zero()) return;
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT <- R, RTTVAR <- R/2.
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    has_sample_ = true;
  } else {
    // RFC 6298 (2.3) with alpha = 1/8, beta = 1/4.
    const Time err = Time(std::abs((rtt - srtt_).ns()));
    rttvar_ = Time((3 * rttvar_.ns() + err.ns()) / 4);
    srtt_ = Time((7 * srtt_.ns() + rtt.ns()) / 8);
  }
  rto_ = srtt_ + std::max(Time(1), 4 * rttvar_);
  clamp_rto();
}

void RttEstimator::backoff() {
  rto_ = rto_ * 2;
  clamp_rto();
}

void RttEstimator::clamp_rto() {
  rto_ = std::clamp(rto_, params_.min_rto, params_.max_rto);
}

}  // namespace cebinae
