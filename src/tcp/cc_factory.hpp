// String/enum registry of the congestion control algorithms used by the
// paper's evaluation (Table 2 and all figures).
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "tcp/bbr.hpp"
#include "tcp/bic.hpp"
#include "tcp/cubic.hpp"
#include "tcp/new_reno.hpp"
#include "tcp/vegas.hpp"

namespace cebinae {

enum class CcaType { kNewReno, kCubic, kBic, kVegas, kBbr };

inline std::unique_ptr<CongestionControl> make_cc(CcaType type, std::uint32_t mss = kMssBytes) {
  switch (type) {
    case CcaType::kNewReno:
      return NewReno::make(mss);
    case CcaType::kCubic:
      return Cubic::make(mss);
    case CcaType::kBic:
      return Bic::make(mss);
    case CcaType::kVegas:
      return Vegas::make(mss);
    case CcaType::kBbr:
      return Bbr::make(mss);
  }
  throw std::invalid_argument("unknown CCA type");
}

inline std::string_view to_string(CcaType type) {
  switch (type) {
    case CcaType::kNewReno:
      return "NewReno";
    case CcaType::kCubic:
      return "Cubic";
    case CcaType::kBic:
      return "Bic";
    case CcaType::kVegas:
      return "Vegas";
    case CcaType::kBbr:
      return "BBR";
  }
  return "?";
}

inline CcaType cca_from_string(std::string_view name) {
  if (name == "NewReno" || name == "newreno") return CcaType::kNewReno;
  if (name == "Cubic" || name == "cubic") return CcaType::kCubic;
  if (name == "Bic" || name == "bic") return CcaType::kBic;
  if (name == "Vegas" || name == "vegas") return CcaType::kVegas;
  if (name == "BBR" || name == "bbr") return CcaType::kBbr;
  throw std::invalid_argument("unknown CCA name: " + std::string(name));
}

}  // namespace cebinae
