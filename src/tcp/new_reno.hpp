// TCP NewReno (RFC 6582): classic AIMD, the paper's representative
// loss-based algorithm.
#pragma once

#include <memory>

#include "tcp/window_cc.hpp"

namespace cebinae {

class NewReno final : public WindowCc {
 public:
  explicit NewReno(std::uint32_t mss = kMssBytes) : WindowCc(mss) {}

  [[nodiscard]] std::string_view name() const override { return "newreno"; }

  static std::unique_ptr<CongestionControl> make(std::uint32_t mss) {
    return std::make_unique<NewReno>(mss);
  }

 private:
  void congestion_avoidance(const AckEvent& ev) override;
  void reduce(Time now) override;
};

}  // namespace cebinae
