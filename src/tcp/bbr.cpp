#include "tcp/bbr.hpp"

#include <algorithm>

namespace cebinae {

std::uint64_t Bbr::bdp_bytes(double gain) const {
  if (min_rtt_ == Time::max()) return 0;
  const double bdp = btl_bw_filter_.get() * min_rtt_.seconds();
  return static_cast<std::uint64_t>(gain * bdp);
}

void Bbr::update_model(const AckEvent& ev) {
  if (ev.round_start) ++round_count_;
  if (ev.delivery_rate_Bps > 0) {
    btl_bw_filter_.update(ev.delivery_rate_Bps, round_count_);
  }
  // Expiry must be judged before refreshing the filter, or the stale-min
  // signal that triggers PROBE_RTT would never be observed.
  min_rtt_expired_ = min_rtt_ != Time::max() && ev.now - min_rtt_stamp_ > kMinRttWindow;
  if (ev.rtt > Time::zero() && (ev.rtt <= min_rtt_ || min_rtt_expired_)) {
    min_rtt_ = ev.rtt;
    min_rtt_stamp_ = ev.now;
  }
}

void Bbr::enter_probe_bw(Time now) {
  mode_ = Mode::kProbeBw;
  // Start in a neutral phase (index 2) so flows do not synchronize their
  // probe spikes at the handoff from DRAIN.
  cycle_index_ = 2;
  cycle_stamp_ = now;
}

void Bbr::update_state(const AckEvent& ev) {
  switch (mode_) {
    case Mode::kStartup:
      if (ev.round_start) {
        // Pipe considered full when bandwidth stops growing 25% per round
        // for three consecutive rounds.
        const double bw = btl_bw_filter_.get();
        if (bw >= full_bw_ * 1.25) {
          full_bw_ = bw;
          full_bw_count_ = 0;
        } else if (bw > 0) {
          ++full_bw_count_;
        }
        if (full_bw_count_ >= 3) {
          filled_pipe_ = true;
          mode_ = Mode::kDrain;
        }
      }
      break;
    case Mode::kDrain:
      if (ev.bytes_in_flight <= bdp_bytes(1.0)) enter_probe_bw(ev.now);
      break;
    case Mode::kProbeBw:
      if (min_rtt_ != Time::max() && ev.now - cycle_stamp_ > min_rtt_) {
        cycle_index_ = (cycle_index_ + 1) % kGainCycleLen;
        cycle_stamp_ = ev.now;
      }
      break;
    case Mode::kProbeRtt:
      if (probe_rtt_done_stamp_ == Time::zero() &&
          ev.bytes_in_flight <= 4ull * mss_) {
        probe_rtt_done_stamp_ = ev.now + kProbeRttDuration;
        probe_rtt_round_done_ = false;
      } else if (probe_rtt_done_stamp_ != Time::zero()) {
        if (ev.round_start) probe_rtt_round_done_ = true;
        if (probe_rtt_round_done_ && ev.now >= probe_rtt_done_stamp_) {
          min_rtt_stamp_ = ev.now;
          if (filled_pipe_) {
            enter_probe_bw(ev.now);
          } else {
            mode_ = Mode::kStartup;
          }
        }
      }
      break;
  }

  // Enter PROBE_RTT whenever the min-RTT estimate has gone stale.
  if (mode_ != Mode::kProbeRtt && min_rtt_expired_) {
    mode_ = Mode::kProbeRtt;
    probe_rtt_done_stamp_ = Time::zero();
  }
}

void Bbr::update_control(const AckEvent& ev) {
  switch (mode_) {
    case Mode::kStartup:
      pacing_gain_ = kHighGain;
      cwnd_gain_ = kHighGain;
      break;
    case Mode::kDrain:
      pacing_gain_ = kDrainGain;
      cwnd_gain_ = kHighGain;
      break;
    case Mode::kProbeBw:
      pacing_gain_ = kPacingGainCycle[cycle_index_];
      cwnd_gain_ = kCwndGain;
      break;
    case Mode::kProbeRtt:
      pacing_gain_ = 1.0;
      cwnd_gain_ = 1.0;
      break;
  }

  const double bw = btl_bw_filter_.get();
  if (bw > 0) pacing_rate_ = pacing_gain_ * bw;

  if (mode_ == Mode::kProbeRtt) {
    cwnd_ = 4ull * mss_;
    return;
  }

  const std::uint64_t target = std::max<std::uint64_t>(bdp_bytes(cwnd_gain_), 4ull * mss_);
  if (bw == 0 || min_rtt_ == Time::max()) {
    // No model yet: exponential growth like slow start.
    cwnd_ += std::min<std::uint64_t>(ev.acked_bytes, 2 * mss_);
  } else if (cwnd_ < target) {
    // Grow toward the target at most one acked-byte batch at a time.
    cwnd_ = std::min(cwnd_ + ev.acked_bytes, target);
  } else {
    cwnd_ = target;
  }
}

void Bbr::on_ack(const AckEvent& ev) {
  update_model(ev);
  update_state(ev);
  update_control(ev);
}

void Bbr::on_loss(Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  // BBRv1 deliberately does not reduce its rate on packet loss; the model
  // (bw, min_rtt) fully determines the operating point.
}

void Bbr::on_rto(Time /*now*/) {
  // Conservation after a timeout; the next ACK restores the model-driven
  // window.
  cwnd_ = mss_;
}

}  // namespace cebinae
