#include "tcp/tcp_socket.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/logging.hpp"

namespace cebinae {

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(Scheduler& sched, Node& local, FlowId data_flow)
    : sched_(sched), local_(local), data_flow_(data_flow) {
  assert(data_flow_.dst == local_.id());
  local_.bind(data_flow_.dst_port, *this);
}

TcpReceiver::~TcpReceiver() { local_.unbind(data_flow_.dst_port); }

std::uint64_t TcpReceiver::ooo_bytes() const { return ooo_.total_bytes(); }

void TcpReceiver::deliver(const Packet& pkt) {
  if (pkt.kind != Packet::Kind::kTcpData) return;
  if (pkt.ce) ece_pending_ = true;

  const std::uint64_t seq = pkt.seq;
  const std::uint64_t end = pkt.seq_end();

  if (end <= rcv_nxt_) {
    // Pure duplicate; still ACK to keep the sender's clock going.
    send_ack(pkt);
    return;
  }

  if (seq <= rcv_nxt_) {
    // In-order (possibly partially duplicate) data; drain any out-of-order
    // intervals now contiguous.
    rcv_nxt_ = end;
    ooo_.drain_into(rcv_nxt_);
  } else {
    // Out of order: insert [seq, end) into the interval set, merging
    // overlaps; the merged block becomes the SACK option's first entry.
    const IntervalSet::Block merged = ooo_.add(seq, end);
    latest_block_ = Packet::SackBlock{merged.begin, merged.end};
  }

  const std::uint64_t newly = rcv_nxt_ - delivered_bytes_;
  if (newly > 0) {
    delivered_bytes_ = rcv_nxt_;
    if (on_delivery_) on_delivery_(data_flow_, newly, sched_.now());
  }
  send_ack(pkt);
}

void TcpReceiver::send_ack(const Packet& data_pkt) {
  Packet ack;
  ack.flow = data_flow_.reversed();
  ack.kind = Packet::Kind::kTcpAck;
  ack.size_bytes = kAckBytes;
  ack.ack = rcv_nxt_;
  ack.ts_echo = data_pkt.ts_sent;
  ack.ece = ece_pending_;
  // SACK option: the block containing the most recent arrival first
  // (RFC 2018), then older ranges in rotation so the whole out-of-order map
  // is eventually advertised even when it has many holes.
  if (latest_block_.end > rcv_nxt_ && latest_block_.end > latest_block_.begin) {
    ack.sack[ack.sack_count++] =
        Packet::SackBlock{std::max(latest_block_.begin, rcv_nxt_), latest_block_.end};
  }
  if (!ooo_.empty()) {
    std::size_t idx = ooo_.lower_bound(sack_rotation_seq_);
    for (std::size_t i = 0; i < ooo_.size() && ack.sack_count < ack.sack.size(); ++i) {
      if (idx == ooo_.size()) idx = 0;
      if (ooo_[idx].begin != latest_block_.begin) {
        ack.sack[ack.sack_count++] = Packet::SackBlock{ooo_[idx].begin, ooo_[idx].end};
      }
      ++idx;
    }
    sack_rotation_seq_ = idx == ooo_.size() ? 0 : ooo_[idx].begin;
  }
  ece_pending_ = false;
  ++acks_sent_;
  local_.send(std::move(ack));
}

// ---------------------------------------------------------------------------
// TcpSender
// ---------------------------------------------------------------------------

TcpSender::TcpSender(Scheduler& sched, Node& local, std::unique_ptr<CongestionControl> cc,
                     Config config)
    : sched_(sched), local_(local), cc_(std::move(cc)), config_(config) {
  assert(config_.flow.src == local_.id());
  assert(cc_ != nullptr);
  local_.bind(config_.flow.src_port, *this);
  if (config_.metrics != nullptr) {
    m_retransmits_ = &config_.metrics->counter("tcp.retransmits");
    m_rtos_ = &config_.metrics->counter("tcp.rtos");
    m_fast_retransmits_ = &config_.metrics->counter("tcp.fast_retransmits");
    m_srtt_ = &config_.metrics->histogram("tcp.srtt_s");
  }
}

TcpSender::~TcpSender() {
  sched_.cancel(rto_timer_);
  sched_.cancel(pacing_timer_);
  local_.unbind(config_.flow.src_port);
}

void TcpSender::start() {
  sched_.schedule_at(config_.start_time, [this] {
    started_ = true;
    try_send();
  });
}

std::uint64_t TcpSender::send_window() const {
  return std::min(cc_->cwnd_bytes() + recovery_extra_, config_.rcv_wnd);
}

void TcpSender::process_sack(const Packet& ack) {
  if (!config_.sack || ack.sack_count == 0) return;
  for (std::uint8_t b = 0; b < ack.sack_count; ++b) {
    const auto& block = ack.sack[b];
    // unacked_ is sorted by seq; locate the block's range.
    auto it = std::lower_bound(unacked_.begin(), unacked_.end(), block.begin,
                               [](const SegMeta& m, std::uint64_t seq) { return m.seq < seq; });
    for (; it != unacked_.end() && it->seq + it->len <= block.end; ++it) {
      if (!it->sacked) {
        it->sacked = true;
        sacked_bytes_ += it->len;
        // SACKed bytes are delivered bytes (Linux counts them in
        // tp->delivered at SACK time, which keeps rate samples honest when a
        // later cumulative ACK jumps over them).
        delivered_ += it->len;
        delivered_stamp_ = sched_.now();
        if (loss_mode_ == LossMode::kFastRecovery) prr_delivered_ += it->len;
        if (it->counted_lost) {
          it->counted_lost = false;
          lost_bytes_ -= it->len;
        }
      }
    }
    highest_sacked_ = std::max(highest_sacked_, block.end);
  }

  // Mark newly revealed holes as lost: unSACKed segments below the highest
  // SACK have (with no reordering in this network) left the network.
  if (highest_sacked_ > lost_scan_seq_) {
    const std::uint64_t from = std::max(lost_scan_seq_, snd_una_);
    auto it = std::lower_bound(unacked_.begin(), unacked_.end(), from,
                               [](const SegMeta& m, std::uint64_t seq) { return m.seq < seq; });
    for (; it != unacked_.end() && it->seq + it->len <= highest_sacked_; ++it) {
      if (!it->sacked && !it->retransmitted && !it->counted_lost) {
        it->counted_lost = true;
        lost_bytes_ += it->len;
      }
    }
    lost_scan_seq_ = highest_sacked_;
  }
}

bool TcpSender::retransmit_hole() {
  for (SegMeta& m : unacked_) {
    if (m.sacked || m.retransmitted) continue;
    if (!m.counted_lost) return false;  // ordered: no further known losses
    // The retransmission puts the segment back into the network.
    m.counted_lost = false;
    lost_bytes_ -= m.len;
    m.sent_time = sched_.now();
    m.delivered_at_send = delivered_;
    m.delivered_stamp_at_send = delivered_stamp_;
    m.retransmitted = true;
    ++retransmissions_;
    if (m_retransmits_ != nullptr) m_retransmits_->inc();
    send_segment(m.seq, m.len, /*is_retransmission=*/true);
    return true;
  }
  return false;
}

std::uint64_t TcpSender::prr_budget() const {
  if (loss_mode_ != LossMode::kFastRecovery) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  const std::uint64_t target = cc_->cwnd_bytes();
  const std::uint64_t pipe = pipe_bytes();
  if (pipe > target) {
    // Proportional phase: shrink the pipe toward the reduced window at the
    // rate data leaves the network.
    const std::uint64_t allowed =
        prr_delivered_ * target / std::max<std::uint64_t>(recover_fs_, 1);
    return allowed > prr_out_ ? allowed - prr_out_ : 0;
  }
  // Slow-start reduction bound: refill toward the window, at least one
  // segment per delivery.
  const std::uint64_t grow = prr_delivered_ > prr_out_ ? prr_delivered_ - prr_out_ : 0;
  return std::min<std::uint64_t>(target - pipe,
                                 std::max<std::uint64_t>(grow, config_.mss));
}

void TcpSender::repair_holes() {
  while (true) {
    if (loss_mode_ == LossMode::kFastRecovery) {
      if (prr_budget() < config_.mss) return;
    } else if (pipe_bytes() + config_.mss > send_window()) {
      return;
    }
    if (!retransmit_hole()) return;
  }
}

void TcpSender::mark_all_lost() {
  // RTO semantics (like Linux's CA_Loss): every outstanding unSACKed
  // segment is presumed gone from the network and eligible for
  // retransmission in the new episode.
  sacked_bytes_ = 0;
  lost_bytes_ = 0;
  for (SegMeta& m : unacked_) {
    m.retransmitted = false;
    if (m.sacked) {
      m.counted_lost = false;
      sacked_bytes_ += m.len;
    } else {
      m.counted_lost = true;
      lost_bytes_ += m.len;
    }
  }
}

bool TcpSender::demand_exhausted() const {
  return snd_nxt_ >= config_.bytes_to_send || sched_.now() > config_.stop_time;
}

void TcpSender::try_send() {
  if (!started_) return;
  const double pacing = cc_->pacing_rate_Bps();

  while (!demand_exhausted()) {
    const std::uint64_t wnd = send_window();
    // With SACK, gate on the pipe estimate (SACKed bytes left the network);
    // without it, rely on classic dup-ACK window inflation.
    const std::uint64_t in_flight = config_.sack ? pipe_bytes() : bytes_in_flight();
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(config_.mss, config_.bytes_to_send - snd_nxt_));
    if (in_flight + len > wnd) return;
    if (loss_mode_ == LossMode::kFastRecovery && len > prr_budget()) return;

    if (pacing > 0.0) {
      const Time now = sched_.now();
      if (now < next_pacing_gate_) {
        sched_.cancel(pacing_timer_);
        pacing_timer_ = sched_.schedule_at(next_pacing_gate_, [this] { try_send(); });
        return;
      }
      const Time spacing(static_cast<std::int64_t>(
          static_cast<double>(len + kHeaderBytes) * 1e9 / pacing));
      next_pacing_gate_ = std::max(now, next_pacing_gate_) + spacing;
    }

    send_segment(snd_nxt_, len, /*is_retransmission=*/false);
    snd_nxt_ += len;
  }
}

void TcpSender::send_segment(std::uint64_t seq, std::uint32_t len, bool is_retransmission) {
  Packet pkt;
  pkt.flow = config_.flow;
  pkt.kind = Packet::Kind::kTcpData;
  pkt.payload_bytes = len;
  pkt.size_bytes = len + kHeaderBytes;
  pkt.seq = seq;
  pkt.ts_sent = sched_.now();
  pkt.ect = config_.ecn_capable;

  total_sent_bytes_ += len;
  if (loss_mode_ == LossMode::kFastRecovery) prr_out_ += len;
  last_send_time_ = sched_.now();
  if (!is_retransmission) {
    unacked_.push_back(
        SegMeta{seq, len, sched_.now(), delivered_, delivered_stamp_, false, false, false});
  }
  if (!rto_timer_.valid()) arm_rto();
  local_.send(std::move(pkt));
}

void TcpSender::retransmit_front() {
  if (unacked_.empty()) return;
  SegMeta& m = unacked_.front();
  m.sent_time = sched_.now();
  m.delivered_at_send = delivered_;
  m.delivered_stamp_at_send = delivered_stamp_;
  m.retransmitted = true;
  ++retransmissions_;
  if (m_retransmits_ != nullptr) m_retransmits_->inc();
  send_segment(m.seq, m.len, /*is_retransmission=*/true);
}

void TcpSender::arm_rto() {
  sched_.cancel(rto_timer_);
  rto_timer_ = sched_.schedule(rtt_.rto(), [this] { on_rto_fire(); });
}

void TcpSender::disarm_rto() {
  sched_.cancel(rto_timer_);
  rto_timer_ = EventId();
}

void TcpSender::deliver(const Packet& pkt) {
  if (pkt.kind != Packet::Kind::kTcpAck) return;
  process_sack(pkt);
  if (pkt.ack > snd_una_) {
    on_new_ack(pkt);
  } else if (snd_nxt_ > snd_una_) {
    if (pkt.ece) pending_ece_ = true;
    on_dup_ack();
  }
}

void TcpSender::on_new_ack(const Packet& ack) {
  const Time now = sched_.now();
  const std::uint64_t newly = ack.ack - snd_una_;
  snd_una_ = ack.ack;

  // Release fully-acknowledged segment metadata; remember the most recent
  // one for the delivery-rate sample (BBR).
  double rate_sample = 0.0;
  while (!unacked_.empty() && unacked_.front().seq + unacked_.front().len <= snd_una_) {
    const SegMeta& m = unacked_.front();
    if (m.sacked) {
      sacked_bytes_ -= m.len;  // already counted as delivered at SACK time
    } else {
      delivered_ += m.len;
      delivered_stamp_ = now;
      if (loss_mode_ == LossMode::kFastRecovery) prr_delivered_ += m.len;
    }
    if (m.counted_lost) lost_bytes_ -= m.len;
    // Linux-style rate sample: bytes delivered since this segment was sent,
    // over the interval since the delivery event preceding its transmission
    // (burst-compressed send times would otherwise overestimate). Karn's
    // rule: retransmitted segments give no sample.
    if (!m.retransmitted && now > m.delivered_stamp_at_send) {
      rate_sample = static_cast<double>(delivered_ - m.delivered_at_send) /
                    (now - m.delivered_stamp_at_send).seconds();
    }
    unacked_.pop_front();
  }
  if (unacked_.empty()) {
    sacked_bytes_ = 0;
    lost_bytes_ = 0;
    highest_sacked_ = 0;
  }

  // RTT sample from the timestamp echo (valid even across retransmissions,
  // since the echo corresponds to an actual arrival).
  const Time rtt_sample = now - ack.ts_echo;
  if (rtt_sample > Time::zero()) {
    rtt_.on_sample(rtt_sample);
    if (m_srtt_ != nullptr) m_srtt_->observe(rtt_sample.seconds());
  }

  dup_acks_ = 0;
  recovery_extra_ = 0;

  if (in_recovery()) {
    if (snd_una_ >= recover_) {
      loss_mode_ = LossMode::kNone;
    } else if (config_.sack) {
      // Partial ACK: repair as many holes as the pipe allows.
      repair_holes();
    } else {
      // NewReno partial ACK: the next hole is lost too; retransmit it
      // immediately without leaving recovery.
      retransmit_front();
    }
  }

  const bool round_start = snd_una_ >= round_end_seq_;
  if (round_start) {
    round_end_seq_ = snd_nxt_;
    ++round_count_;
  }

  AckEvent ev;
  ev.now = now;
  ev.acked_bytes = newly;
  ev.rtt = rtt_sample > Time::zero() ? rtt_sample : Time::zero();
  ev.bytes_in_flight = bytes_in_flight();
  ev.delivered = delivered_;
  ev.delivery_rate_Bps = rate_sample;
  ev.ece = ack.ece || pending_ece_;
  ev.round_start = round_start;
  // Fast recovery freezes the window; RTO recovery slow-starts (CA_Loss).
  ev.in_recovery = loss_mode_ == LossMode::kFastRecovery;
  ev.min_rtt = rtt_.has_sample() ? rtt_.min_rtt() : Time::zero();
  pending_ece_ = false;
  cc_->on_ack(ev);

  if (unacked_.empty()) {
    disarm_rto();
  } else {
    arm_rto();
  }
  try_send();
}

void TcpSender::on_dup_ack() {
  ++dup_acks_;
  if (in_recovery()) {
    if (config_.sack) {
      // Returning ACKs free pipe space; repair holes up to the window.
      repair_holes();
    } else {
      // Window inflation stand-in: each dup ACK signals a departed packet,
      // permitting one more transmission (packet conservation).
      recovery_extra_ += config_.mss;
    }
  } else if (dup_acks_ == 3) {
    loss_mode_ = LossMode::kFastRecovery;
    recover_ = snd_nxt_;
    ++fast_retransmits_;
    if (m_fast_retransmits_ != nullptr) m_fast_retransmits_->inc();
    cc_->on_loss(sched_.now(), bytes_in_flight());
    prr_delivered_ = 0;
    prr_out_ = 0;
    recover_fs_ = std::max<std::uint64_t>(bytes_in_flight(), config_.mss);
    if (config_.sack) {
      if (!retransmit_hole()) retransmit_front();
      repair_holes();
    } else {
      retransmit_front();
    }
  }
  try_send();
}

void TcpSender::on_rto_fire() {
  rto_timer_ = EventId();
  if (unacked_.empty()) return;
  ++rto_count_;
  if (m_rtos_ != nullptr) m_rtos_->inc();
  CEBINAE_DEBUG("tcp", "RTO on flow " << config_.flow << " at " << sched_.now());
  cc_->on_rto(sched_.now());
  rtt_.backoff();
  dup_acks_ = 0;
  recovery_extra_ = 0;
  if (config_.sack) {
    // Enter loss recovery: everything unSACKed is lost; holes are repaired
    // ACK-clocked as the (collapsed) window regrows.
    mark_all_lost();
    loss_mode_ = LossMode::kRtoRecovery;
    recover_ = snd_nxt_;
    retransmit_hole();
  } else {
    loss_mode_ = LossMode::kNone;
    retransmit_front();
  }
  arm_rto();
}

}  // namespace cebinae
