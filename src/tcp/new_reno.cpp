#include "tcp/new_reno.hpp"

namespace cebinae {

void NewReno::congestion_avoidance(const AckEvent& ev) {
  (void)ev;
  // ~1 MSS per RTT: each ACK adds mss^2 / cwnd bytes.
  cwnd_ += std::max<std::uint64_t>(1, static_cast<std::uint64_t>(mss_) * mss_ / cwnd_);
}

void NewReno::reduce(Time /*now*/) {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * mss_);
  cwnd_ = ssthresh_;
}

}  // namespace cebinae
