// TCP Cubic (Ha, Rhee, Xu 2008) — the default algorithm on Linux and
// Windows Server, and the paper's representative aggressive loss-based CCA.
#pragma once

#include <memory>

#include "tcp/window_cc.hpp"

namespace cebinae {

class Cubic final : public WindowCc {
 public:
  explicit Cubic(std::uint32_t mss = kMssBytes) : WindowCc(mss) {}

  [[nodiscard]] std::string_view name() const override { return "cubic"; }

  static std::unique_ptr<CongestionControl> make(std::uint32_t mss) {
    return std::make_unique<Cubic>(mss);
  }

  // Exposed for unit tests of the window curve.
  [[nodiscard]] double w_max_segments() const { return w_max_; }
  [[nodiscard]] double k_seconds() const { return k_; }

 private:
  void congestion_avoidance(const AckEvent& ev) override;
  void on_slow_start_ack(const AckEvent& ev) override;  // HyStart (delay)
  void reduce(Time now) override;
  void on_timeout_reset(Time now) override;

  static constexpr double kC = 0.4;      // cubic scaling constant
  static constexpr double kBeta = 0.7;   // multiplicative decrease factor

  double w_max_ = 0.0;          // window (segments) at last reduction
  Time epoch_start_ = Time::zero();
  double k_ = 0.0;              // time (s) to regrow to w_max_
  double origin_point_ = 0.0;   // segments
  double w_est_ = 0.0;          // TCP-friendly region estimate (segments)
  Time min_rtt_ = Time::zero();
  double ack_cnt_ = 0.0;

  // HyStart (delay increase) state: exit slow start when the round's
  // minimum RTT rises noticeably above the previous round's, i.e. before
  // the overshoot burst instead of after it.
  Time hystart_curr_min_ = Time::max();
  Time hystart_last_min_ = Time::max();
  std::uint32_t hystart_samples_ = 0;
};

}  // namespace cebinae
