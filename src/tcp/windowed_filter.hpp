// Kathleen Nichols' windowed min/max filter, as used by Linux/BBR.
//
// Tracks the best (max or min) sample seen over a sliding window together
// with second- and third-best candidates so the estimate degrades gracefully
// as old samples age out.
#pragma once

#include <cstdint>

namespace cebinae {

template <typename ValueT, typename TimeT, typename Compare>
class WindowedFilter {
 public:
  explicit WindowedFilter(TimeT window_length) : window_length_(window_length) {}

  void reset(ValueT value, TimeT now) {
    best_[0] = best_[1] = best_[2] = Sample{value, now};
  }

  void update(ValueT value, TimeT now) {
    if (best_[0].time == TimeT{} || Compare{}(value, best_[0].value) ||
        now - best_[2].time > window_length_) {
      reset(value, now);
      return;
    }
    if (Compare{}(value, best_[1].value)) {
      best_[1] = best_[2] = Sample{value, now};
    } else if (Compare{}(value, best_[2].value)) {
      best_[2] = Sample{value, now};
    }

    // Expire the front estimate when it falls out of the window.
    if (now - best_[0].time > window_length_) {
      best_[0] = best_[1];
      best_[1] = best_[2];
      best_[2] = Sample{value, now};
      if (now - best_[0].time > window_length_) {
        best_[0] = best_[1];
        best_[1] = best_[2];
      }
      return;
    }

    // Refresh stale runners-up so they do not pin obsolete values.
    if (best_[1].value == best_[0].value && now - best_[1].time > window_length_ / 4) {
      best_[1] = best_[2] = Sample{value, now};
      return;
    }
    if (best_[2].value == best_[1].value && now - best_[2].time > window_length_ / 2) {
      best_[2] = Sample{value, now};
    }
  }

  [[nodiscard]] ValueT get() const { return best_[0].value; }
  [[nodiscard]] TimeT get_time() const { return best_[0].time; }

 private:
  struct Sample {
    ValueT value{};
    TimeT time{};
  };

  TimeT window_length_;
  Sample best_[3];
};

struct MaxCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a >= b;
  }
};
struct MinCompare {
  template <typename T>
  bool operator()(const T& a, const T& b) const {
    return a <= b;
  }
};

}  // namespace cebinae
