#include "tcp/vegas.hpp"

#include <algorithm>

namespace cebinae {

void Vegas::on_ack(const AckEvent& ev) {
  if (ev.in_recovery) return;  // no adjustments while repairing losses
  if (ev.rtt > Time::zero()) {
    base_rtt_ = std::min(base_rtt_, ev.rtt);
    round_min_rtt_ = std::min(round_min_rtt_, ev.rtt);
    ++round_samples_;
  }

  if (ev.round_start) {
    round_update();
    round_min_rtt_ = Time::max();
    round_samples_ = 0;
    grow_this_round_ = !grow_this_round_;
  }

  if (in_slow_start() && grow_this_round_) {
    // Exponential growth gated to every other round so the delay measurement
    // from the non-growing round is trustworthy.
    cwnd_ += std::min<std::uint64_t>(ev.acked_bytes, 2 * mss_);
  }
}

void Vegas::round_update() {
  if (round_samples_ < 3 || base_rtt_ == Time::max()) return;

  const double rtt = round_min_rtt_.seconds();
  const double base = base_rtt_.seconds();
  if (rtt <= 0 || base <= 0) return;

  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  // Segments sitting in queues: cwnd * (rtt - base)/rtt.
  const double diff = cwnd_seg * (rtt - base) / rtt;

  if (in_slow_start()) {
    if (diff > kGamma) {
      // Leave slow start: clamp to the target window plus one segment.
      const double target = cwnd_seg * base / rtt;
      cwnd_ = static_cast<std::uint64_t>(std::min(cwnd_seg, target + 1.0) * mss_);
      ssthresh_ = std::min<std::uint64_t>(ssthresh_, cwnd_ > 2 * mss_ ? cwnd_ - mss_ : 2 * mss_);
    }
    return;
  }

  if (diff > kBeta) {
    cwnd_ -= mss_;
    ssthresh_ = std::min<std::uint64_t>(ssthresh_, cwnd_ > 2 * mss_ ? cwnd_ - mss_ : 2 * mss_);
  } else if (diff < kAlpha) {
    cwnd_ += mss_;
  }
  cwnd_ = std::max<std::uint64_t>(cwnd_, 2 * mss_);
}

void Vegas::on_loss(Time /*now*/, std::uint64_t /*bytes_in_flight*/) {
  // Vegas falls back to Reno behavior on packet loss.
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * mss_);
  cwnd_ = ssthresh_;
}

void Vegas::on_rto(Time /*now*/) {
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * mss_);
  cwnd_ = mss_;
}

}  // namespace cebinae
