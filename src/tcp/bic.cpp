#include "tcp/bic.hpp"

#include <algorithm>
#include <cmath>

namespace cebinae {

void Bic::congestion_avoidance(const AckEvent& ev) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  double inc;  // segments per RTT

  if (cwnd_seg < kLowWindow) {
    inc = 1.0;  // Reno region for small windows
  } else if (cwnd_seg < w_max_) {
    // Binary search increase toward the midpoint with w_max_.
    const double dist = (w_max_ - cwnd_seg) / 2.0;
    inc = std::clamp(dist, kSmin, kSmax);
  } else {
    // Max probing beyond w_max_: slow-start-like ramp, capped at Smax.
    const double dist = cwnd_seg - w_max_;
    inc = std::clamp(dist, 1.0, kSmax);
  }

  // Spread `inc` segments over one window's worth of ACKs.
  increment_accumulator_ +=
      inc * (static_cast<double>(ev.acked_bytes) / mss_) / std::max(cwnd_seg, 1.0);
  if (increment_accumulator_ >= 1.0) {
    const double whole = std::floor(increment_accumulator_);
    cwnd_ += static_cast<std::uint64_t>(whole * mss_);
    increment_accumulator_ -= whole;
  }
}

void Bic::reduce(Time /*now*/) {
  const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
  // Fast convergence, as in Cubic.
  if (cwnd_seg < w_max_) {
    w_max_ = cwnd_seg * (1.0 + kBeta) / 2.0;
  } else {
    w_max_ = cwnd_seg;
  }
  ssthresh_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(cwnd_ * kBeta), 2 * mss_);
  cwnd_ = ssthresh_;
}

}  // namespace cebinae
