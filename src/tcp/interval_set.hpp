// Flat sorted interval set for the TCP receiver's out-of-order reassembly
// buffer.
//
// Under loss, every arriving out-of-order segment used to insert a node
// into a std::map — one allocation per packet on exactly the code path the
// paper's loss-heavy experiments hammer. Blocks here live in one sorted
// vector (disjoint, merged on insert): the number of live blocks is bounded
// by the number of holes in the window (small), shifts touch a handful of
// 16-byte entries, and the vector's capacity is reused for the rest of the
// connection's lifetime.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace cebinae {

class IntervalSet {
 public:
  struct Block {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;  // exclusive
  };

  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }
  [[nodiscard]] const Block& operator[](std::size_t i) const { return blocks_[i]; }

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const Block& b : blocks_) total += b.end - b.begin;
    return total;
  }

  // Index of the first block with begin >= seq (== size() when none).
  [[nodiscard]] std::size_t lower_bound(std::uint64_t seq) const {
    const auto it = std::lower_bound(
        blocks_.begin(), blocks_.end(), seq,
        [](const Block& b, std::uint64_t s) { return b.begin < s; });
    return static_cast<std::size_t>(it - blocks_.begin());
  }

  // Insert [begin, end), merging with any overlapping or touching
  // neighbors; returns the resulting merged block.
  Block add(std::uint64_t begin, std::uint64_t end) {
    std::size_t i = lower_bound(begin);
    if (i > 0 && blocks_[i - 1].end >= begin) {
      --i;
      blocks_[i].end = std::max(blocks_[i].end, end);
    } else {
      blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(i), Block{begin, end});
    }
    std::size_t j = i + 1;
    while (j < blocks_.size() && blocks_[j].begin <= blocks_[i].end) {
      blocks_[i].end = std::max(blocks_[i].end, blocks_[j].end);
      ++j;
    }
    blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  blocks_.begin() + static_cast<std::ptrdiff_t>(j));
    return blocks_[i];
  }

  // Consume every block now contiguous with `cursor` (begin <= cursor),
  // folding their ends into it — the receiver's in-order drain.
  void drain_into(std::uint64_t& cursor) {
    std::size_t i = 0;
    while (i < blocks_.size() && blocks_[i].begin <= cursor) {
      cursor = std::max(cursor, blocks_[i].end);
      ++i;
    }
    blocks_.erase(blocks_.begin(), blocks_.begin() + static_cast<std::ptrdiff_t>(i));
  }

 private:
  std::vector<Block> blocks_;  // sorted by begin, pairwise disjoint
};

}  // namespace cebinae
