#include "exp/jsonl_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <stdexcept>

namespace cebinae::exp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += json_escape(k);
  body_ += ':';
}

JsonObject& JsonObject::set(std::string_view k, double v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::string_view v) {
  key(k);
  body_ += json_escape(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, const std::vector<double>& v) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) body_ += ',';
    body_ += json_number(v[i]);
  }
  body_ += ']';
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, const JsonObject& v) {
  key(k);
  body_ += v.str();
  return *this;
}

JsonlWriter::JsonlWriter(std::string path, Mode mode) : path_(std::move(path)) {
  if (path_.empty()) return;
  if (path_ == "-") {
    out_ = &std::cout;
    return;
  }
  const int flags =
      O_WRONLY | O_CREAT | (mode == Mode::kAppend ? O_APPEND : O_TRUNC) | O_CLOEXEC;
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("JsonlWriter: cannot open " + path_ + ": " +
                             std::strerror(errno));
  }
}

JsonlWriter::~JsonlWriter() {
  if (out_) out_->flush();
  if (fd_ >= 0) ::close(fd_);
}

std::size_t JsonlWriter::rows_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void JsonlWriter::emit(std::string_view line) {
  if (out_ != nullptr) {
    *out_ << line << '\n';
    out_->flush();
  } else {
    // One write(2) per row, then fsync: a crash truncates at most the final
    // line, and every acknowledged row survives the process. This is the
    // durability the dispatch ledger's done-markers rely on (a marker is
    // only written after the row's fsync returns).
    std::string buf;
    buf.reserve(line.size() + 1);
    buf.append(line);
    buf.push_back('\n');
    std::size_t off = 0;
    while (off < buf.size()) {
      const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error("JsonlWriter: write to " + path_ + " failed: " +
                                 std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
    ::fsync(fd_);
  }
  ++rows_;
}

void JsonlWriter::write(const JsonObject& row) {
  if (!enabled()) return;
  const std::string line = row.str();
  std::lock_guard<std::mutex> lock(mu_);
  emit(line);
}

void JsonlWriter::write_line(std::string_view line) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  emit(line);
}

}  // namespace cebinae::exp
