#include "exp/jsonl_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

namespace cebinae::exp {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonObject::key(std::string_view k) {
  if (!body_.empty()) body_ += ',';
  body_ += json_escape(k);
  body_ += ':';
}

JsonObject& JsonObject::set(std::string_view k, double v) {
  key(k);
  body_ += json_number(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::uint64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::int64_t v) {
  key(k);
  body_ += std::to_string(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, bool v) {
  key(k);
  body_ += v ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, std::string_view v) {
  key(k);
  body_ += json_escape(v);
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, const std::vector<double>& v) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) body_ += ',';
    body_ += json_number(v[i]);
  }
  body_ += ']';
  return *this;
}

JsonObject& JsonObject::set(std::string_view k, const JsonObject& v) {
  key(k);
  body_ += v.str();
  return *this;
}

JsonlWriter::JsonlWriter(std::string path, Mode mode) : path_(std::move(path)) {
  if (path_.empty()) return;
  if (path_ == "-") {
    out_ = &std::cout;
    return;
  }
  auto file = std::make_unique<std::ofstream>(
      path_, std::ios::out | (mode == Mode::kAppend ? std::ios::app : std::ios::trunc));
  if (!*file) throw std::runtime_error("JsonlWriter: cannot open " + path_);
  owns_ = std::move(file);
  out_ = owns_.get();
}

JsonlWriter::~JsonlWriter() {
  if (out_) out_->flush();
}

std::size_t JsonlWriter::rows_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

void JsonlWriter::write(const JsonObject& row) {
  if (!out_) return;
  const std::string line = row.str();
  std::lock_guard<std::mutex> lock(mu_);
  *out_ << line << '\n';
  out_->flush();
  ++rows_;
}

}  // namespace cebinae::exp
