#include "exp/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <stdexcept>

#include "exp/report.hpp"

namespace cebinae::exp {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(ExperimentSpec spec) {
  if (find(spec.name) != nullptr) {
    throw std::logic_error("duplicate experiment registration: " + spec.name);
  }
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::find(std::string_view name) const {
  for (const ExperimentSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::all() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const ExperimentSpec& s : specs_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) { return a->name < b->name; });
  return out;
}

Registration::Registration(ExperimentSpec spec) {
  ExperimentRegistry::instance().add(std::move(spec));
}

std::string strip_trial(std::string_view label) {
  std::string out;
  std::size_t pos = 0;
  while (pos < label.size()) {
    std::size_t end = label.find(' ', pos);
    if (end == std::string_view::npos) end = label.size();
    const std::string_view token = label.substr(pos, end - pos);
    if (token.substr(0, 6) != "trial=") {
      if (!out.empty()) out += ' ';
      out += token;
    }
    pos = end + 1;
  }
  return out;
}

std::vector<ExperimentJob> replicate_trials(std::vector<ExperimentJob> jobs, int n) {
  if (n <= 1) return jobs;
  std::vector<ExperimentJob> out;
  out.reserve(jobs.size() * static_cast<std::size_t>(n));
  for (ExperimentJob& job : jobs) {
    for (int t = 0; t < n; ++t) {
      ExperimentJob copy = job;
      if (!copy.label.empty()) copy.label += ' ';
      copy.label += "trial=" + std::to_string(t);
      copy.params.set("trial", t);
      out.push_back(std::move(copy));
    }
  }
  return out;
}

const Aggregate* ResultRow::metric(std::string_view name) const {
  for (const auto& [n, a] : metrics) {
    if (n == name) return &a;
  }
  return nullptr;
}

double ResultRow::mean(std::string_view name) const {
  const Aggregate* a = metric(name);
  return a == nullptr ? 0.0 : a->mean;
}

namespace {

// Per-record metric samples: standard Scenario summary metrics, the
// record's custom extras, then the spec's extractor.
void extract_metrics(const ExperimentJob& job, const RunRecord& rec,
                     const MetricExtractor& extra,
                     std::vector<std::pair<std::string, double>>& out) {
  if (!job.custom) {
    out.emplace_back("jfi", rec.result.jfi);
    out.emplace_back("goodput_mbps", to_mbps(rec.result.total_goodput_Bps));
    if (!rec.result.throughput_Bps.empty()) {
      out.emplace_back("throughput_mbps", to_mbps(rec.result.throughput_Bps[0]));
    }
  }
  for (const auto& [name, value] : rec.extra) out.emplace_back(name, value);
  if (extra) extra(job, rec, out);
}

}  // namespace

std::vector<ResultRow> aggregate_rows(const std::vector<ExperimentJob>& jobs,
                                      const std::vector<RunRecord>& records,
                                      const MetricExtractor& extra) {
  std::vector<ResultRow> rows;
  // Per-row sample accumulator, first-seen metric order.
  std::vector<std::pair<std::string, std::vector<double>>> samples;

  auto flush = [&]() {
    if (rows.empty()) return;
    for (auto& [name, values] : samples) {
      rows.back().metrics.emplace_back(name, aggregate(values));
    }
    samples.clear();
  };

  for (std::size_t i = 0; i < jobs.size() && i < records.size(); ++i) {
    const std::string key = strip_trial(jobs[i].label);
    if (rows.empty() || rows.back().label != key) {
      flush();
      ResultRow row;
      row.label = key;
      row.job = &jobs[i];
      rows.push_back(std::move(row));
    }
    rows.back().trials.push_back(&records[i]);
    if (records[i].skipped) continue;
    std::vector<std::pair<std::string, double>> vals;
    extract_metrics(jobs[i], records[i], extra, vals);
    for (const auto& [name, value] : vals) {
      auto it = std::find_if(samples.begin(), samples.end(),
                             [&name](const auto& s) { return s.first == name; });
      if (it == samples.end()) {
        samples.emplace_back(name, std::vector<double>{value});
      } else {
        it->second.push_back(value);
      }
    }
  }
  flush();
  return rows;
}

int run_experiment(const ExperimentSpec& spec, const RunOptions& opts) {
  const std::vector<ExperimentJob> jobs = spec.make_jobs(opts);
  std::printf("=== %s (%s run) ===\n", spec.title.c_str(),
              opts.smoke ? "smoke" : (opts.full ? "full paper-scale" : "quick"));

  ExperimentRunner::Options ro;
  ro.jobs = opts.jobs;
  ro.base_seed = opts.base_seed;

  if (opts.resume && !opts.out.empty() && opts.out != "-") {
    ro.skip_completed = completed_job_indices_file(opts.out);
    if (!ro.skip_completed.empty()) {
      std::fprintf(stderr, "[exp] resume: %zu/%zu jobs already complete in %s\n",
                   ro.skip_completed.size(), jobs.size(), opts.out.c_str());
    }
  }

  std::optional<JsonlWriter> writer;
  std::optional<JsonlWriter> trace_writer;
  try {
    const auto mode = opts.resume && !ro.skip_completed.empty()
                          ? JsonlWriter::Mode::kAppend
                          : JsonlWriter::Mode::kTruncate;
    writer.emplace(opts.out, mode);
    trace_writer.emplace(opts.trace_out, mode);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  ro.writer = writer->enabled() ? &*writer : nullptr;
  ro.trace_writer = trace_writer->enabled() ? &*trace_writer : nullptr;
  // Progress goes to stderr so stdout stays byte-identical across --jobs.
  ro.on_progress = [](std::size_t done, std::size_t total) {
    std::fprintf(stderr, "\r[exp] %zu/%zu scenarios done", done, total);
    if (done == total) std::fprintf(stderr, "\n");
  };

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunRecord> records = ExperimentRunner(ro).run(jobs);
  const auto t1 = std::chrono::steady_clock::now();

  std::size_t skipped = 0;
  for (const RunRecord& r : records) skipped += r.skipped ? 1 : 0;

  const std::vector<ResultRow> rows = aggregate_rows(jobs, records, spec.metrics);

  if (opts.perf) {
    const std::string path =
        opts.perf_out.empty() ? "BENCH_" + spec.name + ".json" : opts.perf_out;
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    JsonObject o;
    o.set("bench", spec.name);
    o.set("jobs", opts.jobs);
    o.set("scenarios", static_cast<std::uint64_t>(records.size()));
    o.set("skipped", static_cast<std::uint64_t>(skipped));
    o.set("wall_s", wall_s);
    o.set("scenarios_per_sec",
          wall_s > 0.0 ? static_cast<double>(records.size() - skipped) / wall_s : 0.0);
    // Flattened per-row metric means ("<label>.<metric>": mean). This is
    // the surface scripts/perf_gate.py compares against bench/baselines/:
    // rate metrics (events_per_sec, ...) regress-gate releases, and the
    // deterministic counts document what each rate measured.
    JsonObject metrics;
    for (const ResultRow& row : rows) {
      for (const auto& [name, agg] : row.metrics) {
        metrics.set(row.label + "." + name, agg.mean);
      }
    }
    if (!metrics.empty()) o.set("metrics", metrics);
    std::ofstream f(path, std::ios::out | std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "error: cannot write perf summary %s\n", path.c_str());
      return 2;
    }
    f << o.str() << '\n';
    std::fprintf(stderr, "[exp] perf summary -> %s\n", path.c_str());
  }

  if (skipped > 0) {
    // Resumed-over records carry no results, so any table rendered from them
    // would mix real numbers with zeros. The JSONL file has the full data.
    std::printf("(%zu/%zu jobs resumed from %s; rerun without --resume for the report)\n",
                skipped, records.size(), opts.out.c_str());
    return 0;
  }

  if (spec.report) {
    spec.report(opts, rows);
  }
  return 0;
}

}  // namespace cebinae::exp
