// Declarative experiment registry: each paper figure/table registers an
// ExperimentSpec (name, job builder, optional metric extractor, reporter)
// and the one `cebinae_bench` CLI drives any of them with a uniform flag
// set (--jobs/--out/--trace-out/--resume/--trials/--perf-out/--smoke).
//
// Execution model: make_jobs(opts) expands the spec into an ordered job
// list (SweepGrid or hand-built; trials innermost), ExperimentRunner runs
// it with per-job seeds derived from (base_seed, job index), and
// aggregate_rows() folds the records back into one ResultRow per distinct
// label-minus-trial, carrying mean/stddev/min/max per metric. Reporters
// render from those aggregates — never from live Scenario state — which is
// what makes `--trials=N` a one-flag feature for every experiment and keeps
// stdout byte-identical across `--jobs` values.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"

namespace cebinae::exp {

// CLI-level options shared by every experiment.
struct RunOptions {
  bool full = false;   // paper-scale durations and trial counts
  bool smoke = false;  // sub-second durations; CI sanity pass
  int trials = 0;      // replicate every grid point; 0 = experiment default
  std::uint64_t base_seed = 1;
  int jobs = 1;
  std::string out;        // results JSONL; "" = disabled, "-" = stdout
  std::string trace_out;  // probe time-series sidecar JSONL; "" = disabled
  bool resume = false;    // skip job indexes already complete in `out`
  bool perf = false;      // write a BENCH_<name>.json perf summary
  std::string perf_out;   // summary path; "" = BENCH_<name>.json

  [[nodiscard]] int trials_or(int dflt) const { return trials > 0 ? trials : dflt; }

  // Scenario duration ladder: --smoke » sub-second, --full » paper scale,
  // default » the quick duration the bench suite uses interactively.
  [[nodiscard]] Time scaled(Time full_duration, Time quick_duration) const {
    if (smoke) return Milliseconds(300);
    return full ? full_duration : quick_duration;
  }

  // Probe period for traced experiments: fast enough that a smoke run still
  // produces rows.
  [[nodiscard]] Time trace_period(Time normal = Seconds(1)) const {
    return smoke ? Milliseconds(100) : normal;
  }
};

// One aggregated line of an experiment: all trials of one grid point.
struct ResultRow {
  std::string label;                   // job label minus the trial token
  const ExperimentJob* job = nullptr;  // first trial's job (config echo)
  std::vector<const RunRecord*> trials;
  std::vector<std::pair<std::string, Aggregate>> metrics;

  [[nodiscard]] const Aggregate* metric(std::string_view name) const;
  // Mean of `name`, or 0.0 when the metric is absent.
  [[nodiscard]] double mean(std::string_view name) const;
};

// Append (name, value) metric samples for one record. The registry feeds
// every record through the default extractor (jfi / goodput_mbps /
// throughput_mbps for Scenario jobs, RunRecord::extra pairs for custom
// jobs) and then through the spec's extractor, if any.
using MetricExtractor = std::function<void(const ExperimentJob&, const RunRecord&,
                                           std::vector<std::pair<std::string, double>>&)>;

struct ExperimentSpec {
  std::string name;         // CLI handle, e.g. "fig08"
  std::string title;        // header line, e.g. "Fig. 8 goodput CDFs"
  std::string description;  // one-liner shown by --list
  int default_trials = 1;   // used when the CLI passes --trials=0

  // Expand the run options into the ordered job list. Trials must be the
  // innermost (fastest-varying) dimension so aggregation can group
  // consecutive jobs; SweepGrid::trials and replicate_trials both comply.
  std::function<std::vector<ExperimentJob>(const RunOptions&)> make_jobs;

  // Optional extra per-record metrics (e.g. a CDF percentile or a windowed
  // ratio computed from the record's trace).
  MetricExtractor metrics;

  // Render the human-readable table/CDF from the aggregated rows.
  std::function<void(const RunOptions&, const std::vector<ResultRow>&)> report;
};

class ExperimentRegistry {
 public:
  static ExperimentRegistry& instance();

  void add(ExperimentSpec spec);
  [[nodiscard]] const ExperimentSpec* find(std::string_view name) const;
  // All specs, sorted by name (stable --list order).
  [[nodiscard]] std::vector<const ExperimentSpec*> all() const;

 private:
  std::vector<ExperimentSpec> specs_;
};

// Static registrar: `namespace { Registration r{spec}; }` in an experiment
// TU. The experiment TUs live in an OBJECT library so these initializers
// are never dropped by the linker.
struct Registration {
  explicit Registration(ExperimentSpec spec);
};

// `"qdisc=FIFO trial=3"` -> `"qdisc=FIFO"`: drops the whitespace-separated
// `trial=` token wherever it appears.
[[nodiscard]] std::string strip_trial(std::string_view label);

// Hand-built job lists (time-series figures, custom jobs): replicate each
// job n times with ` trial=t` appended to the label and echoed into params,
// trials innermost. n <= 1 returns the list unchanged.
[[nodiscard]] std::vector<ExperimentJob> replicate_trials(std::vector<ExperimentJob> jobs,
                                                          int n);

// Group records by strip_trial(label) over consecutive jobs and aggregate
// each metric across the group's non-skipped records.
[[nodiscard]] std::vector<ResultRow> aggregate_rows(const std::vector<ExperimentJob>& jobs,
                                                    const std::vector<RunRecord>& records,
                                                    const MetricExtractor& extra);

// Drive one experiment end to end: build jobs, print the header, run the
// batch (honoring JSONL/trace/resume/perf options uniformly), aggregate,
// and render the report. Returns a process exit code.
int run_experiment(const ExperimentSpec& spec, const RunOptions& opts);

}  // namespace cebinae::exp
