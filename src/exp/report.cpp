#include "exp/report.hpp"

#include <cstdio>

namespace cebinae::exp {

std::string pm(const Aggregate& a, int precision) {
  char buf[64];
  if (a.n > 1) {
    std::snprintf(buf, sizeof(buf), "%.*f±%.*f", precision, a.mean, precision,
                  a.stddev);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, a.mean);
  }
  return buf;
}

}  // namespace cebinae::exp
