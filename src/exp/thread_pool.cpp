#include "exp/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace cebinae::exp {

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool::submit on a shutting-down pool");
    }
    queue_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      // Drain semantics: only exit once the queue is empty, so every job
      // submitted before destruction still runs.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
    }
    // packaged_task captures any exception into the future; nothing escapes
    // into the worker loop.
    job();
  }
}

}  // namespace cebinae::exp
