// Reporter helpers shared by registered experiments: unit conversion,
// mean ± stddev formatting, and cross-trial array averaging. These replace
// the ad-hoc copies the per-figure bench binaries used to carry.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace cebinae::exp {

[[nodiscard]] inline double to_mbps(double bytes_per_sec) {
  return bytes_per_sec * 8.0 / 1e6;
}

// "12.34" for a single sample, "12.34±0.56" once several trials contributed.
[[nodiscard]] std::string pm(const Aggregate& a, int precision = 2);

// Elementwise mean of a per-flow (or per-link) vector across a row's trial
// records; `get(record)` selects the vector. Records resumed over (skipped)
// are ignored; vectors shorter than the longest contribute zeros beyond
// their length.
template <typename Get>
[[nodiscard]] std::vector<double> mean_array(const std::vector<const RunRecord*>& trials,
                                             Get get) {
  std::vector<double> sum;
  int n = 0;
  for (const RunRecord* rec : trials) {
    if (rec == nullptr || rec->skipped) continue;
    const auto& v = get(*rec);
    if (v.size() > sum.size()) sum.resize(v.size(), 0.0);
    for (std::size_t i = 0; i < v.size(); ++i) sum[i] += v[i];
    ++n;
  }
  if (n > 1) {
    for (double& s : sum) s /= static_cast<double>(n);
  }
  return sum;
}

}  // namespace cebinae::exp
