// Structured results: one JSON object per line (JSONL), streamed to a file.
//
// JsonObject is a tiny insertion-ordered builder — enough JSON for flat
// result rows (scalars, strings, and arrays of numbers), with no external
// dependency. Doubles are printed with %.17g so a row round-trips
// bit-identically; that is what lets determinism tests diff JSONL output
// from runs with different thread counts.
//
// JsonlWriter serializes whole rows under a mutex, so worker threads can
// write results as they complete without interleaving partial lines.
//
// Durability contract: file-backed writers write each row with a single
// write(2) and fsync after it, so a crashed or SIGKILLed process leaves at
// most one truncated FINAL line and every earlier row is on disk. Resume and
// dispatch-ledger parsing (exp::is_complete_row) tolerate exactly that
// shape, which is what lets resume files double as the coordination
// substrate for the src/dispatch job ledger.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cebinae::exp {

class JsonObject {
 public:
  JsonObject& set(std::string_view key, double v);
  JsonObject& set(std::string_view key, std::uint64_t v);
  JsonObject& set(std::string_view key, std::int64_t v);
  JsonObject& set(std::string_view key, int v) { return set(key, static_cast<std::int64_t>(v)); }
  JsonObject& set(std::string_view key, bool v);
  JsonObject& set(std::string_view key, std::string_view v);
  JsonObject& set(std::string_view key, const char* v) { return set(key, std::string_view(v)); }
  JsonObject& set(std::string_view key, const std::vector<double>& v);

  // Nest a pre-built object (e.g. the sweep-point parameter echo).
  JsonObject& set(std::string_view key, const JsonObject& v);

  [[nodiscard]] bool empty() const { return body_.empty(); }
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view k);

  std::string body_;  // comma-joined "key":value pairs, insertion order
};

// Escape `s` as a JSON string literal (including the quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

// Format a double exactly (%.17g, with non-finite values as null).
[[nodiscard]] std::string json_number(double v);

class JsonlWriter {
 public:
  enum class Mode { kTruncate, kAppend };

  // Empty path disables the writer (write() becomes a no-op); "-" streams to
  // stdout. kAppend keeps existing rows (used by resumable sweeps). Throws
  // std::runtime_error if the file cannot be opened.
  explicit JsonlWriter(std::string path, Mode mode = Mode::kTruncate);
  ~JsonlWriter();

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  [[nodiscard]] bool enabled() const { return out_ != nullptr || fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t rows_written() const;

  void write(const JsonObject& row);
  // Emit one pre-serialized row verbatim (no trailing newline in `line`).
  // Used by the dispatch merge step to copy shard rows byte-exactly.
  void write_line(std::string_view line);

 private:
  void emit(std::string_view line);  // caller holds mu_

  std::string path_;
  mutable std::mutex mu_;
  std::ostream* out_ = nullptr;  // stdout ("-"); files go through fd_
  int fd_ = -1;                  // owned POSIX fd for file paths
  std::size_t rows_ = 0;
};

}  // namespace cebinae::exp
