#include "exp/experiment.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <istream>
#include <mutex>

#include "exp/thread_pool.hpp"

namespace cebinae::exp {

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index) {
  // SplitMix64: advance the state by the job index, then finalize. The +1 on
  // the index keeps job 0 from returning a plain finalization of base_seed
  // (which derive_seed(x, 0) callers might also use directly as a base).
  std::uint64_t z = base_seed + (job_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Aggregate aggregate(const std::vector<double>& samples) {
  Aggregate a;
  a.n = static_cast<int>(samples.size());
  if (samples.empty()) return a;
  a.min = samples[0];
  a.max = samples[0];
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
    if (s < a.min) a.min = s;
    if (s > a.max) a.max = s;
  }
  a.mean = sum / static_cast<double>(a.n);
  double var = 0.0;
  for (double s : samples) var += (s - a.mean) * (s - a.mean);
  a.stddev = std::sqrt(var / static_cast<double>(a.n));
  return a;
}

RunRecord run_single_job(const ExperimentJob& job, std::uint64_t seed) {
  ScenarioConfig cfg = job.config;
  cfg.seed = seed;

  RunRecord rec;
  rec.seed = seed;
  if (job.custom) {
    const auto t0 = std::chrono::steady_clock::now();
    rec.extra = job.custom(seed);
    const auto t1 = std::chrono::steady_clock::now();
    rec.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    Scenario scenario(cfg);
    if (job.trace_period > Time::zero()) {
      obs::Probe& probe = scenario.enable_trace(job.trace_period);
      if (job.probe_setup) job.probe_setup(scenario, probe);
    }
    rec.result = scenario.run();
    const auto t1 = std::chrono::steady_clock::now();
    rec.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    rec.trace = scenario.trace().take_rows();
  }
  return rec;
}

std::vector<RunRecord> ExperimentRunner::run(const std::vector<ExperimentJob>& jobs) {
  const std::size_t total = jobs.size();
  std::vector<RunRecord> records(total);

  // In-order JSONL emission: rows are buffered until every lower-index job
  // has been written, so the output file is byte-stable across thread
  // counts and completion orders.
  std::mutex emit_mu;
  std::vector<bool> done(total, false);
  std::size_t next_to_emit = 0;
  std::size_t completed = 0;

  auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = derive_seed(opts_.base_seed, i);
    RunRecord rec;
    if (opts_.skip_completed.count(i) != 0) {
      // Resumed over: the row is already in the results file.
      rec.seed = seed;
      rec.skipped = true;
    } else {
      rec = run_single_job(jobs[i], seed);
    }
    records[i] = std::move(rec);

    std::lock_guard<std::mutex> lock(emit_mu);
    done[i] = true;
    ++completed;
    while (next_to_emit < total && done[next_to_emit]) {
      const std::size_t j = next_to_emit;
      if (!records[j].skipped) {
        if (opts_.writer != nullptr) {
          opts_.writer->write(result_row(jobs[j], j, opts_.base_seed, records[j]));
        }
        if (opts_.trace_writer != nullptr) {
          for (const obs::TraceRow& row : records[j].trace) {
            opts_.trace_writer->write(trace_row(jobs[j], j, records[j].seed, row));
          }
        }
      }
      ++next_to_emit;
    }
    if (opts_.on_progress) opts_.on_progress(completed, total);
  };

  std::vector<std::future<void>> futures;
  futures.reserve(total);
  {
    ThreadPool pool(opts_.jobs);
    for (std::size_t i = 0; i < total; ++i) {
      futures.push_back(pool.submit([&run_one, i] { run_one(i); }));
    }
    // Pool destructor drains the queue, so every future below is ready (or
    // holds the job's exception) once this scope closes.
  }

  // Surface the first failure after all jobs have drained; later rows for
  // completed jobs are already on disk, which aids post-mortems.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return records;
}

JsonObject result_row(const ExperimentJob& job, std::size_t job_index,
                      std::uint64_t base_seed, const RunRecord& record) {
  JsonObject row;
  row.set("label", job.label);
  if (!job.params.empty()) row.set("params", job.params);
  row.set("job_index", static_cast<std::uint64_t>(job_index));
  row.set("base_seed", base_seed);
  row.set("seed", record.seed);
  if (!job.custom) {
    row.set("qdisc", to_string(job.config.qdisc));
    row.set("n_flows", static_cast<std::uint64_t>(job.config.flows.size()));
    row.set("chain_links", job.config.chain_links);
    row.set("bottleneck_bps", job.config.bottleneck_bps);
    row.set("buffer_bytes", job.config.buffer_bytes);
    row.set("duration_s", job.config.duration.seconds());
    row.set("goodput_Bps", record.result.goodput_Bps);
    row.set("total_goodput_Bps", record.result.total_goodput_Bps);
    row.set("tail_goodput_Bps", record.result.tail_goodput_Bps);
    row.set("throughput_Bps", record.result.throughput_Bps);
    row.set("jfi", record.result.jfi);
  }
  for (const auto& [name, value] : record.extra) row.set(name, value);
  row.set("wall_s", record.wall_seconds);
  return row;
}

JsonObject trace_row(const ExperimentJob& job, std::size_t job_index, std::uint64_t seed,
                     const obs::TraceRow& row) {
  JsonObject o;
  o.set("label", job.label);
  o.set("job_index", static_cast<std::uint64_t>(job_index));
  o.set("seed", seed);
  row.write_fields(o);
  return o;
}

bool is_complete_row(std::string_view line) {
  if (line.empty() || line.front() != '{') return false;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : line) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        --depth;
        // A stray closer means the line is not one object; bail early.
        if (depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string && line.back() == '}';
}

std::unordered_set<std::uint64_t> completed_job_indices(std::istream& in) {
  std::unordered_set<std::uint64_t> out;
  static constexpr std::string_view kKey = "\"job_index\":";
  std::string line;
  while (std::getline(in, line)) {
    // A row interrupted mid-write (killed run / crashed worker) is
    // structurally unbalanced; treat it as not completed so the job reruns.
    if (!is_complete_row(line)) continue;
    const std::size_t pos = line.find(kKey);
    if (pos == std::string::npos) continue;
    out.insert(std::strtoull(line.c_str() + pos + kKey.size(), nullptr, 10));
  }
  return out;
}

std::unordered_set<std::uint64_t> completed_job_indices_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  return completed_job_indices(in);
}

}  // namespace cebinae::exp
