// SweepGrid: declarative cartesian-product builder for experiment batches.
//
// A grid starts from a base ScenarioConfig and accumulates dimensions —
// qdiscs, named numeric axes, arbitrary named variants, and trial
// replication. build() expands the cartesian product in declaration order
// (first-added dimension outermost, trials conventionally innermost) into a
// stable list of ExperimentJobs, each labelled "name=value ..." with the
// same values echoed into its JSONL `params` object.
//
// The expansion order is part of the determinism contract: job index is
// position in this product, and ExperimentRunner derives per-job seeds from
// that index, so two processes building the same grid run the same seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "exp/experiment.hpp"
#include "runner/scenario.hpp"

namespace cebinae::exp {

class SweepGrid {
 public:
  using Mutator = std::function<void(ScenarioConfig&)>;

  explicit SweepGrid(ScenarioConfig base) : base_(std::move(base)) {}

  // Run every point under each of these queue disciplines.
  SweepGrid& qdiscs(std::vector<QdiscKind> kinds);

  // Numeric axis: for each value, `apply(config, value)` customizes the
  // point. The value is echoed into params under `name`.
  SweepGrid& axis(std::string name, std::vector<double> values,
                  std::function<void(ScenarioConfig&, double)> apply);

  // Discrete axis of named variants (e.g. heterogeneous table rows where a
  // closure rewrites flows/buffers wholesale). The variant label is echoed
  // into params under `name`.
  SweepGrid& variants(std::string name,
                      std::vector<std::pair<std::string, Mutator>> options);

  // Replicate every point n times; ExperimentRunner's per-job seeding makes
  // each trial an independent sample. Echoed into params as `trial`.
  // n <= 1 is a no-op: single-trial runs keep their labels free of the
  // `trial=` token, which is what the registry's aggregation key expects.
  SweepGrid& trials(int n);

  [[nodiscard]] std::vector<ExperimentJob> build() const;

  [[nodiscard]] std::size_t size() const;  // number of jobs build() will emit

 private:
  struct Option {
    std::string value_label;  // e.g. "0.05", "Cebinae", "reno128"
    bool numeric = false;     // echo into params as a number, not a string
    double numeric_value = 0.0;
    Mutator apply;
  };
  struct Dimension {
    std::string name;
    std::vector<Option> options;
  };

  ScenarioConfig base_;
  std::vector<Dimension> dims_;
};

}  // namespace cebinae::exp
