// Fixed-size thread pool for running independent simulation jobs.
//
// The pool owns a FIFO job queue and N worker threads. submit() returns a
// std::future so exceptions thrown inside a job propagate to whoever waits
// on it instead of killing the worker. Workers are work-conserving: an idle
// worker picks up the next queued job immediately, and the destructor drains
// the queue (every job already submitted runs to completion) before joining.
//
// The pool itself is thread-safe; the jobs it runs are not synchronized with
// each other. Simulation code is safe to run here one Scenario per job (see
// sim/logging.hpp for the shared-state contract).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace cebinae::exp {

class ThreadPool {
 public:
  // threads < 1 is clamped to 1. A one-thread pool is still asynchronous
  // (jobs run on the worker, not the caller), which keeps the jobs=1 and
  // jobs=N code paths identical for determinism tests.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue `fn` and return a future for its result. Throws
  // std::runtime_error if the pool is already shutting down.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  // Jobs queued but not yet picked up by a worker (diagnostic).
  [[nodiscard]] std::size_t queued() const;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cebinae::exp
