// ExperimentRunner: execute a batch of independent ScenarioConfig jobs
// across a thread pool, with deterministic per-job seeding and results
// returned in job order.
//
// Determinism contract: job i always runs with seed
// derive_seed(base_seed, i) on a Scenario built only from its own config,
// so the batch's results are bit-identical regardless of how many worker
// threads execute it or in which order jobs complete. This is what allows
// `--jobs=N` to be a pure wall-clock knob on the bench binaries.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exp/jsonl_writer.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "runner/scenario.hpp"

namespace cebinae::exp {

// SplitMix64 finalizer over (base_seed, job_index): cheap, well-dispersed,
// and stable across platforms (unlike std::hash, it is fully specified
// here). Every job gets an independent master seed for its Network RNG.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t job_index);

// One batch entry: the config to run plus bookkeeping echoed into results.
struct ExperimentJob {
  ScenarioConfig config;
  std::string label;  // free-form, e.g. "row=3 qdisc=Cebinae trial=1"
  JsonObject params;  // sweep-axis echo, nested into the JSONL row

  // Telemetry: a positive period installs the scenario's standard probe
  // (Scenario::enable_trace) and the sampled rows land in RunRecord::trace
  // (and, when Options::trace_writer is set, the sidecar JSONL file).
  Time trace_period = Time::zero();
  // Optional hook to add custom samplers; called after the standard probe is
  // installed, before the scenario runs. Runs on a worker thread, but only
  // ever touches its own job's Scenario.
  std::function<void(Scenario&, obs::Probe&)> probe_setup;

  // Non-Scenario jobs (analytic models, FlowCache traces, ...): when set,
  // the runner calls this with the job's derived seed instead of building a
  // Scenario, and the returned (name, value) pairs land in RunRecord::extra.
  // `config` is still the source of the label/params echo but is not run.
  std::function<std::vector<std::pair<std::string, double>>(std::uint64_t seed)> custom;
};

struct RunRecord {
  ScenarioResult result;
  std::uint64_t seed = 0;     // the derived seed the job actually ran with
  double wall_seconds = 0.0;  // host wall-clock for this one Scenario
  bool skipped = false;       // true when resumed over (result is empty)
  std::vector<obs::TraceRow> trace;  // sampled rows (empty unless traced)
  // Metrics returned by ExperimentJob::custom jobs (empty for Scenario
  // jobs). Emitted as numeric fields of the JSONL row and picked up by the
  // registry's aggregation pass.
  std::vector<std::pair<std::string, double>> extra;
};

// Min/max/mean/stddev over one metric across trials (population stddev).
struct Aggregate {
  int n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Aggregate aggregate(const std::vector<double>& samples);

class ExperimentRunner {
 public:
  struct Options {
    int jobs = 1;                    // worker threads; <1 clamps to 1
    std::uint64_t base_seed = 1;     // per-job seeds derive from this
    JsonlWriter* writer = nullptr;   // optional JSONL sink (not owned)
    // Optional sidecar sink for time-series rows of traced jobs (not owned).
    // Rows are emitted in job order, and within a job in sample-time order,
    // so the sidecar is byte-stable across worker counts.
    JsonlWriter* trace_writer = nullptr;
    // Resume support: job indexes already present in an existing results
    // file. Skipped jobs are not run and not re-emitted; their RunRecord has
    // skipped=true and only the seed filled in.
    std::unordered_set<std::uint64_t> skip_completed;
    // Called after each job finishes, serialized, in completion order —
    // progress reporting only; use the returned vector for results.
    std::function<void(std::size_t done, std::size_t total)> on_progress;
  };

  explicit ExperimentRunner(Options opts) : opts_(std::move(opts)) {}

  // Runs every job and returns records in job order. If a writer is
  // configured, rows are ALSO emitted in job order (buffered until all
  // preceding jobs finish) so JSONL files diff cleanly across runs.
  // Exceptions thrown by a Scenario propagate out of run() after the
  // remaining jobs drain.
  std::vector<RunRecord> run(const std::vector<ExperimentJob>& jobs);

 private:
  Options opts_;
};

// Execute ONE job with an explicit pre-derived seed, outside any pool. This
// is the unit of work the runner's threads execute, exposed so out-of-process
// executors (src/dispatch workers) run jobs bit-identically to `--jobs=N`:
// the caller passes derive_seed(base_seed, global_index) and gets back the
// same RunRecord a single-process run would have produced at that index.
[[nodiscard]] RunRecord run_single_job(const ExperimentJob& job, std::uint64_t seed);

// The standard JSONL row for one run: config echo + metrics + wall clock.
// Schema (stable keys, documented in DESIGN.md):
//   label, params{...}, qdisc, seed, base_seed, job_index, n_flows,
//   chain_links, bottleneck_bps, buffer_bytes, duration_s,
//   goodput_Bps[...], total_goodput_Bps, throughput_Bps[...], jfi, wall_s
[[nodiscard]] JsonObject result_row(const ExperimentJob& job, std::size_t job_index,
                                    std::uint64_t base_seed, const RunRecord& record);

// One sidecar JSONL row per probe sample: job context + the row's fields.
// Schema: label, job_index, seed, t_s, then the probe's scalars and arrays
// (jfi, tput_Bps[...], q_bytes[...], cwnd_bytes[...], srtt_s[...], ceb_*,
// top_flow[...], net.tx_*, tcp.*; see DESIGN.md §9).
[[nodiscard]] JsonObject trace_row(const ExperimentJob& job, std::size_t job_index,
                                   std::uint64_t seed, const obs::TraceRow& row);

// True when `line` is one structurally complete JSONL row: starts with '{'
// and every brace/bracket opened outside a string literal is closed by the
// end of the line. A row truncated by a crashed writer fails this even when
// the cut happens to land just after a nested '}' (e.g. inside "params"),
// which a naive trailing-brace check would wrongly accept.
[[nodiscard]] bool is_complete_row(std::string_view line);

// Scan an existing results JSONL stream and collect the job_index of every
// complete row (per is_complete_row). Used by resumable sweeps to skip
// already-finished jobs after a killed run; a truncated final line from a
// crashed or killed worker must never poison resume/ledger state, so it is
// simply treated as "job not completed" and the job reruns.
[[nodiscard]] std::unordered_set<std::uint64_t> completed_job_indices(std::istream& in);

// File convenience: empty set when the file does not exist or is empty.
[[nodiscard]] std::unordered_set<std::uint64_t> completed_job_indices_file(
    const std::string& path);

}  // namespace cebinae::exp
