#include "exp/sweep_grid.hpp"

#include <cmath>
#include <cstdio>

namespace cebinae::exp {

namespace {
// Compact value formatting for labels: integers print without a decimal
// point, everything else with up to 6 significant digits.
std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}
}  // namespace

SweepGrid& SweepGrid::qdiscs(std::vector<QdiscKind> kinds) {
  Dimension dim;
  dim.name = "qdisc";
  for (QdiscKind kind : kinds) {
    Option opt;
    opt.value_label = std::string(to_string(kind));
    opt.apply = [kind](ScenarioConfig& cfg) { cfg.qdisc = kind; };
    dim.options.push_back(std::move(opt));
  }
  dims_.push_back(std::move(dim));
  return *this;
}

SweepGrid& SweepGrid::axis(std::string name, std::vector<double> values,
                           std::function<void(ScenarioConfig&, double)> apply) {
  Dimension dim;
  dim.name = std::move(name);
  for (double v : values) {
    Option opt;
    opt.value_label = format_value(v);
    opt.numeric = true;
    opt.numeric_value = v;
    opt.apply = [apply, v](ScenarioConfig& cfg) { apply(cfg, v); };
    dim.options.push_back(std::move(opt));
  }
  dims_.push_back(std::move(dim));
  return *this;
}

SweepGrid& SweepGrid::variants(std::string name,
                               std::vector<std::pair<std::string, Mutator>> options) {
  Dimension dim;
  dim.name = std::move(name);
  for (auto& [label, mutator] : options) {
    Option opt;
    opt.value_label = label;
    opt.apply = std::move(mutator);
    dim.options.push_back(std::move(opt));
  }
  dims_.push_back(std::move(dim));
  return *this;
}

SweepGrid& SweepGrid::trials(int n) {
  // A single trial adds no information to labels/params, and keeping the
  // dimension out preserves clean "qdisc=... x=..." labels for default runs.
  if (n <= 1) return *this;
  Dimension dim;
  dim.name = "trial";
  for (int t = 0; t < n; ++t) {
    Option opt;
    opt.value_label = std::to_string(t);
    opt.numeric = true;
    opt.numeric_value = t;
    opt.apply = [](ScenarioConfig&) {};
    dim.options.push_back(std::move(opt));
  }
  dims_.push_back(std::move(dim));
  return *this;
}

std::size_t SweepGrid::size() const {
  std::size_t n = 1;
  for (const Dimension& d : dims_) n *= d.options.size();
  return n;
}

std::vector<ExperimentJob> SweepGrid::build() const {
  std::vector<ExperimentJob> jobs;
  const std::size_t total = size();
  jobs.reserve(total);

  // Odometer over dimension indices, first dimension outermost.
  std::vector<std::size_t> idx(dims_.size(), 0);
  for (std::size_t count = 0; count < total; ++count) {
    ExperimentJob job;
    job.config = base_;
    for (std::size_t d = 0; d < dims_.size(); ++d) {
      const Dimension& dim = dims_[d];
      const Option& opt = dim.options[idx[d]];
      opt.apply(job.config);
      if (!job.label.empty()) job.label += ' ';
      job.label += dim.name + '=' + opt.value_label;
      if (opt.numeric) {
        job.params.set(dim.name, opt.numeric_value);
      } else {
        job.params.set(dim.name, opt.value_label);
      }
    }
    jobs.push_back(std::move(job));
    for (std::size_t d = dims_.size(); d-- > 0;) {
      if (++idx[d] < dims_[d].options.size()) break;
      idx[d] = 0;
    }
  }
  return jobs;
}

}  // namespace cebinae::exp
