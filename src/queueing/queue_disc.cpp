#include "queueing/queue_disc.hpp"

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

Time QueueDisc::sojourn_now() const {
  return sojourn_sched_ == nullptr ? Time::zero() : sojourn_sched_->now();
}

void QueueDisc::record_sojourn(Time enqueued) {
  if (sojourn_hist_ == nullptr) return;
  sojourn_hist_->observe((sojourn_sched_->now() - enqueued).seconds());
}

}  // namespace cebinae
