#include "queueing/afq.hpp"

#include <algorithm>

namespace cebinae {

Afq::Afq(AfqParams params) : params_(params), queues_(params.num_queues) {}

bool Afq::enqueue(Packet pkt) {
  if (bytes_ + pkt.size_bytes > params_.buffer_bytes) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }

  // Bid: the round in which the flow's cumulative bytes would depart under
  // ideal fair queueing. Flows idle past the current round restart there
  // (the sketch's counters cannot go backwards, so AFQ floors at the
  // current round).
  std::uint64_t& fb = flow_bytes_[pkt.flow];
  fb = std::max(fb, current_round_ * params_.bytes_per_round);
  const std::uint64_t round = fb / params_.bytes_per_round;
  const std::uint64_t ahead = round - current_round_;

  if (ahead >= params_.num_queues) {
    // Target slot is beyond the calendar horizon: drop (Equation 1's limit).
    ++horizon_drops_;
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }

  fb += pkt.size_bytes;
  const std::size_t slot = (head_slot_ + ahead) % params_.num_queues;
  bytes_ += pkt.size_bytes;
  ++packets_;
  ++stats_.enqueued_packets;
  queues_[slot].push_back(TimestampedPacket{std::move(pkt), sojourn_now()});
  return true;
}

std::optional<Packet> Afq::dequeue() {
  // Serve the current round's queue; when it empties, rotate to the next
  // non-empty slot (advancing the virtual round clock).
  for (std::uint32_t scanned = 0; scanned < params_.num_queues; ++scanned) {
    auto& q = queues_[head_slot_];
    if (!q.empty()) {
      TimestampedPacket tp = std::move(q.front());
      q.pop_front();
      bytes_ -= tp.pkt.size_bytes;
      --packets_;
      ++stats_.dequeued_packets;
      stats_.dequeued_bytes += tp.pkt.size_bytes;
      record_sojourn(tp.enqueued);
      return std::move(tp.pkt);
    }
    head_slot_ = (head_slot_ + 1) % params_.num_queues;
    ++current_round_;
  }
  // All slots empty: opportunistically age out stale flow state so the map
  // does not grow without bound across idle periods.
  if (flow_bytes_.size() > 100'000) flow_bytes_.clear();
  return std::nullopt;
}

}  // namespace cebinae
