// Per-flow token-bucket rate limiting, and the paper's strawman in-network
// fairness scheme built on it (§3.2).
//
// The strawman: when a link saturates, freeze every flow at the maximal
// observed per-flow rate via token buckets; release the limits when
// aggregate demand drops below capacity. It can stop flows from taking
// *more* than the frozen maximum, but — unlike Cebinae — it cannot repair an
// allocation that is already unfair (the meek flows stay frozen at their
// small shares and the aggressor keeps the large one). The ablation bench
// reproduces exactly this failure mode.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "queueing/queue_disc.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

// Classic token bucket: tokens accrue at `rate_Bps` up to `burst_bytes`.
class TokenBucket {
 public:
  TokenBucket(double rate_Bps, double burst_bytes)
      : rate_Bps_(rate_Bps), burst_bytes_(burst_bytes), tokens_(burst_bytes) {}

  // Returns true (and consumes tokens) if a packet of `bytes` conforms.
  bool conforms(std::uint32_t bytes, Time now);

  void set_rate(double rate_Bps) { rate_Bps_ = rate_Bps; }
  [[nodiscard]] double rate_Bps() const { return rate_Bps_; }
  [[nodiscard]] double tokens(Time now) const;

 private:
  void refill(Time now);

  double rate_Bps_;
  double burst_bytes_;
  double tokens_;
  Time last_refill_;
};

struct StrawmanParams {
  double delta_port = 0.01;          // saturation threshold, as in Cebinae
  Time interval = Milliseconds(100); // rate measurement / decision period
  double burst_factor = 2.0;         // bucket depth in units of rate*interval
};

// The strawman queue disc: drop-tail FIFO plus freeze-at-max token buckets.
class StrawmanQueueDisc final : public QueueDisc {
 public:
  StrawmanQueueDisc(Scheduler& sched, std::uint64_t capacity_bps,
                    std::uint64_t buffer_bytes, StrawmanParams params = {});

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t packet_count() const override { return q_.size(); }

  [[nodiscard]] bool limiting() const { return limiting_; }
  [[nodiscard]] double frozen_rate_Bps() const { return frozen_rate_Bps_; }
  [[nodiscard]] std::uint64_t limited_drops() const { return limited_drops_; }

 private:
  void on_tick();

  Scheduler& sched_;
  std::uint64_t capacity_bps_;
  std::uint64_t buffer_bytes_;
  StrawmanParams params_;

  std::deque<TimestampedPacket> q_;
  std::uint64_t bytes_ = 0;

  // Measurement (the strawman is not resource-constrained: exact state).
  std::unordered_map<FlowId, std::uint64_t, FlowIdHash> interval_bytes_;
  std::uint64_t interval_tx_ = 0;

  // Enforcement.
  bool limiting_ = false;
  double frozen_rate_Bps_ = 0.0;
  std::unordered_map<FlowId, TokenBucket, FlowIdHash> buckets_;
  std::uint64_t limited_drops_ = 0;
};

}  // namespace cebinae
