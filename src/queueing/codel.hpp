// CoDel active queue management (RFC 8289).
//
// `CodelController` holds the control-law state and is reusable: the
// standalone `CodelQueue` qdisc wraps one controller around a FIFO, and
// FQ-CoDel instantiates one controller per flow queue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "queueing/queue_disc.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace cebinae {

struct CodelParams {
  Time target = Milliseconds(5);     // acceptable standing-queue sojourn time
  Time interval = Milliseconds(100); // sliding window for the minimum
  bool use_ecn = true;               // mark ECT packets instead of dropping
};

class CodelController {
 public:
  explicit CodelController(CodelParams params) : params_(params) {}

  // Drive the CoDel state machine at dequeue time over `q`. Drops (or
  // ECN-marks) packets per the control law and returns the packet to
  // transmit, if any. `bytes` is the queue's byte counter and is updated as
  // packets leave; drop/mark counters accumulate into `stats`. When
  // `sojourn` is set, the delivered packet's queueing delay (seconds) is
  // observed into it (dropped packets are not).
  std::optional<Packet> dequeue(std::deque<TimestampedPacket>& q, std::uint64_t& bytes,
                                Time now, QueueDiscStats& stats,
                                obs::Histogram* sojourn = nullptr);

  [[nodiscard]] std::uint32_t drop_count() const { return count_; }
  [[nodiscard]] bool dropping() const { return dropping_; }

 private:
  struct DodequeResult {
    std::optional<Packet> pkt;
    Time sojourn = Time::zero();  // queueing delay of `pkt`, when present
    bool ok_to_drop = false;
  };

  DodequeResult dodeque(std::deque<TimestampedPacket>& q, std::uint64_t& bytes, Time now);
  [[nodiscard]] Time control_law(Time t) const;

  CodelParams params_;
  Time first_above_time_ = Time::zero();
  Time drop_next_ = Time::zero();
  std::uint32_t count_ = 0;
  bool dropping_ = false;
};

class CodelQueue final : public QueueDisc {
 public:
  CodelQueue(Scheduler& sched, std::uint64_t limit_bytes, CodelParams params = {})
      : sched_(sched), limit_bytes_(limit_bytes), controller_(params) {}

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t packet_count() const override { return q_.size(); }

 private:
  Scheduler& sched_;
  std::uint64_t limit_bytes_;
  CodelController controller_;
  std::deque<TimestampedPacket> q_;
  std::uint64_t bytes_ = 0;
};

}  // namespace cebinae
