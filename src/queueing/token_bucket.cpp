#include "queueing/token_bucket.hpp"

#include <algorithm>

namespace cebinae {

void TokenBucket::refill(Time now) {
  if (now > last_refill_) {
    tokens_ = std::min(burst_bytes_, tokens_ + rate_Bps_ * (now - last_refill_).seconds());
    last_refill_ = now;
  }
}

bool TokenBucket::conforms(std::uint32_t bytes, Time now) {
  refill(now);
  if (tokens_ >= static_cast<double>(bytes)) {
    tokens_ -= bytes;
    return true;
  }
  return false;
}

double TokenBucket::tokens(Time now) const {
  TokenBucket copy = *this;
  copy.refill(now);
  return copy.tokens_;
}

StrawmanQueueDisc::StrawmanQueueDisc(Scheduler& sched, std::uint64_t capacity_bps,
                                     std::uint64_t buffer_bytes, StrawmanParams params)
    : sched_(sched), capacity_bps_(capacity_bps), buffer_bytes_(buffer_bytes),
      params_(params) {
  sched_.schedule(params_.interval, [this] { on_tick(); });
}

void StrawmanQueueDisc::on_tick() {
  const double capacity_bytes =
      static_cast<double>(capacity_bps_) / 8.0 * params_.interval.seconds();
  const bool saturated =
      static_cast<double>(interval_tx_) >= capacity_bytes * (1.0 - params_.delta_port);

  if (saturated) {
    // Freeze every flow at the maximal observed per-flow rate: the
    // strawman's "token-bucket rate limit on all flows of the maximal
    // size". Re-armed every interval while saturation persists so the limit
    // tracks the current maximum (it never redistributes, though: every
    // flow's own rate is below the max by definition).
    std::uint64_t max_bytes = 0;
    for (const auto& [flow, b] : interval_bytes_) max_bytes = std::max(max_bytes, b);
    const double rate = static_cast<double>(max_bytes) / params_.interval.seconds();
    if (rate > 0) {
      frozen_rate_Bps_ = rate;
      for (auto& [flow, bucket] : buckets_) bucket.set_rate(rate);
      limiting_ = true;
    }
  } else if (!saturated && limiting_) {
    // Aggregate demand dropped below capacity: release all limits.
    limiting_ = false;
    buckets_.clear();
    frozen_rate_Bps_ = 0.0;
  }

  interval_bytes_.clear();
  interval_tx_ = 0;
  sched_.schedule(params_.interval, [this] { on_tick(); });
}

bool StrawmanQueueDisc::enqueue(Packet pkt) {
  if (limiting_) {
    auto it = buckets_.find(pkt.flow);
    if (it == buckets_.end()) {
      it = buckets_
               .emplace(pkt.flow,
                        TokenBucket(frozen_rate_Bps_,
                                    params_.burst_factor * frozen_rate_Bps_ *
                                        params_.interval.seconds()))
               .first;
    }
    if (!it->second.conforms(pkt.size_bytes, sched_.now())) {
      ++limited_drops_;
      ++stats_.dropped_packets;
      stats_.dropped_bytes += pkt.size_bytes;
      return false;
    }
  }

  if (bytes_ + pkt.size_bytes > buffer_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  bytes_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  q_.push_back(TimestampedPacket{std::move(pkt), sojourn_now()});
  return true;
}

std::optional<Packet> StrawmanQueueDisc::dequeue() {
  if (q_.empty()) return std::nullopt;
  TimestampedPacket tp = std::move(q_.front());
  q_.pop_front();
  bytes_ -= tp.pkt.size_bytes;
  interval_bytes_[tp.pkt.flow] += tp.pkt.size_bytes;
  interval_tx_ += tp.pkt.size_bytes;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += tp.pkt.size_bytes;
  record_sojourn(tp.enqueued);
  return std::move(tp.pkt);
}

}  // namespace cebinae
