// Queue discipline interface attached to every egress device.
//
// A device pulls from its queue disc whenever the link goes idle; the queue
// disc decides admission (enqueue may drop) and service order (dequeue).
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"

namespace cebinae {

struct QueueDiscStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t ecn_marked_packets = 0;
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Returns false (and accounts a drop) when the packet was not admitted.
  virtual bool enqueue(Packet pkt) = 0;
  virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::uint64_t byte_count() const = 0;
  [[nodiscard]] virtual std::uint64_t packet_count() const = 0;

  [[nodiscard]] const QueueDiscStats& stats() const { return stats_; }

 protected:
  QueueDiscStats stats_;
};

}  // namespace cebinae
