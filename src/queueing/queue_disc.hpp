// Queue discipline interface attached to every egress device.
//
// A device pulls from its queue disc whenever the link goes idle; the queue
// disc decides admission (enqueue may drop) and service order (dequeue).
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace cebinae {

class Scheduler;

namespace obs {
class Histogram;
}  // namespace obs

struct QueueDiscStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
  std::uint64_t ecn_marked_packets = 0;
};

// A packet with its enqueue timestamp. CoDel queues always store these (the
// control law needs sojourn times); the other disciplines store them so the
// sojourn instrumentation below can observe dequeue − enqueue deltas.
struct TimestampedPacket {
  Packet pkt;
  Time enqueued;
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  // Returns false (and accounts a drop) when the packet was not admitted.
  virtual bool enqueue(Packet pkt) = 0;
  virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::uint64_t byte_count() const = 0;
  [[nodiscard]] virtual std::uint64_t packet_count() const = 0;

  [[nodiscard]] const QueueDiscStats& stats() const { return stats_; }

  // Observability hook: once set, every implementation stamps packets at
  // enqueue and feeds the sojourn of each *delivered* packet (in seconds)
  // into `hist`; dropped packets never reach the histogram. `sched` supplies
  // the clock for disciplines that have none of their own; both referents
  // must outlive this qdisc. Wire before traffic flows (Scenario does this
  // at construction).
  void instrument_sojourn(const Scheduler& sched, obs::Histogram& hist) {
    sojourn_sched_ = &sched;
    sojourn_hist_ = &hist;
  }

 protected:
  // Enqueue stamp: the scheduler's now() when instrumented, zero otherwise
  // (an uninstrumented stamp is never read back).
  [[nodiscard]] Time sojourn_now() const;

  // Observe now − enqueued for a packet being delivered; no-op when not
  // instrumented.
  void record_sojourn(Time enqueued);

  // For disciplines that delegate dequeue to a helper (CoDel's controller).
  [[nodiscard]] obs::Histogram* sojourn_hist() const { return sojourn_hist_; }

  QueueDiscStats stats_;

 private:
  const Scheduler* sojourn_sched_ = nullptr;
  obs::Histogram* sojourn_hist_ = nullptr;
};

}  // namespace cebinae
