// FQ-CoDel (RFC 8290): DRR fair queueing across per-flow queues, each
// managed by a CoDel controller. This is the paper's "FQ" comparison point;
// following the paper's methodology, the default flow-queue count is
// effectively unbounded (ideal per-flow queueing) rather than 1024.
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>

#include "queueing/codel.hpp"
#include "queueing/queue_disc.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

struct FqCoDelParams {
  std::uint64_t limit_bytes = 4 * 1024 * 1024;
  std::uint32_t quantum = kMtuBytes;
  // Number of hash buckets; 0 means ideal per-flow queues (every distinct
  // 5-tuple gets its own queue), matching the paper's 2^32-1 configuration.
  std::uint32_t bucket_count = 0;
  CodelParams codel;
};

class FqCoDel final : public QueueDisc {
 public:
  FqCoDel(Scheduler& sched, FqCoDelParams params) : sched_(sched), params_(params) {}

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t packet_count() const override { return packets_; }
  [[nodiscard]] std::size_t flow_queue_count() const { return queues_.size(); }

 private:
  struct FlowQueue {
    std::deque<TimestampedPacket> q;
    std::uint64_t bytes = 0;
    std::int64_t deficit = 0;
    CodelController codel;
    bool in_new = false;  // linked on new_flows_
    bool in_old = false;  // linked on old_flows_

    explicit FlowQueue(CodelParams p) : codel(p) {}
  };

  [[nodiscard]] std::uint64_t bucket_of(const FlowId& flow) const;
  FlowQueue& queue_for(const Packet& pkt);
  void drop_from_fattest();

  Scheduler& sched_;
  FqCoDelParams params_;
  std::unordered_map<std::uint64_t, std::unique_ptr<FlowQueue>> queues_;
  std::list<FlowQueue*> new_flows_;
  std::list<FlowQueue*> old_flows_;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace cebinae
