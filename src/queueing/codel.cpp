#include "queueing/codel.hpp"

#include <cmath>
#include <utility>

#include "obs/metrics.hpp"

namespace cebinae {

Time CodelController::control_law(Time t) const {
  return t + Time(static_cast<std::int64_t>(static_cast<double>(params_.interval.ns()) /
                                            std::sqrt(static_cast<double>(count_))));
}

CodelController::DodequeResult CodelController::dodeque(std::deque<TimestampedPacket>& q,
                                                        std::uint64_t& bytes, Time now) {
  DodequeResult r;
  if (q.empty()) {
    first_above_time_ = Time::zero();
    return r;
  }
  TimestampedPacket tp = std::move(q.front());
  q.pop_front();
  bytes -= tp.pkt.size_bytes;

  const Time sojourn = now - tp.enqueued;
  r.sojourn = sojourn;
  if (sojourn < params_.target || bytes < kMtuBytes) {
    first_above_time_ = Time::zero();
  } else {
    if (first_above_time_ == Time::zero()) {
      first_above_time_ = now + params_.interval;
    } else if (now >= first_above_time_) {
      r.ok_to_drop = true;
    }
  }
  r.pkt = std::move(tp.pkt);
  return r;
}

std::optional<Packet> CodelController::dequeue(std::deque<TimestampedPacket>& q,
                                               std::uint64_t& bytes, Time now,
                                               QueueDiscStats& stats,
                                               obs::Histogram* sojourn) {
  auto drop_or_mark = [&](Packet& pkt) -> bool {
    // Returns true when the packet was ECN-marked (and should be forwarded)
    // rather than dropped.
    if (params_.use_ecn && pkt.ect) {
      pkt.ce = true;
      ++stats.ecn_marked_packets;
      return true;
    }
    ++stats.dropped_packets;
    stats.dropped_bytes += pkt.size_bytes;
    return false;
  };

  DodequeResult r = dodeque(q, bytes, now);
  if (dropping_) {
    if (!r.ok_to_drop) {
      dropping_ = false;
    } else {
      while (dropping_ && r.pkt && now >= drop_next_) {
        ++count_;
        if (drop_or_mark(*r.pkt)) {
          drop_next_ = control_law(drop_next_);
          break;  // marked packets are still delivered
        }
        r = dodeque(q, bytes, now);
        if (!r.ok_to_drop) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (r.ok_to_drop) {
    // Enter dropping state.
    const bool marked = r.pkt && drop_or_mark(*r.pkt);
    if (!marked) r = dodeque(q, bytes, now);
    dropping_ = true;
    // Start closer to the previous rate if we were recently dropping.
    if (count_ > 2 && now - drop_next_ < params_.interval) {
      count_ -= 2;
    } else {
      count_ = 1;
    }
    drop_next_ = control_law(now);
  }
  if (sojourn != nullptr && r.pkt) sojourn->observe(r.sojourn.seconds());
  return r.pkt;
}

bool CodelQueue::enqueue(Packet pkt) {
  if (bytes_ + pkt.size_bytes > limit_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  bytes_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  q_.push_back(TimestampedPacket{std::move(pkt), sched_.now()});
  return true;
}

std::optional<Packet> CodelQueue::dequeue() {
  std::optional<Packet> pkt =
      controller_.dequeue(q_, bytes_, sched_.now(), stats_, sojourn_hist());
  if (pkt) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += pkt->size_bytes;
  }
  return pkt;
}

}  // namespace cebinae
