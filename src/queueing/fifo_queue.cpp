#include "queueing/fifo_queue.hpp"

#include <utility>

namespace cebinae {

bool FifoQueue::enqueue(Packet pkt) {
  if (bytes_ + pkt.size_bytes > limit_bytes_ || q_.size() + 1 > limit_packets_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }
  bytes_ += pkt.size_bytes;
  ++stats_.enqueued_packets;
  q_.push_back(TimestampedPacket{std::move(pkt), sojourn_now()});
  return true;
}

std::optional<Packet> FifoQueue::dequeue() {
  if (q_.empty()) return std::nullopt;
  TimestampedPacket tp = std::move(q_.front());
  q_.pop_front();
  bytes_ -= tp.pkt.size_bytes;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += tp.pkt.size_bytes;
  record_sojourn(tp.enqueued);
  return std::move(tp.pkt);
}

}  // namespace cebinae
