// AFQ — Approximate Fair Queueing (Sharma et al., NSDI 2018), the paper's
// §2 point of comparison.
//
// A calendar queue of nQ FIFO queues, each representing a future round of
// BpR bytes per flow. An arriving packet's departure round is
// floor(flow_bytes / BpR); it is placed in the queue (round - current_round)
// slots ahead, or dropped if that is >= nQ slots in the future (the "buffer
// admission" Equation 1 of the Cebinae paper: a flow needing more than
// nQ*BpR of buffered bytes cannot be served fairly).
//
// Per-flow byte counts are exact here (the hardware uses count-min
// sketches); this is the idealized AFQ the scaling argument is made
// against: its fairness depends on nQ and BpR, which must grow with RTT,
// flow count, and burstiness — whereas Cebinae uses exactly 2 queues.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "queueing/queue_disc.hpp"

namespace cebinae {

struct AfqParams {
  std::uint32_t num_queues = 32;      // nQ
  std::uint32_t bytes_per_round = 2 * kMtuBytes;  // BpR
  std::uint64_t buffer_bytes = 4 * 1024 * 1024;
};

class Afq final : public QueueDisc {
 public:
  explicit Afq(AfqParams params);

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t packet_count() const override { return packets_; }

  [[nodiscard]] std::uint64_t current_round() const { return current_round_; }
  [[nodiscard]] std::uint64_t horizon_drops() const { return horizon_drops_; }

 private:
  AfqParams params_;
  std::vector<std::deque<TimestampedPacket>> queues_;  // ring of calendar slots
  std::size_t head_slot_ = 0;
  std::uint64_t current_round_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t horizon_drops_ = 0;

  // Exact per-flow departure-round state, aged by round like AFQ's sketch.
  std::unordered_map<FlowId, std::uint64_t, FlowIdHash> flow_bytes_;
};

}  // namespace cebinae
