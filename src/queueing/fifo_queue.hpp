// Drop-tail FIFO queue: the paper's baseline queue discipline.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>

#include "queueing/queue_disc.hpp"

namespace cebinae {

class FifoQueue final : public QueueDisc {
 public:
  // Limits are checked before admitting a packet: admission requires both
  // byte_count + size <= limit_bytes and packet_count + 1 <= limit_packets.
  explicit FifoQueue(std::uint64_t limit_bytes,
                     std::uint64_t limit_packets = std::numeric_limits<std::uint64_t>::max())
      : limit_bytes_(limit_bytes), limit_packets_(limit_packets) {}

  [[nodiscard]] static std::uint64_t unlimited() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  // Convenience: limit expressed in MTUs, as in the paper's Table 2.
  [[nodiscard]] static FifoQueue with_mtu_limit(std::uint64_t mtus) {
    return FifoQueue(mtus * kMtuBytes);
  }

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return bytes_; }
  [[nodiscard]] std::uint64_t packet_count() const override { return q_.size(); }

 private:
  std::uint64_t limit_bytes_;
  std::uint64_t limit_packets_;
  std::uint64_t bytes_ = 0;
  std::deque<TimestampedPacket> q_;
};

}  // namespace cebinae
