#include "queueing/fq_codel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cebinae {

std::uint64_t FqCoDel::bucket_of(const FlowId& flow) const {
  const std::uint64_t h = FlowIdHash{}(flow);
  return params_.bucket_count == 0 ? h : h % params_.bucket_count;
}

FqCoDel::FlowQueue& FqCoDel::queue_for(const Packet& pkt) {
  const std::uint64_t bucket = bucket_of(pkt.flow);
  auto it = queues_.find(bucket);
  if (it == queues_.end()) {
    it = queues_.emplace(bucket, std::make_unique<FlowQueue>(params_.codel)).first;
  }
  return *it->second;
}

void FqCoDel::drop_from_fattest() {
  FlowQueue* fattest = nullptr;
  for (auto& [bucket, fq] : queues_) {
    if (!fattest || fq->bytes > fattest->bytes) fattest = fq.get();
  }
  if (!fattest || fattest->q.empty()) return;
  // RFC 8290 drops from the head of the fattest queue to penalize the
  // standing queue rather than the arriving packet.
  TimestampedPacket victim = std::move(fattest->q.front());
  fattest->q.pop_front();
  fattest->bytes -= victim.pkt.size_bytes;
  bytes_ -= victim.pkt.size_bytes;
  --packets_;
  ++stats_.dropped_packets;
  stats_.dropped_bytes += victim.pkt.size_bytes;
}

bool FqCoDel::enqueue(Packet pkt) {
  FlowQueue& fq = queue_for(pkt);
  const std::uint32_t size = pkt.size_bytes;
  fq.q.push_back(TimestampedPacket{std::move(pkt), sched_.now()});
  fq.bytes += size;
  bytes_ += size;
  ++packets_;
  ++stats_.enqueued_packets;

  if (!fq.in_new && !fq.in_old) {
    fq.deficit = params_.quantum;
    new_flows_.push_back(&fq);
    fq.in_new = true;
  }
  while (bytes_ > params_.limit_bytes) drop_from_fattest();
  return true;
}

std::optional<Packet> FqCoDel::dequeue() {
  // Bounded by the number of scheduled queues; each iteration either
  // services, recycles, or retires one queue.
  while (!new_flows_.empty() || !old_flows_.empty()) {
    const bool from_new = !new_flows_.empty();
    std::list<FlowQueue*>& lst = from_new ? new_flows_ : old_flows_;
    FlowQueue* fq = lst.front();

    if (fq->deficit <= 0) {
      fq->deficit += params_.quantum;
      lst.pop_front();
      fq->in_new = false;
      fq->in_old = true;
      old_flows_.push_back(fq);
      continue;
    }

    const std::uint64_t bytes_before = fq->bytes;
    const std::size_t pkts_before = fq->q.size();
    std::optional<Packet> pkt =
        fq->codel.dequeue(fq->q, fq->bytes, sched_.now(), stats_, sojourn_hist());
    // CoDel may have consumed several packets (drops plus the returned one).
    bytes_ -= bytes_before - fq->bytes;
    packets_ -= pkts_before - fq->q.size();

    if (!pkt) {
      // Queue is empty: a new queue gets one pass through old before being
      // retired (RFC 8290 §4.2); an old empty queue is removed.
      lst.pop_front();
      if (from_new) {
        fq->in_new = false;
        fq->in_old = true;
        old_flows_.push_back(fq);
      } else {
        fq->in_old = false;
      }
      continue;
    }

    fq->deficit -= pkt->size_bytes;
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += pkt->size_bytes;
    return pkt;
  }
  return std::nullopt;
}

}  // namespace cebinae
