#include "runner/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "metrics/jfi.hpp"
#include "queueing/fifo_queue.hpp"

namespace cebinae {

namespace {
// Fixed small propagation delays for the bottleneck and receiver access
// links; the sender access link absorbs the rest of each flow's RTT budget.
constexpr Time kChainLinkDelay = Microseconds(50);
constexpr Time kDstAccessDelay = Microseconds(50);

Time src_access_delay_for(const FlowSpec& spec, int hops) {
  const Time fixed = hops * kChainLinkDelay + kDstAccessDelay;
  const Time budget = spec.rtt / 2 - fixed;
  return std::max(budget, Microseconds(1));
}
}  // namespace

std::string_view to_string(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "FIFO";
    case QdiscKind::kFqCoDel:
      return "FQ";
    case QdiscKind::kCebinae:
      return "Cebinae";
    case QdiscKind::kAfq:
      return "AFQ";
    case QdiscKind::kStrawman:
      return "Strawman";
  }
  return "?";
}

std::unique_ptr<QueueDisc> Scenario::make_bottleneck_qdisc(int link) {
  std::unique_ptr<QueueDisc> disc;
  switch (cfg_.qdisc) {
    case QdiscKind::kFifo:
      disc = std::make_unique<FifoQueue>(cfg_.buffer_bytes);
      break;
    case QdiscKind::kFqCoDel: {
      FqCoDelParams p = cfg_.fq;
      p.limit_bytes = cfg_.buffer_bytes;
      disc = std::make_unique<FqCoDel>(net_->scheduler(), p);
      break;
    }
    case QdiscKind::kCebinae: {
      auto q = std::make_unique<CebinaeQueueDisc>(net_->scheduler(), cfg_.bottleneck_bps,
                                                  cfg_.buffer_bytes, effective_params_);
      cebinae_qdiscs_.push_back(q.get());
      disc = std::move(q);
      break;
    }
    case QdiscKind::kAfq: {
      AfqParams p = cfg_.afq;
      p.buffer_bytes = cfg_.buffer_bytes;
      disc = std::make_unique<Afq>(p);
      break;
    }
    case QdiscKind::kStrawman:
      disc = std::make_unique<StrawmanQueueDisc>(net_->scheduler(), cfg_.bottleneck_bps,
                                                 cfg_.buffer_bytes, cfg_.strawman);
      break;
  }
  // Per-link sojourn-time histogram: dequeue − enqueue of every delivered
  // packet, exported by probe.sample_registry as qdisc.sojourn_s.l<k>.{n,
  // mean,max} in the standard trace rows.
  if (disc != nullptr) {
    disc->instrument_sojourn(
        net_->scheduler(),
        net_->metrics().histogram("qdisc.sojourn_s.l" + std::to_string(link)));
  }
  return disc;
}

Scenario::Scenario(ScenarioConfig config) : cfg_(std::move(config)) {
  assert(!cfg_.flows.empty());
  net_ = std::make_unique<Network>(cfg_.seed);

  // Normalize flow paths.
  for (FlowSpec& f : cfg_.flows) {
    if (f.exit < 0) f.exit = cfg_.chain_links;
  }

  // Derive Cebinae timing from the link and the slowest flow (paper §4.4).
  effective_params_ = cfg_.cebinae;
  if (cfg_.qdisc == QdiscKind::kCebinae && cfg_.auto_cebinae_timing) {
    Time max_rtt = Time::zero();
    for (const FlowSpec& f : cfg_.flows) max_rtt = std::max(max_rtt, f.rtt);
    const CebinaeParams derived =
        CebinaeParams::for_link(cfg_.bottleneck_bps, cfg_.buffer_bytes, max_rtt);
    effective_params_.dt = derived.dt;
    // The RTT rule gives a lower bound on the recomputation interval; a
    // config may ask for a longer one (smoother rate measurements stabilize
    // the top-flow membership).
    effective_params_.p_rounds = std::max(derived.p_rounds, cfg_.cebinae.p_rounds);
  }

  topo_ = build_chain(*net_, cfg_.chain_links, cfg_.bottleneck_bps, kChainLinkDelay,
                      [this](int link) { return make_bottleneck_qdisc(link); });

  if (cfg_.qdisc == QdiscKind::kCebinae) {
    for (CebinaeQueueDisc* q : cebinae_qdiscs_) {
      agents_.push_back(std::make_unique<CebinaeAgent>(net_->scheduler(), *q));
    }
  }

  // Hosts + flows.
  const std::uint64_t access_bps = static_cast<std::uint64_t>(
      static_cast<double>(cfg_.bottleneck_bps) * cfg_.access_rate_factor);
  RandomStream jitter_rng = net_->rng().derive("start-jitter");

  std::vector<HostPair> pairs;
  pairs.reserve(cfg_.flows.size());
  for (const FlowSpec& spec : cfg_.flows) {
    const Time src_delay = src_access_delay_for(spec, spec.exit - spec.enter);
    pairs.push_back(
        attach_hosts(*net_, topo_, spec.enter, spec.exit, access_bps, src_delay,
                     kDstAccessDelay));
  }
  net_->build_routes();

  for (std::size_t i = 0; i < cfg_.flows.size(); ++i) {
    const FlowSpec& spec = cfg_.flows[i];
    BulkFlow::Spec bs;
    bs.cca = spec.cca;
    bs.start_time = spec.start;
    if (cfg_.start_jitter > Time::zero()) {
      bs.start_time += Time(static_cast<std::int64_t>(
          jitter_rng.uniform(0.0, static_cast<double>(cfg_.start_jitter.ns()))));
    }
    bs.stop_time = spec.stop;
    bs.bytes_to_send = spec.bytes;
    bs.ecn = spec.ecn;
    bs.port = static_cast<std::uint16_t>(5000 + i);
    flows_.push_back(
        std::make_unique<BulkFlow>(*net_, *pairs[i].src, *pairs[i].dst, bs, &stats_));
    flow_ids_.push_back(flows_.back()->id());
  }
}

obs::Probe& Scenario::enable_trace(Time period) {
  assert(trace_probe_ == nullptr && "enable_trace must be called at most once");
  trace_probe_ = std::make_unique<obs::Probe>(net_->scheduler(), period, trace_sink_);
  obs::Probe& probe = *trace_probe_;

  // Per-flow windowed throughput over [now - period, now), plus JFI over the
  // flows whose configured start precedes the window — matching the paper's
  // time-series figures, where a joining flow enters the fairness index only
  // once it has been active for a full sample window.
  probe.add_sampler([this, period,
                     prev = std::vector<std::uint64_t>(flow_ids_.size(), 0)](
                        Time now, obs::TraceRow& row) mutable {
    std::vector<double> tput(flow_ids_.size(), 0.0);
    std::vector<double> active;
    const Time window_start = now - period;
    for (std::size_t i = 0; i < flow_ids_.size(); ++i) {
      const std::uint64_t total = stats_.total_bytes(flow_ids_[i]);
      tput[i] = static_cast<double>(total - prev[i]) / period.seconds();
      prev[i] = total;
      if (cfg_.flows[i].start <= window_start) active.push_back(tput[i]);
    }
    row.set("jfi", jain_index(active));
    row.set("tput_Bps", std::move(tput));
  });

  // Bottleneck queue state, one array element per chain link.
  probe.add_sampler([this](Time, obs::TraceRow& row) {
    std::vector<double> depth_bytes, depth_pkts, drops, ecn_marks;
    for (const Device* dev : topo_.bottlenecks) {
      const QueueDisc& q = dev->qdisc();
      depth_bytes.push_back(static_cast<double>(q.byte_count()));
      depth_pkts.push_back(static_cast<double>(q.packet_count()));
      drops.push_back(static_cast<double>(q.stats().dropped_packets));
      ecn_marks.push_back(static_cast<double>(q.stats().ecn_marked_packets));
    }
    row.set("q_bytes", std::move(depth_bytes));
    row.set("q_pkts", std::move(depth_pkts));
    row.set("q_drops", std::move(drops));
    row.set("q_ecn_marks", std::move(ecn_marks));
  });

  // Per-flow TCP state.
  probe.add_sampler([this](Time, obs::TraceRow& row) {
    std::vector<double> cwnd, srtt;
    for (const auto& flow : flows_) {
      cwnd.push_back(static_cast<double>(flow->sender().cc().cwnd_bytes()));
      srtt.push_back(flow->sender().rtt().srtt().seconds());
    }
    row.set("cwnd_bytes", std::move(cwnd));
    row.set("srtt_s", std::move(srtt));
  });

  // Cebinae data/control-plane state (per link, plus per-flow ⊤ membership
  // at the first bottleneck).
  if (cfg_.qdisc == QdiscKind::kCebinae) {
    probe.add_sampler([this](Time, obs::TraceRow& row) {
      std::vector<double> rotations, delayed, lbf_drops, buffer_drops, flips, saturated,
          utilization, cache_occupied, cache_uncounted;
      for (std::size_t l = 0; l < cebinae_qdiscs_.size(); ++l) {
        CebinaeQueueDisc* q = cebinae_qdiscs_[l];
        const CebinaeAgent::Snapshot& snap = agents_[l]->snapshot();
        rotations.push_back(static_cast<double>(q->lbf().rotations()));
        delayed.push_back(static_cast<double>(q->delayed_packets()));
        lbf_drops.push_back(static_cast<double>(q->lbf_dropped_packets()));
        buffer_drops.push_back(static_cast<double>(q->buffer_dropped_packets()));
        flips.push_back(static_cast<double>(agents_[l]->phase_changes()));
        saturated.push_back(snap.saturated ? 1.0 : 0.0);
        utilization.push_back(snap.utilization);
        cache_occupied.push_back(static_cast<double>(q->cache().occupied_slots()));
        cache_uncounted.push_back(static_cast<double>(q->cache().uncounted_packets()));
      }
      row.set("ceb_rotations", std::move(rotations));
      row.set("ceb_delayed", std::move(delayed));
      row.set("ceb_lbf_drops", std::move(lbf_drops));
      row.set("ceb_buffer_drops", std::move(buffer_drops));
      row.set("ceb_flips", std::move(flips));
      row.set("ceb_saturated", std::move(saturated));
      row.set("ceb_util", std::move(utilization));
      row.set("ceb_cache_occupied", std::move(cache_occupied));
      row.set("ceb_cache_uncounted", std::move(cache_uncounted));
      std::vector<double> top(flow_ids_.size(), 0.0);
      for (std::size_t i = 0; i < flow_ids_.size(); ++i) {
        top[i] = cebinae_qdiscs_[0]->is_top(flow_ids_[i]) ? 1.0 : 0.0;
      }
      row.set("top_flow", std::move(top));
    });
  }

  // Everything components registered themselves (net.tx_*, tcp.*).
  probe.sample_registry(net_->metrics());

  probe.start();
  return probe;
}

void Scenario::add_probe(Time period, std::function<void(Time)> fn) {
  auto gen = std::make_unique<PacketGenerator>(
      net_->scheduler(), period,
      [this, fn = std::move(fn)] { fn(net_->scheduler().now()); });
  gen->start(period);
  probes_.push_back(std::move(gen));
}

ScenarioResult Scenario::run() {
  for (auto& agent : agents_) agent->start();
  for (auto& flow : flows_) flow->start();
  net_->scheduler().run_until(cfg_.duration);

  ScenarioResult r;
  r.goodput_Bps = stats_.goodputs_Bps(Time::zero(), cfg_.duration);
  // Second-half goodputs: the steady-state window the ablation benches and
  // convergence reporters read (excludes slow start and join transients).
  r.tail_goodput_Bps = stats_.goodputs_Bps(Time(cfg_.duration.ns() / 2), cfg_.duration);
  for (double g : r.goodput_Bps) r.total_goodput_Bps += g;
  for (const Device* dev : topo_.bottlenecks) {
    r.throughput_Bps.push_back(static_cast<double>(dev->tx_bytes()) /
                               cfg_.duration.seconds());
  }
  r.jfi = jain_index(r.goodput_Bps);
  return r;
}

std::vector<double> ideal_goodputs_Bps(const ScenarioConfig& cfg) {
  MaxMinProblem problem;
  // Application-level capacity: wire rate scaled by payload efficiency.
  const double payload_efficiency =
      static_cast<double>(kMssBytes) / static_cast<double>(kMtuBytes);
  problem.link_capacity.assign(
      static_cast<std::size_t>(cfg.chain_links),
      static_cast<double>(cfg.bottleneck_bps) / 8.0 * payload_efficiency);
  for (const FlowSpec& f : cfg.flows) {
    // Mirror the constructor's path normalization so reporters can call this
    // on a raw config without building a Scenario.
    const int exit = f.exit < 0 ? cfg.chain_links : f.exit;
    std::vector<std::size_t> links;
    for (int l = f.enter; l < exit; ++l) links.push_back(static_cast<std::size_t>(l));
    problem.flow_links.push_back(std::move(links));
  }
  return maxmin_rates(problem);
}

std::vector<double> Scenario::ideal_goodputs_Bps() const {
  // cfg_ is already normalized by the constructor.
  return cebinae::ideal_goodputs_Bps(cfg_);
}

}  // namespace cebinae
