// Declarative experiment runner shared by examples, benches, and
// integration tests.
//
// A ScenarioConfig names a chain topology (1 link = dumbbell, N links =
// parking lot), a bottleneck queue discipline (FIFO / FQ-CoDel / Cebinae),
// and a set of TCP flows with per-flow CCA, RTT, entry/exit points, and
// start/stop times. Scenario builds the network, runs it, and reports the
// paper's metrics (per-flow goodput, bottleneck throughput, JFI).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "core/agent.hpp"
#include "core/cebinae_queue_disc.hpp"
#include "core/params.hpp"
#include "metrics/flow_stats.hpp"
#include "metrics/maxmin.hpp"
#include "net/network.hpp"
#include "obs/probe.hpp"
#include "obs/trace.hpp"
#include "queueing/afq.hpp"
#include "queueing/fq_codel.hpp"
#include "queueing/token_bucket.hpp"
#include "runner/flow_spec.hpp"
#include "topology/topology.hpp"
#include "workload/bulk_app.hpp"

namespace cebinae {

enum class QdiscKind { kFifo, kFqCoDel, kCebinae, kAfq, kStrawman };

[[nodiscard]] std::string_view to_string(QdiscKind kind);

struct ScenarioConfig {
  int chain_links = 1;
  std::uint64_t bottleneck_bps = 100'000'000;
  std::uint64_t buffer_bytes = 420ull * kMtuBytes;
  QdiscKind qdisc = QdiscKind::kFifo;

  // Cebinae knobs. With auto_cebinae_timing, dT and P are derived from the
  // link (Eq. 2 + max-RTT rule) and only the thresholds below are taken
  // from `cebinae`.
  CebinaeParams cebinae;
  bool auto_cebinae_timing = true;

  FqCoDelParams fq;  // limit_bytes is overridden with buffer_bytes
  AfqParams afq;     // buffer_bytes is overridden with buffer_bytes
  StrawmanParams strawman;

  double access_rate_factor = 4.0;
  Time duration = Seconds(30);
  Time start_jitter = Milliseconds(100);  // uniform [0, jitter) added to starts
  std::uint64_t seed = 1;

  std::vector<FlowSpec> flows;
};

// Ideal max-min goodput allocation (application-level) for a config's
// topology and flows — Fig. 11's "Ideal" bars. Usable without building a
// Scenario (flow exits < 0 are normalized to chain_links here too).
[[nodiscard]] std::vector<double> ideal_goodputs_Bps(const ScenarioConfig& cfg);

struct ScenarioResult {
  std::vector<double> goodput_Bps;      // per flow, over the whole run
  std::vector<double> tail_goodput_Bps; // per flow, over [duration/2, duration]
  double total_goodput_Bps = 0.0;
  std::vector<double> throughput_Bps;   // per chain link (wire bytes)
  double jfi = 1.0;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config);

  // Runs until config.duration and summarizes.
  ScenarioResult run();

  // Pre-run hooks -----------------------------------------------------------

  // Fire `fn(now)` every `period` for the whole run (time-series probes).
  void add_probe(Time period, std::function<void(Time)> fn);

  // Install the standard telemetry probe: every `period` it snapshots the
  // network's MetricsRegistry plus the computed series the paper's figures
  // need — per-flow windowed throughput and JFI(t), per-bottleneck queue
  // depth/drops/ECN marks, per-flow cwnd and srtt, and (under Cebinae) LBF
  // rotations, ⊤/⊥ classification state, delayed/dropped counts, and cache
  // occupancy. Rows accumulate in trace(); returns the probe so callers can
  // add custom samplers before run(). Call at most once, before run().
  obs::Probe& enable_trace(Time period);

  [[nodiscard]] obs::TraceSink& trace() { return trace_sink_; }
  [[nodiscard]] bool tracing() const { return trace_probe_ != nullptr; }

  // Accessors ---------------------------------------------------------------
  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] FlowStatsCollector& stats() { return stats_; }
  [[nodiscard]] const std::vector<FlowId>& flow_ids() const { return flow_ids_; }
  [[nodiscard]] TcpSender& sender(std::size_t flow_index) {
    return flows_.at(flow_index)->sender();
  }
  [[nodiscard]] const Device& bottleneck(int link = 0) const {
    return *topo_.bottlenecks.at(link);
  }
  // Non-null only for QdiscKind::kCebinae.
  [[nodiscard]] CebinaeAgent* agent(int link = 0) {
    return agents_.empty() ? nullptr : agents_.at(link).get();
  }
  [[nodiscard]] CebinaeQueueDisc* cebinae_qdisc(int link = 0) {
    return cebinae_qdiscs_.empty() ? nullptr : cebinae_qdiscs_.at(link);
  }
  [[nodiscard]] const ScenarioConfig& config() const { return cfg_; }
  [[nodiscard]] const CebinaeParams& effective_cebinae_params() const {
    return effective_params_;
  }

  // Ideal max-min goodput allocation (application-level) for this scenario's
  // topology and flows — Fig. 11's "Ideal" bars.
  [[nodiscard]] std::vector<double> ideal_goodputs_Bps() const;

 private:
  [[nodiscard]] std::unique_ptr<QueueDisc> make_bottleneck_qdisc(int link);

  ScenarioConfig cfg_;
  CebinaeParams effective_params_;
  std::unique_ptr<Network> net_;
  FlowStatsCollector stats_;
  ChainTopology topo_;
  std::vector<std::unique_ptr<BulkFlow>> flows_;
  std::vector<FlowId> flow_ids_;
  std::vector<std::unique_ptr<CebinaeAgent>> agents_;
  std::vector<CebinaeQueueDisc*> cebinae_qdiscs_;
  std::vector<std::unique_ptr<PacketGenerator>> probes_;
  obs::TraceSink trace_sink_;
  std::unique_ptr<obs::Probe> trace_probe_;
};

}  // namespace cebinae
