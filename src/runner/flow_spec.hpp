// Per-flow configuration used by ScenarioConfig.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.hpp"
#include "tcp/cc_factory.hpp"

namespace cebinae {

struct FlowSpec {
  CcaType cca = CcaType::kNewReno;
  Time rtt = Milliseconds(50);  // two-way propagation target
  Time start = Time::zero();
  Time stop = Time::max();
  std::uint64_t bytes = std::numeric_limits<std::uint64_t>::max();
  bool ecn = false;
  int enter = 0;   // entry switch index on the chain
  int exit = -1;   // exit switch index; -1 = last switch
};

// Convenience: n identical flows.
[[nodiscard]] inline std::vector<FlowSpec> flows_of(CcaType cca, int n, Time rtt) {
  std::vector<FlowSpec> v(static_cast<std::size_t>(n));
  for (auto& f : v) {
    f.cca = cca;
    f.rtt = rtt;
  }
  return v;
}

}  // namespace cebinae
