// Port saturation detector (paper §4.1).
//
// The data plane maintains a monotonically increasing per-port transmit byte
// counter (here behind a Mantis-style shadow register); the control plane
// samples it every recomputation interval without resetting it and compares
// the observed delta against (1 - δp) · capacity · interval.
#pragma once

#include <cstdint>

#include "control/shadow_register.hpp"
#include "sim/time.hpp"

namespace cebinae {

class PortSaturationDetector {
 public:
  PortSaturationDetector(std::uint64_t capacity_bps, double delta_port)
      : capacity_bps_(capacity_bps), delta_port_(delta_port), counter_(1) {}

  // Data-plane hot path: account transmitted bytes.
  void on_transmit(std::uint64_t bytes) { counter_.at(0) += bytes; }

  // Control-plane sampling: snapshot the counter, diff against the previous
  // sample, and report saturation over the elapsed interval.
  bool sample(Time interval);

  [[nodiscard]] bool saturated() const { return saturated_; }
  [[nodiscard]] double last_utilization() const { return last_utilization_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return counter_.at(0); }

 private:
  std::uint64_t capacity_bps_;
  double delta_port_;
  ShadowRegisterArray<std::uint64_t> counter_;
  std::uint64_t last_sample_ = 0;
  double last_utilization_ = 0.0;
  bool saturated_ = false;
};

}  // namespace cebinae
