#include "core/agent.hpp"

#include <algorithm>

#include "sim/logging.hpp"

namespace cebinae {

CebinaeAgent::CebinaeAgent(Scheduler& sched, CebinaeQueueDisc& qdisc)
    : sched_(sched),
      qdisc_(qdisc),
      params_(qdisc.params()),
      capacity_Bps_(static_cast<double>(qdisc.capacity_bps()) / 8.0),
      rotate_gen_(sched, params_.dt, [this] { on_rotate(); }) {}

void CebinaeAgent::start() { rotate_gen_.start(params_.dt); }

void CebinaeAgent::on_rotate() {
  qdisc_.rotate();
  ++rotations_;

  if (rotations_ % params_.p_rounds == 0) recompute();

  // Commit window [t0 + vdT, t0 + vdT + L]: the drained queue is guaranteed
  // empty, so rate and membership changes are safe. Apply the latest targets
  // to the queue that just became available for scheduling.
  sched_.schedule(params_.vdt + params_.l_deadline, [this] {
    const bool was_saturated = qdisc_.lbf().saturated_phase();
    if (target_saturated_ && !was_saturated) {
      qdisc_.set_top_flows(target_top_flows_);
      qdisc_.lbf().enter_saturated(target_top_rate_, target_bottom_rate_);
      ++phase_changes_;
    } else if (target_saturated_) {
      qdisc_.set_top_flows(target_top_flows_);
      qdisc_.lbf().set_future_rates(target_top_rate_, target_bottom_rate_);
    } else if (was_saturated) {
      qdisc_.set_top_flows({});
      qdisc_.lbf().leave_saturated();
      ++phase_changes_;
    }
  });
}

void CebinaeAgent::recompute() {
  ++recomputations_;
  const Time interval = params_.dt * params_.p_rounds;

  // Fig. 4 lines 8-13: port utilization from the shadow byte counter.
  const bool saturated = qdisc_.port().sample(interval);

  // Fig. 4 line 10: the cache is polled and reset every interval regardless
  // of saturation, so counters never span multiple intervals.
  const std::vector<FlowCache::Entry> entries = qdisc_.cache().poll_and_reset();

  snapshot_.saturated = saturated;
  snapshot_.utilization = qdisc_.port().last_utilization();
  snapshot_.top_flows.clear();

  if (!saturated || entries.empty()) {
    target_saturated_ = false;
    target_top_flows_.clear();
    snapshot_.top_rate_Bps = 0.0;
    snapshot_.bottom_rate_Bps = capacity_Bps_;
    return;
  }

  // Fig. 4 lines 14-22: classify ⊤ flows and tax them.
  std::uint64_t c_max = 0;
  for (const auto& e : entries) c_max = std::max(c_max, e.bytes);

  const double threshold = static_cast<double>(c_max) * (1.0 - params_.delta_flow);
  std::unordered_set<FlowId, FlowIdHash> top;
  double bottleneck_bytes = 0.0;
  for (const auto& e : entries) {
    if (static_cast<double>(e.bytes) >= threshold) {
      top.insert(e.flow);
      bottleneck_bytes += static_cast<double>(e.bytes);
      snapshot_.top_flows.push_back(e.flow);
    }
  }
  bottleneck_bytes *= 1.0 - params_.tau;

  // Fig. 4 lines 27-28: split the capacity between the groups.
  const double interval_s = interval.seconds();
  double top_rate = bottleneck_bytes / interval_s;
  top_rate = std::min(top_rate, capacity_Bps_);
  const double bottom_rate = capacity_Bps_ - top_rate;

  target_saturated_ = true;
  target_top_rate_ = top_rate;
  target_bottom_rate_ = bottom_rate;
  target_top_flows_ = std::move(top);

  snapshot_.top_rate_Bps = top_rate;
  snapshot_.bottom_rate_Bps = bottom_rate;

  CEBINAE_DEBUG("cebinae", "recompute: util=" << snapshot_.utilization
                                              << " top_flows=" << target_top_flows_.size()
                                              << " top_rate=" << top_rate);
}

}  // namespace cebinae
