#include "core/resource_model.hpp"

namespace cebinae {

namespace {
// Approximate per-pipe budgets of a Tofino 1 (public figures): 4096 PHV
// bits, 12 MAU stages x 80 SRAM blocks x 16 KB, 12 x 24 TCAM blocks x
// 1.28 KB.
constexpr double kPhvBudgetBits = 4096.0;
constexpr double kSramBudgetKb = 12 * 80 * 16.0;
constexpr double kTcamBudgetKb = 12 * 24 * 1.28;

// Affine calibration against Table 3 (1-stage and 2-stage rows):
//   PHV  = 832 + 105 * stages      (937, 1042)
//   SRAM = 800 + 1648 * stages     (2448, 4096) at 4096 slots x 32 ports
//   TCAM = -4 + 19 * stages        (15, 34)
//   VLIW = 85 + 4 * stages         (89, 93)
// The fixed terms cover the LBF state, port counters, and scheduling logic;
// the per-stage terms cover one register array plus hash/match logic.
constexpr double kPhvBase = 832.0;
constexpr double kPhvPerStage = 105.0;
constexpr double kSramBaseKb = 800.0;
constexpr double kSramPerStageKb = 1648.0;  // at the reference geometry
constexpr double kTcamPerStageKb = 19.0;
constexpr double kTcamBaseKb = -4.0;
constexpr double kVliwBase = 85.0;
constexpr double kVliwPerStage = 4.0;

constexpr std::uint32_t kReferencePorts = 32;
constexpr std::uint32_t kReferenceSlots = 4096;
}  // namespace

double TofinoResources::phv_fraction() const { return phv_bits / kPhvBudgetBits; }
double TofinoResources::sram_fraction() const { return sram_kb / kSramBudgetKb; }
double TofinoResources::tcam_fraction() const { return tcam_kb / kTcamBudgetKb; }

TofinoResources TofinoResourceModel::estimate(std::uint32_t cache_stages) const {
  TofinoResources r;
  r.cache_stages = cache_stages;
  r.pipeline_stages = 11;  // fixed by the Cebinae pipeline layout (Table 3)
  r.phv_bits = static_cast<std::uint32_t>(kPhvBase + kPhvPerStage * cache_stages);

  // SRAM scales with the cache geometry relative to the calibration point.
  const double geometry_scale =
      (static_cast<double>(ports_) / kReferencePorts) *
      (static_cast<double>(slots_per_port_) / kReferenceSlots);
  r.sram_kb = static_cast<std::uint32_t>(kSramBaseKb +
                                         kSramPerStageKb * geometry_scale * cache_stages);

  const double tcam = kTcamBaseKb + kTcamPerStageKb * cache_stages;
  r.tcam_kb = tcam > 0 ? static_cast<std::uint32_t>(tcam) : 0;
  r.vliw_instructions = static_cast<std::uint32_t>(kVliwBase + kVliwPerStage * cache_stages);
  r.queues = 2 * ports_;  // exactly two priorities per port -- Cebinae's claim
  return r;
}

}  // namespace cebinae
