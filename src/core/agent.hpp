// Cebinae's control-plane agent (the paper's Fig. 4 pseudocode on the
// Fig. 6 timeline).
//
// Every dT the data plane rotates queue priorities (driven by the packet
// generator). Every P rotations the agent samples the port's shadow byte
// counter, polls-and-resets the heavy-hitter cache, classifies ⊤ flows
// (within δf of the maximum), and computes taxed rate allocations; all
// changes commit at t0 + vdT + L — the window in which the drained queue is
// guaranteed empty, so membership moves cannot reorder packets.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "control/packet_generator.hpp"
#include "core/cebinae_queue_disc.hpp"
#include "core/params.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

class CebinaeAgent {
 public:
  CebinaeAgent(Scheduler& sched, CebinaeQueueDisc& qdisc);

  // Begin the rotation/recomputation loop; the first ROTATE fires one dT
  // from now (bootstrapping the LBF's time origin).
  void start();

  struct Snapshot {
    bool saturated = false;
    double utilization = 0.0;
    double top_rate_Bps = 0.0;
    double bottom_rate_Bps = 0.0;
    std::vector<FlowId> top_flows;
  };
  [[nodiscard]] const Snapshot& snapshot() const { return snapshot_; }

  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }
  [[nodiscard]] std::uint64_t recomputations() const { return recomputations_; }
  [[nodiscard]] std::uint64_t phase_changes() const { return phase_changes_; }

 private:
  void on_rotate();
  void recompute();

  Scheduler& sched_;
  CebinaeQueueDisc& qdisc_;
  CebinaeParams params_;
  double capacity_Bps_;
  PacketGenerator rotate_gen_;  // models the hardware ROTATE packet source

  std::uint64_t rotations_ = 0;
  std::uint64_t recomputations_ = 0;
  std::uint64_t phase_changes_ = 0;

  // Targets computed by the last recomputation, applied to each queue as it
  // becomes available.
  bool target_saturated_ = false;
  double target_top_rate_ = 0.0;
  double target_bottom_rate_ = 0.0;
  std::unordered_set<FlowId, FlowIdHash> target_top_flows_;

  Snapshot snapshot_;
};

}  // namespace cebinae
