// Cebinae's configurable parameters (the paper's Table 1) plus the derived
// sizing rules from §4.4.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace cebinae {

struct CebinaeParams {
  double delta_port = 0.01;  // δp: port saturation threshold
  double delta_flow = 0.01;  // δf: flow bottleneck threshold
  double tau = 0.01;         // τ: tax rate

  std::uint32_t p_rounds = 1;           // P: dT periods per recomputation
  Time l_deadline = Nanoseconds(1 << 16);   // L: control-plane deadline
  Time dt = Nanoseconds(1 << 27);           // dT: physical bucket duration (2^n)
  Time vdt = Nanoseconds(1 << 10);          // vdT: virtual bucket duration (2^m, m<n)

  bool mark_ecn = false;  // optionally mark instead of delay-only signaling

  // Heavy-hitter cache geometry (§4.2 / Table 3).
  std::uint32_t cache_stages = 2;
  std::uint32_t cache_slots = 2048;  // per stage

  // Round a duration up to the next power-of-two nanoseconds (Tofino-style
  // bucket durations enable the vdT masking trick in Fig. 5).
  [[nodiscard]] static Time next_pow2(Time t) {
    std::int64_t v = 1;
    while (v < t.ns()) v <<= 1;
    return Time(v);
  }

  // §4.4/Eq. 2 sizing: dT >= buffer/BW + vdT + L so that even a full-buffer
  // burst admitted late in a round drains before the queue is reused.
  // Also derives P to cover the network's maximum RTT.
  [[nodiscard]] static CebinaeParams for_link(std::uint64_t rate_bps,
                                              std::uint64_t buffer_bytes, Time max_rtt) {
    CebinaeParams p;
    const double drain_s =
        static_cast<double>(buffer_bytes) * 8.0 / static_cast<double>(rate_bps);
    const Time lower = SecondsF(drain_s) + p.vdt + p.l_deadline;
    p.dt = next_pow2(lower);
    p.p_rounds = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, (max_rtt.ns() + p.dt.ns() - 1) / p.dt.ns()));
    return p;
  }
};

}  // namespace cebinae
