// Passive HashPipe-style heavy-hitter cache (paper §4.2).
//
// Multiple stages of hash-mapped flow tables. An arriving packet hashes to
// one slot per stage; at the first stage whose slot is empty or already owns
// the packet's flow, the byte counter is incremented. If every stage's slot
// belongs to another flow, the packet is simply not counted (a possible
// false negative, never a false positive — exact keys are stored, satisfying
// the paper's "never make unfairness worse" principle).
//
// Memory is managed passively: the control plane polls-and-resets the whole
// structure every interval, giving every active flow a fresh chance to claim
// a slot; heavy hitters re-claim theirs almost immediately because they send
// the most packets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace cebinae {

class FlowCache {
 public:
  FlowCache(std::uint32_t stages, std::uint32_t slots_per_stage);

  // Data-plane update: account `bytes` to `flow` if a slot can be claimed.
  // Returns false when the packet went uncounted (all stages collided).
  bool add(const FlowId& flow, std::uint64_t bytes);

  struct Entry {
    FlowId flow;
    std::uint64_t bytes = 0;
  };

  // Control-plane poll: returns all occupied entries and resets the cache.
  [[nodiscard]] std::vector<Entry> poll_and_reset();

  // Read-only peek (tests/debugging).
  [[nodiscard]] std::optional<std::uint64_t> bytes_for(const FlowId& flow) const;
  [[nodiscard]] std::uint64_t occupied_slots() const { return occupied_; }
  [[nodiscard]] std::uint64_t uncounted_packets() const { return uncounted_; }
  [[nodiscard]] std::uint32_t stages() const { return stages_; }
  [[nodiscard]] std::uint32_t slots_per_stage() const { return slots_; }

 private:
  struct Slot {
    FlowId flow;
    std::uint64_t bytes = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t index_of(const FlowId& flow, std::uint32_t stage) const;

  std::uint32_t stages_;
  std::uint32_t slots_;
  std::vector<Slot> table_;  // stages_ x slots_, row-major
  std::uint64_t occupied_ = 0;
  std::uint64_t uncounted_ = 0;
};

}  // namespace cebinae
