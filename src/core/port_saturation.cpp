#include "core/port_saturation.hpp"

namespace cebinae {

bool PortSaturationDetector::sample(Time interval) {
  counter_.snapshot();
  const std::uint64_t current = counter_.shadow_at(0);
  const std::uint64_t delta = current - last_sample_;
  last_sample_ = current;

  const double capacity_bytes =
      static_cast<double>(capacity_bps_) / 8.0 * interval.seconds();
  last_utilization_ = capacity_bytes > 0 ? static_cast<double>(delta) / capacity_bytes : 0.0;
  saturated_ = last_utilization_ >= 1.0 - delta_port_;
  return saturated_;
}

}  // namespace cebinae
