#include "core/lbf.hpp"

#include <algorithm>
#include <cassert>

namespace cebinae {

LeakyBucketFilter::LeakyBucketFilter(const CebinaeParams& params, std::uint64_t capacity_bps)
    : params_(params),
      capacity_Bps_(static_cast<double>(capacity_bps) / 8.0),
      dt_s_(params.dt.seconds()),
      vdt_s_(params.vdt.seconds()),
      vdt_mask_(~(params.vdt.ns() - 1)),
      rounds_per_dt_(params.dt.ns() / params.vdt.ns()) {
  assert((params.dt.ns() & (params.dt.ns() - 1)) == 0 && "dT must be a power of two");
  assert((params.vdt.ns() & (params.vdt.ns() - 1)) == 0 && "vdT must be a power of two");
  assert(params.vdt < params.dt);
  // Unsaturated phase: both queues pass traffic at full capacity.
  for (auto& q : rate_) q[0] = q[1] = capacity_Bps_;
}

void LeakyBucketFilter::advance_virtual_round(Time now) {
  if (now >= round_time_ + params_.vdt) {
    round_time_ = Time(now.ns() & vdt_mask_);
    relative_round_ = (round_time_ - base_round_time_) / params_.vdt;
  }
}

double LeakyBucketFilter::entitled_bytes(double rate_head_Bps, double rate_tail_Bps) const {
  const double rel = static_cast<double>(std::max<std::int64_t>(relative_round_, 0));
  if (relative_round_ < rounds_per_dt_) {
    return rate_head_Bps * rel * vdt_s_;
  }
  if (relative_round_ < 2 * rounds_per_dt_) {
    return rate_head_Bps * dt_s_ +
           (rel - static_cast<double>(rounds_per_dt_)) * rate_tail_Bps * vdt_s_;
  }
  // Should never happen with timely rotations; entitle the full horizon.
  return rate_head_Bps * dt_s_ + rate_tail_Bps * dt_s_;
}

LeakyBucketFilter::Decision LeakyBucketFilter::admit(FlowGroup group, std::uint32_t size,
                                                     Time now) {
  advance_virtual_round(now);
  const int tail = 1 - head_;

  // Aggregate counter integrates against full capacity on both queues; it
  // both implements the unsaturated-phase filter and feeds the atomic
  // phase-change bootstrap.
  const double total_entitled = entitled_bytes(capacity_Bps_, capacity_Bps_);
  total_bytes_ = std::max(total_bytes_, total_entitled) + size;

  double past_head;
  double past_tail;

  if (!saturated_) {
    past_head = total_bytes_ - capacity_Bps_ * dt_s_;
    past_tail = past_head - capacity_Bps_ * dt_s_;
  } else {
    const int g = static_cast<int>(group);
    if (!group_valid_[g]) {
      // First packet of the group after the unsaturated->saturated phase
      // change: bytes[f] = total_bytes * (rate[f] / capacity), where
      // total_bytes is the aggregate counter captured atomically at the
      // transition (paper §4.3).
      bytes_[g] = bootstrap_total_ * bootstrap_share_[g];
      group_valid_[g] = true;
    }
    const double rate_head = rate_[head_][g];
    const double rate_tail = rate_[tail][g];
    const double entitled = entitled_bytes(rate_head, rate_tail);
    bytes_[g] = std::max(bytes_[g], entitled) + size;
    past_head = bytes_[g] - rate_head * dt_s_;
    past_tail = past_head - rate_tail * dt_s_;
  }

  Decision d;
  if (past_head <= 0) {
    d.queue = Queue::kHead;
  } else if (past_tail <= 0) {
    d.queue = Queue::kTail;
    // Fig. 5 line 26: the optional ECN mark applies to packets delayed into
    // the future queue while the port is saturated (the unsaturated-phase
    // aggregate filter is buffer management, not a congestion signal).
    d.mark_ecn = params_.mark_ecn && saturated_;
  } else {
    d.queue = Queue::kDrop;
    // The dropped packet must not consume allocation.
    if (saturated_) bytes_[static_cast<int>(group)] -= size;
    total_bytes_ -= size;
  }
  return d;
}

void LeakyBucketFilter::rotate(Time now) {
  // Drain the just-ended round's allocation (pkt.last_rate in Fig. 5).
  for (int g = 0; g < 2; ++g) {
    bytes_[g] = std::max(bytes_[g] - rate_[head_][g] * dt_s_, 0.0);
  }
  total_bytes_ = std::max(total_bytes_ - capacity_Bps_ * dt_s_, 0.0);

  base_round_time_ += params_.dt;
  // Re-anchor if the generator started late relative to our origin.
  if (base_round_time_ + params_.dt < now) {
    base_round_time_ = Time(now.ns() & ~(params_.dt.ns() - 1));
  }
  advance_virtual_round(now);
  relative_round_ = (round_time_ - base_round_time_) / params_.vdt;

  head_ = 1 - head_;
  ++rotations_;
}

void LeakyBucketFilter::set_future_rates(double top_Bps, double bottom_Bps) {
  const int tail = 1 - head_;
  rate_[tail][static_cast<int>(FlowGroup::kTop)] = top_Bps;
  rate_[tail][static_cast<int>(FlowGroup::kBottom)] = bottom_Bps;
}

void LeakyBucketFilter::enter_saturated(double top_Bps, double bottom_Bps) {
  saturated_ = true;
  for (auto& q : rate_) {
    q[static_cast<int>(FlowGroup::kTop)] = top_Bps;
    q[static_cast<int>(FlowGroup::kBottom)] = bottom_Bps;
  }
  group_valid_[0] = group_valid_[1] = false;
  bootstrap_total_ = total_bytes_;
  bootstrap_share_[static_cast<int>(FlowGroup::kTop)] = top_Bps / capacity_Bps_;
  bootstrap_share_[static_cast<int>(FlowGroup::kBottom)] = bottom_Bps / capacity_Bps_;
}

void LeakyBucketFilter::leave_saturated() {
  saturated_ = false;
  for (auto& q : rate_) q[0] = q[1] = capacity_Bps_;
}

}  // namespace cebinae
