#include "core/flow_cache.hpp"

#include <cassert>

namespace cebinae {

namespace {
// Per-stage hash seeds: each stage must hash flows independently or the
// stages provide no collision relief.
constexpr std::uint64_t kStageSeeds[] = {
    0x243f6a8885a308d3ULL, 0x13198a2e03707344ULL, 0xa4093822299f31d0ULL,
    0x082efa98ec4e6c89ULL, 0x452821e638d01377ULL, 0xbe5466cf34e90c6cULL,
    0xc0ac29b7c97c50ddULL, 0x3f84d5b5b5470917ULL,
};

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

FlowCache::FlowCache(std::uint32_t stages, std::uint32_t slots_per_stage)
    : stages_(stages), slots_(slots_per_stage),
      table_(static_cast<std::size_t>(stages) * slots_per_stage) {
  assert(stages_ >= 1 && stages_ <= 8);
  assert(slots_ >= 1);
}

std::size_t FlowCache::index_of(const FlowId& flow, std::uint32_t stage) const {
  const std::uint64_t h = mix(FlowIdHash{}(flow) ^ kStageSeeds[stage]);
  return static_cast<std::size_t>(stage) * slots_ + h % slots_;
}

bool FlowCache::add(const FlowId& flow, std::uint64_t bytes) {
  for (std::uint32_t s = 0; s < stages_; ++s) {
    Slot& slot = table_[index_of(flow, s)];
    if (!slot.used) {
      slot.used = true;
      slot.flow = flow;
      slot.bytes = bytes;
      ++occupied_;
      return true;
    }
    if (slot.flow == flow) {
      slot.bytes += bytes;
      return true;
    }
  }
  ++uncounted_;
  return false;
}

std::vector<FlowCache::Entry> FlowCache::poll_and_reset() {
  std::vector<Entry> entries;
  entries.reserve(occupied_);
  for (Slot& slot : table_) {
    if (slot.used) {
      entries.push_back(Entry{slot.flow, slot.bytes});
      slot = Slot{};
    }
  }
  occupied_ = 0;
  return entries;
}

std::optional<std::uint64_t> FlowCache::bytes_for(const FlowId& flow) const {
  for (std::uint32_t s = 0; s < stages_; ++s) {
    const Slot& slot = table_[index_of(flow, s)];
    if (slot.used && slot.flow == flow) return slot.bytes;
  }
  return std::nullopt;
}

}  // namespace cebinae
