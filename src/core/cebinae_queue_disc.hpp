// Cebinae's per-port data plane: two physical queues with priority given by
// the LBF's head index, the egress heavy-hitter cache, the port saturation
// counter, and the ⊤-flow membership table (exact-match, so hash collisions
// can never tax an innocent flow).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_set>

#include "core/flow_cache.hpp"
#include "core/lbf.hpp"
#include "core/params.hpp"
#include "core/port_saturation.hpp"
#include "queueing/queue_disc.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

class CebinaeQueueDisc final : public QueueDisc {
 public:
  CebinaeQueueDisc(Scheduler& sched, std::uint64_t capacity_bps, std::uint64_t buffer_bytes,
                   CebinaeParams params);

  bool enqueue(Packet pkt) override;
  std::optional<Packet> dequeue() override;

  [[nodiscard]] std::uint64_t byte_count() const override { return qbytes_[0] + qbytes_[1]; }
  [[nodiscard]] std::uint64_t packet_count() const override { return q_[0].size() + q_[1].size(); }

  // Data-plane components (driven by the control-plane agent).
  [[nodiscard]] LeakyBucketFilter& lbf() { return lbf_; }
  [[nodiscard]] FlowCache& cache() { return cache_; }
  [[nodiscard]] PortSaturationDetector& port() { return port_; }

  // ROTATE: flip queue priorities and drain the LBF accounting.
  void rotate();

  void set_top_flows(std::unordered_set<FlowId, FlowIdHash> flows) {
    top_flows_ = std::move(flows);
  }
  [[nodiscard]] bool is_top(const FlowId& flow) const {
    return top_flows_.find(flow) != top_flows_.end();
  }
  [[nodiscard]] const std::unordered_set<FlowId, FlowIdHash>& top_flows() const {
    return top_flows_;
  }

  [[nodiscard]] std::uint64_t capacity_bps() const { return capacity_bps_; }
  [[nodiscard]] std::uint64_t buffer_bytes() const { return buffer_bytes_; }
  [[nodiscard]] const CebinaeParams& params() const { return params_; }

  [[nodiscard]] std::uint64_t delayed_packets() const { return delayed_packets_; }
  [[nodiscard]] std::uint64_t lbf_dropped_packets() const { return lbf_dropped_packets_; }
  [[nodiscard]] std::uint64_t buffer_dropped_packets() const { return buffer_dropped_packets_; }

 private:
  Scheduler& sched_;
  std::uint64_t capacity_bps_;
  std::uint64_t buffer_bytes_;
  CebinaeParams params_;

  LeakyBucketFilter lbf_;
  FlowCache cache_;
  PortSaturationDetector port_;
  std::unordered_set<FlowId, FlowIdHash> top_flows_;

  std::deque<TimestampedPacket> q_[2];
  std::uint64_t qbytes_[2] = {0, 0};

  std::uint64_t delayed_packets_ = 0;
  std::uint64_t lbf_dropped_packets_ = 0;
  std::uint64_t buffer_dropped_packets_ = 0;
};

}  // namespace cebinae
