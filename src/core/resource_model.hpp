// Analytic Tofino resource-usage model (substitution for Table 3).
//
// The paper reports the P4 compiler's resource usage for Cebinae's data
// plane on a 32-port Tofino. We do not have the Tofino toolchain, so this
// model expresses each resource as a calibrated affine function of the flow
// cache's stage count; the two configurations from the paper reproduce
// Table 3 exactly, and other configurations extrapolate along the same cost
// structure (each extra cache stage adds one register array, its hash
// computation, and its match logic).
#pragma once

#include <cstdint>

namespace cebinae {

struct TofinoResources {
  std::uint32_t cache_stages = 0;
  std::uint32_t pipeline_stages = 0;  // MAU stages occupied
  std::uint32_t phv_bits = 0;
  std::uint32_t sram_kb = 0;
  std::uint32_t tcam_kb = 0;
  std::uint32_t vliw_instructions = 0;
  std::uint32_t queues = 0;

  // Fractions of a 32-port Tofino pipe's budget (approximate public specs).
  [[nodiscard]] double phv_fraction() const;
  [[nodiscard]] double sram_fraction() const;
  [[nodiscard]] double tcam_fraction() const;
};

class TofinoResourceModel {
 public:
  // `ports`: switch port count; `slots`: cache slots per port per stage.
  // Table 3 uses 32 ports and 4096 slots.
  explicit TofinoResourceModel(std::uint32_t ports = 32, std::uint32_t slots_per_port = 4096)
      : ports_(ports), slots_per_port_(slots_per_port) {}

  [[nodiscard]] TofinoResources estimate(std::uint32_t cache_stages) const;

 private:
  std::uint32_t ports_;
  std::uint32_t slots_per_port_;
};

}  // namespace cebinae
