#include "core/cebinae_queue_disc.hpp"

#include <utility>

namespace cebinae {

CebinaeQueueDisc::CebinaeQueueDisc(Scheduler& sched, std::uint64_t capacity_bps,
                                   std::uint64_t buffer_bytes, CebinaeParams params)
    : sched_(sched),
      capacity_bps_(capacity_bps),
      buffer_bytes_(buffer_bytes),
      params_(params),
      lbf_(params, capacity_bps),
      cache_(params.cache_stages, params.cache_slots),
      port_(capacity_bps, params.delta_port) {}

bool CebinaeQueueDisc::enqueue(Packet pkt) {
  // Shared physical buffer: the LBF's guarantees assume the whole buffer is
  // available to whichever queue needs it (paper §4.4).
  if (byte_count() + pkt.size_bytes > buffer_bytes_) {
    ++buffer_dropped_packets_;
    ++stats_.dropped_packets;
    stats_.dropped_bytes += pkt.size_bytes;
    return false;
  }

  const FlowGroup group = is_top(pkt.flow) ? FlowGroup::kTop : FlowGroup::kBottom;
  const LeakyBucketFilter::Decision d = lbf_.admit(group, pkt.size_bytes, sched_.now());

  switch (d.queue) {
    case LeakyBucketFilter::Queue::kDrop:
      ++lbf_dropped_packets_;
      ++stats_.dropped_packets;
      stats_.dropped_bytes += pkt.size_bytes;
      return false;
    case LeakyBucketFilter::Queue::kTail:
      ++delayed_packets_;
      if (d.mark_ecn && pkt.ect) {
        pkt.ce = true;
        ++stats_.ecn_marked_packets;
      }
      break;
    case LeakyBucketFilter::Queue::kHead:
      break;
  }

  const int q = d.queue == LeakyBucketFilter::Queue::kHead ? lbf_.head_index()
                                                           : 1 - lbf_.head_index();
  qbytes_[q] += pkt.size_bytes;
  ++stats_.enqueued_packets;
  q_[q].push_back(TimestampedPacket{std::move(pkt), sojourn_now()});
  return true;
}

std::optional<Packet> CebinaeQueueDisc::dequeue() {
  const int head = lbf_.head_index();
  for (int q : {head, 1 - head}) {
    if (q_[q].empty()) continue;
    TimestampedPacket tp = std::move(q_[q].front());
    q_[q].pop_front();
    qbytes_[q] -= tp.pkt.size_bytes;

    // Egress pipeline: per-port byte counter and heavy-hitter cache see
    // transmitted traffic only.
    port_.on_transmit(tp.pkt.size_bytes);
    cache_.add(tp.pkt.flow, tp.pkt.size_bytes);

    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += tp.pkt.size_bytes;
    record_sojourn(tp.enqueued);
    return std::move(tp.pkt);
  }
  return std::nullopt;
}

void CebinaeQueueDisc::rotate() { lbf_.rotate(sched_.now()); }

}  // namespace cebinae
