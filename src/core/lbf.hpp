// Cebinae's two-queue leaky-bucket filter: the data-plane admission logic of
// the paper's Fig. 5.
//
// The filter models a two-slot calendar queue. The high-priority queue
// (headq) is the current dT round's bucket; the low-priority queue (¬headq)
// is the next round's. Per flow-group byte counters are integrated against
// the group's per-queue rate allocations; a packet is admitted to headq if
// the group is within this round's allocation, delayed into ¬headq if within
// the next round's, and dropped otherwise. Virtual rounds of vdT floor the
// byte counters to the pacing line, bounding end-of-round catch-up bursts so
// the previous queue always drains within vdT of a rotation.
//
// This class is pure accounting (fully unit-testable); the packet storage
// lives in CebinaeQueueDisc.
#pragma once

#include <array>
#include <cstdint>

#include "core/params.hpp"
#include "sim/time.hpp"

namespace cebinae {

enum class FlowGroup : std::uint8_t { kBottom = 0, kTop = 1 };

class LeakyBucketFilter {
 public:
  enum class Queue : std::uint8_t { kHead, kTail, kDrop };

  struct Decision {
    Queue queue = Queue::kHead;
    bool mark_ecn = false;
  };

  LeakyBucketFilter(const CebinaeParams& params, std::uint64_t capacity_bps);

  // Fig. 5 lines 13-33: admission decision for a packet of `size` bytes.
  [[nodiscard]] Decision admit(FlowGroup group, std::uint32_t size, Time now);

  // Fig. 5 lines 8-12 (ROTATE packet): drain one round's allocation from the
  // byte counters, advance the round origin, and flip queue priorities.
  void rotate(Time now);

  // Control-plane API -------------------------------------------------------

  // Set the rates of the queue that just became available for scheduling
  // (the current ¬headq); the active headq keeps the rates fixed when it was
  // refilled (paper §4.3, "supporting dynamic rate changes").
  void set_future_rates(double top_Bps, double bottom_Bps);

  // Atomic phase change (paper §4.3, "supporting phase changes"). Entering
  // the saturated phase installs rates on both queues and re-bootstraps the
  // per-group byte counters from the aggregate counter the first time each
  // group sends; leaving it reverts to the aggregate capacity filter.
  void enter_saturated(double top_Bps, double bottom_Bps);
  void leave_saturated();

  [[nodiscard]] bool saturated_phase() const { return saturated_; }
  [[nodiscard]] int head_index() const { return head_; }
  [[nodiscard]] double rate_Bps(int queue, FlowGroup g) const {
    return rate_[queue][static_cast<int>(g)];
  }
  [[nodiscard]] double group_bytes(FlowGroup g) const { return bytes_[static_cast<int>(g)]; }
  [[nodiscard]] double total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }

 private:
  // Bytes the group was entitled to send since the current round's start,
  // integrating headq's rate over this round and (when the clock has slipped
  // past it) ¬headq's rate beyond (Fig. 5 lines 15-20).
  [[nodiscard]] double entitled_bytes(double rate_head_Bps, double rate_tail_Bps) const;

  void advance_virtual_round(Time now);

  CebinaeParams params_;
  double capacity_Bps_;
  double dt_s_;
  double vdt_s_;
  std::int64_t vdt_mask_;
  std::int64_t rounds_per_dt_;

  int head_ = 0;
  double rate_[2][2] = {};  // [physical queue][flow group], bytes/second

  double bytes_[2] = {};    // per-group accumulated bytes
  double total_bytes_ = 0;  // aggregate counter (phase-change bootstrap)
  bool group_valid_[2] = {true, true};
  double bootstrap_total_ = 0.0;
  double bootstrap_share_[2] = {0.0, 0.0};

  Time base_round_time_ = Time::zero();
  Time round_time_ = Time::zero();
  std::int64_t relative_round_ = 0;

  bool saturated_ = false;
  std::uint64_t rotations_ = 0;
};

}  // namespace cebinae
