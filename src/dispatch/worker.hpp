// Dispatch worker: one process in a distributed sweep.
//
// A worker rebuilds the experiment's job grid from the same RunOptions the
// coordinator used (make_jobs is deterministic), verifies the grid size
// against the ledger manifest, and then loops: claim a job through the
// JobLedger, execute it with exp::run_single_job under the job's GLOBAL
// grid index seed (derive_seed(base_seed, i) — the bit-identity contract
// with `--jobs=N`), append the result/trace rows to its own fsync'd shard,
// and publish the done marker. A background heartbeat thread refreshes the
// leases of in-flight jobs so a long scenario is not stolen mid-run.
//
// Exit conditions: the worker leaves when every job is settled (done or
// quarantined) or when the only unsettled jobs are ones it already failed
// itself (a different worker — possibly a respawn — must retry those).
#pragma once

#include <string>

#include "exp/registry.hpp"

namespace cebinae::dispatch {

struct WorkerOptions {
  std::string ledger_dir;
  std::string worker_id;   // e.g. "w0"; unique per spawn (respawns get new ids)
  int worker_index = 0;    // scan offset, spreads initial claims
  std::string experiment;
  exp::RunOptions run;     // full/smoke/trials/base_seed must match coordinator
  double lease_ttl_s = 30.0;
  int max_retries = 1;
  // Poll period while waiting on other workers' leases (seconds, real time).
  double poll_s = 0.05;
};

// Returns a process exit code (0 = clean, 2 = setup error).
int run_worker(const WorkerOptions& opts);

}  // namespace cebinae::dispatch
