#include "dispatch/merge.hpp"

#include <cmath>
#include <fstream>

namespace cebinae::dispatch {

namespace {

// Keys result_row() always emits that are NOT per-job metrics. Anything
// numeric outside this set is a RunRecord::extra metric (custom jobs) and
// must be restored so the registry's aggregation sees it again.
bool is_standard_key(std::string_view key) {
  static constexpr std::string_view kStandard[] = {
      "label",           "params",        "job_index",         "base_seed",
      "seed",            "qdisc",         "n_flows",           "chain_links",
      "bottleneck_bps",  "buffer_bytes",  "duration_s",        "goodput_Bps",
      "total_goodput_Bps", "tail_goodput_Bps", "throughput_Bps", "jfi",
      "wall_s",
  };
  for (std::string_view k : kStandard) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace

Shard load_shard(std::string_view worker, const std::string& results_path,
                 const std::string& trace_path) {
  Shard shard;
  shard.worker = std::string(worker);

  std::ifstream results(results_path);
  std::string line;
  while (std::getline(results, line)) {
    if (!exp::is_complete_row(line)) continue;  // killed mid-write
    const std::optional<ParsedRow> row = parse_row(line);
    if (!row.has_value()) continue;
    const std::uint64_t i = row->u64("job_index", ~0ull);
    if (i == ~0ull) continue;
    // First claim wins within a shard (a worker can only write the same job
    // twice across distinct claims, and the earlier one is the one whose
    // done marker it raced for).
    shard.result_by_job.emplace(i, line);
  }

  std::ifstream trace(trace_path);
  while (std::getline(trace, line)) {
    if (!exp::is_complete_row(line)) continue;
    const std::optional<ParsedRow> row = parse_row(line);
    if (!row.has_value()) continue;
    const std::uint64_t i = row->u64("job_index", ~0ull);
    if (i == ~0ull) continue;
    shard.trace_by_job[i].push_back(line);
  }
  return shard;
}

exp::RunRecord record_from_row(const ParsedRow& row, bool custom) {
  exp::RunRecord rec;
  rec.seed = row.u64("seed");
  rec.wall_seconds = row.num("wall_s");
  if (!custom) {
    if (const std::vector<double>* v = row.arr("goodput_Bps")) rec.result.goodput_Bps = *v;
    if (const std::vector<double>* v = row.arr("tail_goodput_Bps")) {
      rec.result.tail_goodput_Bps = *v;
    }
    if (const std::vector<double>* v = row.arr("throughput_Bps")) {
      rec.result.throughput_Bps = *v;
    }
    rec.result.total_goodput_Bps = row.num("total_goodput_Bps");
    rec.result.jfi = row.num("jfi", 1.0);
  }
  // Extras, in row order (aggregation derives metric ordering from the
  // first record's encounter order).
  for (const auto& [key, value] : row.fields) {
    if (value.kind != JsonField::Kind::kNumber && value.kind != JsonField::Kind::kNull) {
      continue;
    }
    if (is_standard_key(key)) continue;
    rec.extra.emplace_back(key, value.kind == JsonField::Kind::kNull ? std::nan("")
                                                                     : value.num);
  }
  return rec;
}

obs::TraceRow trace_from_row(const ParsedRow& row) {
  obs::TraceRow out(row.num("t_s"));
  for (const auto& [key, value] : row.fields) {
    if (key == "label" || key == "job_index" || key == "seed" || key == "t_s") continue;
    switch (value.kind) {
      case JsonField::Kind::kNumber:
        out.set(key, value.num);
        break;
      case JsonField::Kind::kNull:
        // json_number() serializes NaN as null; restore the NaN.
        out.set(key, std::nan(""));
        break;
      case JsonField::Kind::kArray:
        out.set(key, value.arr);
        break;
      default:
        break;  // trace rows never carry strings/objects beyond the context
    }
  }
  return out;
}

}  // namespace cebinae::dispatch
