// JobLedger: filesystem-coordinated claims/results protocol for the
// distributed sweep dispatcher.
//
// The ledger is a directory shared by one coordinator and N workers — on one
// host or on many hosts over a shared filesystem. Every operation is built
// from the two POSIX primitives that are atomic on such filesystems,
// link(2) and rename(2), so there are no in-memory locks to lose when a
// worker dies:
//
//   manifest.json            experiment identity + job count (coordinator)
//   job_<i>.lease            live claim: {"worker","t"} heartbeat stamp
//   job_<i>.done             completion marker; content = owning worker id
//   job_<i>.fail.<worker>    deterministic-failure record: {"worker","error"}
//   <worker>.results.jsonl   fsync'd result-row shard (exp::result_row)
//   <worker>.trace.jsonl     fsync'd trace-row shard (exp::trace_row)
//   <worker>.stderr          the worker process's captured stderr
//
// Claim protocol: a claim is link(tmp, lease) — the hard link either
// materializes the lease with its content already in place (no window where
// a reader can observe an empty lease) or fails with EEXIST. A lease whose
// stamp is older than lease_ttl_s is stale; stealing it is
// rename(lease, private-name), which exactly one concurrent stealer wins.
// Completion is rename(tmp, done) AFTER the result row's fsync returned, so
// a done marker proves the row is on disk. Exactly-once output holds even
// when a wedged worker resumes after its lease was stolen: both may execute
// the job, but the merge step reads only the marker owner's shard.
//
// Failure model: a worker that catches a job exception records a fail
// marker and releases the lease; the same worker never retries its own
// failure (deterministic failures would loop), a DIFFERENT worker may. Once
// failures from > max_retries distinct workers accumulate the job is
// quarantined — skipped by every claim scan and reported to
// <out>.failed.jsonl by the coordinator instead of being silently dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dispatch/clock.hpp"

namespace cebinae::dispatch {

struct JobFailure {
  std::string worker;
  std::string error;
};

// What the coordinator wrote when it set the ledger up; workers verify the
// job grid they rebuilt matches before claiming anything (guards against a
// mixed-version binary racing an incompatible sweep).
struct Manifest {
  std::string experiment;
  std::uint64_t n_jobs = 0;
  std::uint64_t base_seed = 1;
  int trials = 0;
  bool full = false;
  bool smoke = false;
};

class JobLedger {
 public:
  struct Options {
    std::string dir;
    std::string worker;            // this client's id, e.g. "w0"
    double lease_ttl_s = 30.0;     // heartbeat staleness before stealing
    int max_retries = 1;           // distinct-worker failures tolerated
    const Clock* clock = nullptr;  // nullptr = SystemClock::instance()
  };

  explicit JobLedger(Options opts);

  enum class ClaimResult {
    kClaimed,      // we hold the lease; run the job
    kHeld,         // live lease elsewhere
    kDone,         // completion marker exists
    kQuarantined,  // failed on > max_retries distinct workers
    kOwnFailure,   // we already failed it; another worker must retry
  };

  // Atomically claim job i (stealing an expired lease if needed).
  ClaimResult try_claim(std::uint64_t i);
  // Refresh our lease stamp (call periodically while running the job).
  void heartbeat(std::uint64_t i);
  // Drop our lease (after mark_done / record_failure).
  void release(std::uint64_t i);

  // Publish completion. Call only after the job's result row is durably in
  // our shard (JsonlWriter fsyncs per row, so write() returning suffices).
  void mark_done(std::uint64_t i);
  [[nodiscard]] bool is_done(std::uint64_t i) const;
  // Worker id recorded in the done marker ("" when not done).
  [[nodiscard]] std::string done_worker(std::uint64_t i) const;

  void record_failure(std::uint64_t i, std::string_view error);
  [[nodiscard]] std::vector<JobFailure> failures(std::uint64_t i) const;
  [[nodiscard]] bool quarantined(std::uint64_t i) const;

  // Jobs that are either done or quarantined; the sweep is finished when
  // settled_count(n) == n.
  [[nodiscard]] std::uint64_t settled_count(std::uint64_t n_jobs) const;
  [[nodiscard]] std::uint64_t done_count(std::uint64_t n_jobs) const;

  // Shard/stderr paths for a worker id (used by workers to open their own
  // sinks and by the coordinator's merge step).
  [[nodiscard]] std::string results_shard(std::string_view worker) const;
  [[nodiscard]] std::string trace_shard(std::string_view worker) const;
  [[nodiscard]] std::string stderr_path(std::string_view worker) const;

  void write_manifest(const Manifest& m) const;
  [[nodiscard]] std::optional<Manifest> read_manifest() const;

  [[nodiscard]] const std::string& dir() const { return opts_.dir; }
  [[nodiscard]] const std::string& worker() const { return opts_.worker; }
  [[nodiscard]] int max_retries() const { return opts_.max_retries; }

 private:
  [[nodiscard]] std::string lease_path(std::uint64_t i) const;
  [[nodiscard]] std::string done_path(std::uint64_t i) const;
  [[nodiscard]] std::string fail_path(std::uint64_t i, std::string_view worker) const;
  // Write content to a worker-private temp file (fsync'd); returns its path.
  [[nodiscard]] std::string write_temp(std::string_view content) const;
  // Atomic link-claim of the lease with a fresh stamp. True = we hold it.
  [[nodiscard]] bool link_claim(std::uint64_t i);

  Options opts_;
  const Clock* clock_;
};

}  // namespace cebinae::dispatch
