#include "dispatch/worker.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "dispatch/ledger.hpp"
#include "exp/experiment.hpp"
#include "exp/jsonl_writer.hpp"

namespace cebinae::dispatch {

namespace {

// Refreshes the lease stamps of in-flight jobs every ttl/4 so a healthy
// worker is never stolen from, no matter how long one scenario runs. A
// SIGKILLed worker stops heartbeating and its leases expire — that silence
// IS the crash detection.
class HeartbeatThread {
 public:
  HeartbeatThread(JobLedger& ledger, double ttl_s)
      : ledger_(ledger),
        period_(std::chrono::duration<double>(std::max(0.05, ttl_s / 4.0))),
        thread_([this] { loop(); }) {}

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void add(std::uint64_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    held_.push_back(i);
  }

  // Remove BEFORE JobLedger::release, or a concurrent heartbeat could
  // resurrect the lease file after the release unlinked it.
  void remove(std::uint64_t i) {
    std::lock_guard<std::mutex> lock(mu_);
    held_.erase(std::remove(held_.begin(), held_.end(), i), held_.end());
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, period_, [this] { return stop_; });
      if (stop_) break;
      const std::vector<std::uint64_t> held = held_;
      lock.unlock();
      for (std::uint64_t i : held) ledger_.heartbeat(i);
      lock.lock();
    }
  }

  JobLedger& ledger_;
  std::chrono::duration<double> period_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::vector<std::uint64_t> held_;
  std::thread thread_;
};

}  // namespace

int run_worker(const WorkerOptions& opts) {
  const exp::ExperimentSpec* spec =
      exp::ExperimentRegistry::instance().find(opts.experiment);
  if (spec == nullptr) {
    std::fprintf(stderr, "[%s] unknown experiment '%s'\n", opts.worker_id.c_str(),
                 opts.experiment.c_str());
    return 2;
  }
  const std::vector<exp::ExperimentJob> jobs = spec->make_jobs(opts.run);
  const std::uint64_t n = jobs.size();

  JobLedger::Options lo;
  lo.dir = opts.ledger_dir;
  lo.worker = opts.worker_id;
  lo.lease_ttl_s = opts.lease_ttl_s;
  lo.max_retries = opts.max_retries;
  JobLedger ledger(lo);

  const std::optional<Manifest> manifest = ledger.read_manifest();
  if (!manifest.has_value() || manifest->n_jobs != n ||
      manifest->experiment != opts.experiment ||
      manifest->base_seed != opts.run.base_seed) {
    std::fprintf(stderr, "[%s] manifest mismatch (grid %llu jobs vs manifest %llu)\n",
                 opts.worker_id.c_str(), static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(manifest ? manifest->n_jobs : 0));
    return 2;
  }

  exp::JsonlWriter results(ledger.results_shard(opts.worker_id),
                           exp::JsonlWriter::Mode::kAppend);
  exp::JsonlWriter traces(ledger.trace_shard(opts.worker_id),
                          exp::JsonlWriter::Mode::kAppend);
  HeartbeatThread heartbeats(ledger, opts.lease_ttl_s);

  std::uint64_t executed = 0;
  for (;;) {
    bool progressed = false;
    bool outstanding = false;  // live leases held by other workers
    for (std::uint64_t k = 0; k < n; ++k) {
      // Offset scan start per worker so N fresh workers fan out across the
      // grid instead of all contending on job 0.
      const std::uint64_t i = (k + static_cast<std::uint64_t>(opts.worker_index)) % n;
      switch (ledger.try_claim(i)) {
        case JobLedger::ClaimResult::kClaimed: {
          heartbeats.add(i);
          try {
            const std::uint64_t seed = exp::derive_seed(opts.run.base_seed, i);
            const exp::RunRecord rec = exp::run_single_job(jobs[i], seed);
            results.write(exp::result_row(jobs[i], i, opts.run.base_seed, rec));
            for (const obs::TraceRow& row : rec.trace) {
              traces.write(exp::trace_row(jobs[i], i, seed, row));
            }
            // Rows are fsync'd (JsonlWriter per-row durability), so the
            // marker can safely promise their existence.
            ledger.mark_done(i);
            ++executed;
            std::fprintf(stderr, "[%s] job %llu done\n", opts.worker_id.c_str(),
                         static_cast<unsigned long long>(i));
          } catch (const std::exception& e) {
            std::fprintf(stderr, "[%s] job %llu FAILED: %s\n", opts.worker_id.c_str(),
                         static_cast<unsigned long long>(i), e.what());
            ledger.record_failure(i, e.what());
          } catch (...) {
            std::fprintf(stderr, "[%s] job %llu FAILED: non-std exception\n",
                         opts.worker_id.c_str(), static_cast<unsigned long long>(i));
            ledger.record_failure(i, "non-std exception");
          }
          heartbeats.remove(i);
          ledger.release(i);
          progressed = true;
          break;
        }
        case JobLedger::ClaimResult::kHeld:
          outstanding = true;
          break;
        case JobLedger::ClaimResult::kDone:
        case JobLedger::ClaimResult::kQuarantined:
        case JobLedger::ClaimResult::kOwnFailure:
          break;
      }
    }
    if (progressed) continue;
    if (!outstanding) break;  // nothing claimable and no leases: all settled
                              // or blocked on our own failures — either way,
                              // this worker cannot contribute further.
    if (ledger.settled_count(n) == n) break;
    // Other workers hold live leases; wait for them to finish or for their
    // leases to expire so we can steal.
    std::this_thread::sleep_for(std::chrono::duration<double>(opts.poll_s));
  }

  std::fprintf(stderr, "[%s] exiting after %llu job(s)\n", opts.worker_id.c_str(),
               static_cast<unsigned long long>(executed));
  return 0;
}

}  // namespace cebinae::dispatch
