#include "dispatch/row_parse.hpp"

#include <cmath>
#include <cstdlib>

namespace cebinae::dispatch {

namespace {

// Cursor over one line; every helper returns false on malformed input.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }
  bool expect(char c) {
    if (done() || s[pos] != c) return false;
    ++pos;
    return true;
  }
  void skip_ws() {
    while (!done() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.expect('"')) return false;
  out.clear();
  while (!c.done()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.done()) return false;
      const char esc = c.s[c.pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          // JsonObject only emits \u00XX for control bytes; decode the low
          // byte and ignore the (always-zero) high byte.
          if (c.pos + 4 > c.s.size()) return false;
          const std::string hex(c.s.substr(c.pos, 4));
          c.pos += 4;
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          return false;
      }
    } else {
      out += ch;
    }
  }
  return false;  // ran off the end inside the string
}

bool parse_number(Cursor& c, JsonField& out) {
  const char* begin = c.s.data() + c.pos;
  char* end = nullptr;
  out.num = std::strtod(begin, &end);
  if (end == begin) return false;
  // Bare unsigned integer tokens (seeds, job indexes) are kept exactly:
  // %.17g round-trips doubles but a 64-bit seed printed as an integer would
  // lose its low bits through a double.
  out.is_uint = true;
  for (const char* p = begin; p != end; ++p) {
    if (*p < '0' || *p > '9') {
      out.is_uint = false;
      break;
    }
  }
  if (out.is_uint) out.uint = std::strtoull(begin, nullptr, 10);
  c.pos += static_cast<std::size_t>(end - begin);
  return c.pos <= c.s.size();
}

bool parse_literal(Cursor& c, std::string_view lit) {
  if (c.s.substr(c.pos, lit.size()) != lit) return false;
  c.pos += lit.size();
  return true;
}

// Raw text of a balanced nested object, stored verbatim (the coordinator
// never needs to look inside "params": the job list is rebuilt from the
// spec, and the merge copies shard lines byte-exactly).
bool parse_raw_object(Cursor& c, std::string& out) {
  const std::size_t start = c.pos;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  while (!c.done()) {
    const char ch = c.s[c.pos++];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') {
      in_string = true;
    } else if (ch == '{') {
      ++depth;
    } else if (ch == '}') {
      if (--depth == 0) {
        out.assign(c.s.substr(start, c.pos - start));
        return true;
      }
    }
  }
  return false;
}

bool parse_array(Cursor& c, std::vector<double>& out) {
  if (!c.expect('[')) return false;
  out.clear();
  c.skip_ws();
  if (!c.done() && c.peek() == ']') {
    ++c.pos;
    return true;
  }
  for (;;) {
    c.skip_ws();
    if (c.done()) return false;
    if (c.peek() == 'n') {
      if (!parse_literal(c, "null")) return false;
      out.push_back(std::nan(""));
    } else {
      JsonField elem;
      if (!parse_number(c, elem)) return false;
      out.push_back(elem.num);
    }
    c.skip_ws();
    if (c.done()) return false;
    if (c.peek() == ']') {
      ++c.pos;
      return true;
    }
    if (!c.expect(',')) return false;
  }
}

bool parse_value(Cursor& c, JsonField& out) {
  c.skip_ws();
  if (c.done()) return false;
  switch (c.peek()) {
    case '"':
      out.kind = JsonField::Kind::kString;
      return parse_string(c, out.str);
    case '[':
      out.kind = JsonField::Kind::kArray;
      return parse_array(c, out.arr);
    case '{':
      out.kind = JsonField::Kind::kObject;
      return parse_raw_object(c, out.str);
    case 't':
      out.kind = JsonField::Kind::kBool;
      out.b = true;
      return parse_literal(c, "true");
    case 'f':
      out.kind = JsonField::Kind::kBool;
      out.b = false;
      return parse_literal(c, "false");
    case 'n':
      out.kind = JsonField::Kind::kNull;
      out.num = std::nan("");
      return parse_literal(c, "null");
    default:
      out.kind = JsonField::Kind::kNumber;
      return parse_number(c, out);
  }
}

}  // namespace

const JsonField* ParsedRow::find(std::string_view name) const {
  for (const auto& [k, v] : fields) {
    if (k == name) return &v;
  }
  return nullptr;
}

double ParsedRow::num(std::string_view name, double dflt) const {
  const JsonField* f = find(name);
  return f != nullptr && f->kind == JsonField::Kind::kNumber ? f->num : dflt;
}

std::uint64_t ParsedRow::u64(std::string_view name, std::uint64_t dflt) const {
  const JsonField* f = find(name);
  if (f == nullptr || f->kind != JsonField::Kind::kNumber) return dflt;
  return f->is_uint ? f->uint : static_cast<std::uint64_t>(f->num);
}

std::string ParsedRow::str(std::string_view name) const {
  const JsonField* f = find(name);
  return f != nullptr && f->kind == JsonField::Kind::kString ? f->str : std::string();
}

const std::vector<double>* ParsedRow::arr(std::string_view name) const {
  const JsonField* f = find(name);
  return f != nullptr && f->kind == JsonField::Kind::kArray ? &f->arr : nullptr;
}

std::optional<ParsedRow> parse_row(std::string_view line) {
  Cursor c{line};
  c.skip_ws();
  if (!c.expect('{')) return std::nullopt;
  ParsedRow row;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.pos;
  } else {
    for (;;) {
      c.skip_ws();
      std::string key;
      if (!parse_string(c, key)) return std::nullopt;
      c.skip_ws();
      if (!c.expect(':')) return std::nullopt;
      JsonField value;
      if (!parse_value(c, value)) return std::nullopt;
      row.fields.emplace_back(std::move(key), std::move(value));
      c.skip_ws();
      if (c.done()) return std::nullopt;
      if (c.peek() == '}') {
        ++c.pos;
        break;
      }
      if (!c.expect(',')) return std::nullopt;
    }
  }
  c.skip_ws();
  if (!c.done()) return std::nullopt;  // trailing garbage => not one row
  return row;
}

}  // namespace cebinae::dispatch
