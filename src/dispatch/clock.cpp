#include "dispatch/clock.hpp"

#include <time.h>

namespace cebinae::dispatch {

double SystemClock::now() const {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

const SystemClock& SystemClock::instance() {
  static const SystemClock clock;
  return clock;
}

}  // namespace cebinae::dispatch
