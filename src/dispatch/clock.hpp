// Injectable wall-clock for the job ledger's lease protocol.
//
// Lease stamps are compared ACROSS processes (and, over a shared
// filesystem, across hosts), so the production clock is CLOCK_REALTIME
// seconds — the only clock whose values are meaningful between machines.
// Tests inject a ManualClock instead and drive lease expiry explicitly,
// which is what lets the contention/steal tests run with zero sleeps.
#pragma once

#include <mutex>

namespace cebinae::dispatch {

class Clock {
 public:
  virtual ~Clock() = default;
  // Seconds; only differences are ever interpreted, so the epoch is free.
  [[nodiscard]] virtual double now() const = 0;
};

class SystemClock final : public Clock {
 public:
  [[nodiscard]] double now() const override;
  // Process-wide instance for callers that do not inject a clock.
  static const SystemClock& instance();
};

// Deterministic test clock: time moves only when advance() is called.
// Thread-safe so two racing ledger clients can share one instance.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(double t = 0.0) : t_(t) {}

  [[nodiscard]] double now() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return t_;
  }

  void advance(double dt) {
    std::lock_guard<std::mutex> lock(mu_);
    t_ += dt;
  }

 private:
  mutable std::mutex mu_;
  double t_;
};

}  // namespace cebinae::dispatch
