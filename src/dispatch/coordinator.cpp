#include "dispatch/coordinator.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "dispatch/ledger.hpp"
#include "dispatch/merge.hpp"
#include "exp/jsonl_writer.hpp"

namespace fs = std::filesystem;

namespace cebinae::dispatch {

namespace {

struct WorkerProc {
  pid_t pid = -1;
  std::string id;       // "w<serial>"
  int index = 0;        // scan-offset slot, stable across respawns
  bool alive = false;
  bool fault_killed = false;  // we killed it on purpose (--fault-inject)
};

std::string worker_argv_dump(const std::vector<std::string>& argv) {
  std::string out;
  for (const std::string& a : argv) {
    if (!out.empty()) out += ' ';
    out += a;
  }
  return out;
}

// fork/exec one worker; stdout -> /dev/null (workers must never pollute the
// coordinator's byte-stable stdout), stderr -> its ledger capture file.
pid_t spawn_worker(const DispatchOptions& opts, const JobLedger& ledger,
                   const std::string& worker_id, int worker_index) {
  std::vector<std::string> argv = {
      opts.self_path,
      "--worker=" + worker_id,
      "--worker-index=" + std::to_string(worker_index),
      "--ledger=" + ledger.dir(),
      "--experiment=" + opts.experiment,
      "--trials=" + std::to_string(opts.run.trials),
      "--seed=" + std::to_string(opts.run.base_seed),
      "--lease-ttl=" + std::to_string(opts.lease_ttl_s),
      "--max-retries=" + std::to_string(opts.max_retries),
  };
  if (opts.run.full) argv.push_back("--full");
  if (opts.run.smoke) argv.push_back("--smoke");

  const std::string stderr_file = ledger.stderr_path(worker_id);
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "[dispatch] fork failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    // Child. Only async-signal-safe calls between fork and exec.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDOUT_FILENO);
    const int errfd =
        ::open(stderr_file.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (errfd >= 0) ::dup2(errfd, STDERR_FILENO);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (std::string& a : argv) cargv.push_back(a.data());
    cargv.push_back(nullptr);
    ::execv(opts.self_path.c_str(), cargv.data());
    // exec failed; write a breadcrumb to the captured stderr and die hard.
    const char* msg = "worker exec failed\n";
    [[maybe_unused]] const ssize_t n = ::write(STDERR_FILENO, msg, std::strlen(msg));
    ::_exit(127);
  }
  std::fprintf(stderr, "[dispatch] spawned %s (pid %d): %s\n", worker_id.c_str(),
               static_cast<int>(pid), worker_argv_dump(argv).c_str());
  return pid;
}

// Last ~2KB of a worker's captured stderr, for quarantine reports.
std::string stderr_tail(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return {};
  const std::streamoff size = in.tellg();
  constexpr std::streamoff kTail = 2048;
  const std::streamoff start = size > kTail ? size - kTail : 0;
  in.seekg(start);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The worker id currently holding any live lease, "" when none. Used by
// --fault-inject=kill1 to kill a worker that provably has in-flight work,
// which forces the lease-expiry + re-steal path in tests.
std::string any_lease_holder(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("job_", 0) != 0 || name.find(".lease") == std::string::npos) continue;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    if (const std::optional<ParsedRow> row = parse_row(ss.str())) {
      const std::string worker = row->str("worker");
      if (!worker.empty()) return worker;
    }
  }
  return {};
}

}  // namespace

int run_dispatch(const DispatchOptions& opts) {
  const exp::ExperimentSpec* spec =
      exp::ExperimentRegistry::instance().find(opts.experiment);
  if (spec == nullptr) {
    std::fprintf(stderr, "error: unknown experiment '%s'\n", opts.experiment.c_str());
    return 2;
  }

  // Fail before spawning anything if the merge targets are unwritable
  // (bench fails fast on a bad --out; a whole sweep before exit 2 is not
  // an acceptable substitute). O_CREAT without O_TRUNC: existing content
  // is untouched until the merge actually rewrites it.
  for (const std::string* path : {&opts.run.out, &opts.run.trace_out}) {
    if (path->empty() || *path == "-") continue;
    const int fd = ::open(path->c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) {
      std::fprintf(stderr, "error: JsonlWriter: cannot open %s: %s\n",
                   path->c_str(), std::strerror(errno));
      return 2;
    }
    ::close(fd);
  }

  // Same header as run_experiment(): byte-identical stdout starts here.
  const std::vector<exp::ExperimentJob> jobs = spec->make_jobs(opts.run);
  std::printf("=== %s (%s run) ===\n", spec->title.c_str(),
              opts.run.smoke ? "smoke" : (opts.run.full ? "full paper-scale" : "quick"));
  const std::uint64_t n = jobs.size();

  // Ledger directory: derived from --out when given so reruns of the same
  // sweep resume naturally, else namespaced by experiment.
  std::string ledger_dir = opts.ledger_dir;
  if (ledger_dir.empty()) {
    ledger_dir = (!opts.run.out.empty() && opts.run.out != "-")
                     ? opts.run.out + ".ledger"
                     : opts.experiment + ".ledger";
  }
  if (!opts.run.resume) {
    std::error_code ec;
    fs::remove_all(ledger_dir, ec);  // fresh sweep: drop any stale ledger
  }

  JobLedger::Options lo;
  lo.dir = ledger_dir;
  lo.worker = "coordinator";
  lo.lease_ttl_s = opts.lease_ttl_s;
  lo.max_retries = opts.max_retries;
  JobLedger ledger(lo);
  {
    Manifest m;
    m.experiment = opts.experiment;
    m.n_jobs = n;
    m.base_seed = opts.run.base_seed;
    m.trials = opts.run.trials;
    m.full = opts.run.full;
    m.smoke = opts.run.smoke;
    ledger.write_manifest(m);
  }
  if (opts.run.resume) {
    const std::uint64_t already = ledger.done_count(n);
    if (already > 0) {
      std::fprintf(stderr, "[dispatch] resume: %llu/%llu jobs already done in %s\n",
                   static_cast<unsigned long long>(already),
                   static_cast<unsigned long long>(n), ledger_dir.c_str());
    }
  }

  const auto t0 = std::chrono::steady_clock::now();

  // ---- spawn + monitor -----------------------------------------------
  const int max_spawns = opts.max_spawns > 0 ? opts.max_spawns : 3 * opts.workers;
  int spawned = 0;
  int next_serial = 0;
  std::vector<WorkerProc> procs;
  std::vector<std::string> all_worker_ids;

  auto spawn_slot = [&](int index) -> bool {
    if (spawned >= max_spawns) return false;
    WorkerProc p;
    p.id = "w" + std::to_string(next_serial++);
    p.index = index;
    p.pid = spawn_worker(opts, ledger, p.id, index);
    if (p.pid < 0) return false;
    p.alive = true;
    ++spawned;
    all_worker_ids.push_back(p.id);
    procs.push_back(std::move(p));
    return true;
  };

  const int n_workers = std::max(1, opts.workers);
  for (int w = 0; w < n_workers; ++w) {
    if (!spawn_slot(w)) {
      std::fprintf(stderr, "error: could not spawn initial workers\n");
      return 2;
    }
  }

  bool fault_fired = opts.fault_inject != "kill1";  // trivially "done" if unset
  double respawn_backoff_s = 0.2;
  std::uint64_t last_reported_done = ~0ull;

  for (;;) {
    // Reap exits.
    for (WorkerProc& p : procs) {
      if (!p.alive) continue;
      int status = 0;
      const pid_t r = ::waitpid(p.pid, &status, WNOHANG);
      if (r != p.pid) continue;
      p.alive = false;
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (clean || ledger.settled_count(n) == n) continue;
      if (p.fault_killed) {
        // Deliberate kill: live workers must re-steal its leases; do NOT
        // respawn, that is the scenario under test.
        std::fprintf(stderr, "[dispatch] %s killed by fault injection\n", p.id.c_str());
        continue;
      }
      std::fprintf(stderr, "[dispatch] %s died (%s %d); respawning after %.1fs\n",
                   p.id.c_str(), WIFSIGNALED(status) ? "signal" : "exit",
                   WIFSIGNALED(status) ? WTERMSIG(status) : WEXITSTATUS(status),
                   respawn_backoff_s);
      std::this_thread::sleep_for(std::chrono::duration<double>(respawn_backoff_s));
      respawn_backoff_s = std::min(respawn_backoff_s * 2.0, 5.0);
      if (!spawn_slot(p.index)) {
        std::fprintf(stderr, "[dispatch] spawn budget exhausted (%d)\n", max_spawns);
      }
    }

    // Fault injection: once any worker holds a lease, SIGKILL that worker.
    if (!fault_fired) {
      const std::string victim_id = any_lease_holder(ledger_dir);
      if (!victim_id.empty()) {
        for (WorkerProc& p : procs) {
          if (p.id != victim_id || !p.alive) continue;
          std::fprintf(stderr, "[dispatch] fault-inject: SIGKILL %s (pid %d)\n",
                       p.id.c_str(), static_cast<int>(p.pid));
          p.fault_killed = true;
          ::kill(p.pid, SIGKILL);
          fault_fired = true;
          break;
        }
      }
    }

    const std::uint64_t done = ledger.done_count(n);
    if (done != last_reported_done) {
      std::fprintf(stderr, "\r[dispatch] %llu/%llu jobs done",
                   static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(n));
      if (done == n) std::fprintf(stderr, "\n");
      last_reported_done = done;
    }

    const bool all_settled = ledger.settled_count(n) == n;
    const bool any_alive =
        std::any_of(procs.begin(), procs.end(), [](const WorkerProc& p) { return p.alive; });
    if (all_settled && !any_alive) {
      if (!fault_fired) {
        std::fprintf(stderr, "[dispatch] warning: --fault-inject=kill1 never fired "
                             "(sweep finished before any lease was observed)\n");
      }
      break;
    }
    if (!all_settled && !any_alive) {
      // Workers exited with unsettled jobs: their own failures block them.
      // Spawn a fresh worker id to retry (it counts as a distinct worker,
      // so a second deterministic failure quarantines the job).
      if (!spawn_slot(0)) {
        std::fprintf(stderr,
                     "error: %llu job(s) unsettled and spawn budget exhausted\n",
                     static_cast<unsigned long long>(n - ledger.settled_count(n)));
        return 2;
      }
    }
    // While a fault injection is pending, poll tightly: smoke-scale jobs
    // finish in ~100ms and a coarse poll would miss every lease window.
    std::this_thread::sleep_for(
        std::chrono::duration<double>(fault_fired ? opts.poll_s : 0.002));
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (last_reported_done != n) std::fprintf(stderr, "\n");

  // ---- merge ----------------------------------------------------------
  std::map<std::string, Shard> shards;
  for (const std::string& id : all_worker_ids) {
    shards.emplace(id, load_shard(id, ledger.results_shard(id), ledger.trace_shard(id)));
  }
  // Resumed sweeps may hold done markers from workers of a previous run;
  // load any shard file present in the ledger that we did not spawn.
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(ledger_dir, ec)) {
      const std::string name = entry.path().filename().string();
      const std::size_t pos = name.find(".results.jsonl");
      if (pos == std::string::npos) continue;
      const std::string id = name.substr(0, pos);
      if (shards.count(id) != 0) continue;
      shards.emplace(id, load_shard(id, ledger.results_shard(id), ledger.trace_shard(id)));
    }
  }

  auto find_row = [&](std::uint64_t i) -> const Shard* {
    const std::string owner = ledger.done_worker(i);
    if (auto it = shards.find(owner); it != shards.end() && it->second.result_by_job.count(i)) {
      return &it->second;
    }
    // Marker unreadable/ambiguous: any shard carrying the row is equivalent
    // (same job, same derived seed => bit-identical result).
    for (const auto& [id, shard] : shards) {
      if (shard.result_by_job.count(i) != 0) return &shard;
    }
    return nullptr;
  };

  std::optional<exp::JsonlWriter> out_writer;
  std::optional<exp::JsonlWriter> trace_writer;
  try {
    out_writer.emplace(opts.run.out, exp::JsonlWriter::Mode::kTruncate);
    trace_writer.emplace(opts.run.trace_out, exp::JsonlWriter::Mode::kTruncate);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }

  std::vector<exp::RunRecord> records(n);
  std::uint64_t missing = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const Shard* shard = find_row(i);
    if (shard == nullptr) {
      records[i].skipped = true;  // quarantined: no result to aggregate
      records[i].seed = exp::derive_seed(opts.run.base_seed, i);
      ++missing;
      continue;
    }
    const std::string& line = shard->result_by_job.at(i);
    if (out_writer->enabled()) out_writer->write_line(line);
    const std::optional<ParsedRow> row = parse_row(line);
    records[i] = record_from_row(*row, static_cast<bool>(jobs[i].custom));
    if (auto it = shard->trace_by_job.find(i); it != shard->trace_by_job.end()) {
      records[i].trace.reserve(it->second.size());
      for (const std::string& trace_line : it->second) {
        if (trace_writer->enabled()) trace_writer->write_line(trace_line);
        if (const std::optional<ParsedRow> trow = parse_row(trace_line)) {
          records[i].trace.push_back(trace_from_row(*trow));
        }
      }
    }
  }

  // ---- quarantine report ---------------------------------------------
  std::uint64_t quarantined = 0;
  if (missing > 0) {
    const std::string failed_path =
        (!opts.run.out.empty() && opts.run.out != "-" ? opts.run.out
                                                      : opts.experiment) +
        ".failed.jsonl";
    exp::JsonlWriter failed(failed_path, exp::JsonlWriter::Mode::kTruncate);
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!records[i].skipped) continue;
      const std::vector<JobFailure> fails = ledger.failures(i);
      ++quarantined;
      exp::JsonObject row;
      row.set("job_index", i);
      row.set("label", jobs[i].label);
      row.set("seed", records[i].seed);
      row.set("attempts", static_cast<std::uint64_t>(fails.size()));
      std::string workers_csv;
      std::string errors;
      std::string stderr_blob;
      for (const JobFailure& f : fails) {
        if (!workers_csv.empty()) workers_csv += ',';
        workers_csv += f.worker;
        if (!errors.empty()) errors += " | ";
        errors += '[' + f.worker + "] " + f.error;
        const std::string tail = stderr_tail(ledger.stderr_path(f.worker));
        if (!tail.empty()) {
          stderr_blob += "==== " + f.worker + " stderr tail ====\n" + tail;
        }
      }
      row.set("workers", workers_csv);
      row.set("error", errors);
      row.set("stderr", stderr_blob);
      failed.write(row);
    }
    std::fprintf(stderr,
                 "[dispatch] %llu job(s) quarantined after deterministic failures -> %s\n",
                 static_cast<unsigned long long>(quarantined), failed_path.c_str());
  }

  // ---- perf summary + report -----------------------------------------
  if (opts.run.perf) {
    const std::string path = opts.run.perf_out.empty()
                                 ? "BENCH_" + spec->name + ".json"
                                 : opts.run.perf_out;
    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    exp::JsonObject o;
    o.set("bench", spec->name);
    o.set("workers", opts.workers);
    o.set("scenarios", n);
    o.set("quarantined", quarantined);
    o.set("wall_s", wall_s);
    o.set("scenarios_per_sec",
          wall_s > 0.0 ? static_cast<double>(n - quarantined) / wall_s : 0.0);
    std::ofstream f(path, std::ios::out | std::ios::trunc);
    if (!f) {
      std::fprintf(stderr, "error: cannot write perf summary %s\n", path.c_str());
      return 2;
    }
    f << o.str() << '\n';
    std::fprintf(stderr, "[dispatch] perf summary -> %s\n", path.c_str());
  }

  if (quarantined > 0) {
    // Mirrors run_experiment's resumed-run behavior: a table mixing real
    // rows with holes would lie, so point at the JSONL instead.
    std::printf("(%llu/%llu jobs quarantined; see failed-job report)\n",
                static_cast<unsigned long long>(quarantined),
                static_cast<unsigned long long>(n));
    return 3;
  }

  if (spec->report) {
    spec->report(opts.run, exp::aggregate_rows(jobs, records, spec->metrics));
  }
  return 0;
}

}  // namespace cebinae::dispatch
