// Dispatch coordinator: shards one registered experiment across N local
// worker processes (fork/exec of this binary's hidden --worker mode) and
// merges their shards back into the canonical outputs.
//
// Output contract: stdout (header + registered reporter) and the merged
// `--out` / `--trace-out` JSONL are byte-identical to a single-process
// `cebinae_bench --experiment=X --jobs=1` run — modulo each result row's
// wall_s field — even when workers are killed mid-sweep: crashed workers'
// leases expire and live workers re-steal the jobs, and the merge reads
// each job's row from the done-marker owner's shard only, so re-executed
// jobs appear exactly once.
//
// Failure handling: organically-dead workers are respawned with bounded
// exponential backoff (fresh worker ids, so their retries count as distinct
// workers); a job that fails deterministically on more than --max-retries
// distinct workers is quarantined and reported to <out>.failed.jsonl with
// the failing workers' errors and captured stderr instead of being silently
// dropped.
#pragma once

#include <string>

#include "exp/registry.hpp"

namespace cebinae::dispatch {

struct DispatchOptions {
  std::string experiment;
  exp::RunOptions run;        // out/trace_out/perf/resume honored as in bench
  int workers = 2;
  double lease_ttl_s = 30.0;
  int max_retries = 1;        // distinct-worker failures before quarantine
  std::string fault_inject;   // "" | "kill1": SIGKILL a lease-holding worker
  std::string ledger_dir;     // "" = derived from --out or the experiment name
  std::string self_path;      // binary to exec for workers (argv[0] resolve)
  double poll_s = 0.1;        // coordinator monitor period (seconds)
  int max_spawns = 0;         // total worker spawns allowed; 0 = 3 * workers
};

// Returns a process exit code: 0 clean, 2 setup error, 3 quarantined jobs.
int run_dispatch(const DispatchOptions& opts);

}  // namespace cebinae::dispatch
