// Shard merge + record reconstruction for the dispatch coordinator.
//
// Workers append result/trace rows to per-worker JSONL shards in whatever
// order they claim jobs. The coordinator merges those shards back into the
// canonical `--out` / `--trace-out` streams IN GRID ORDER (ascending
// job_index, shard lines copied byte-verbatim), so the files a distributed
// run produces are line-for-line what a single-process `--jobs=1` run would
// have written — modulo only each row's `wall_s` field, which is
// wall-clock and differs even between two identical single-process runs.
//
// Reconstruction parses merged rows back into exp::RunRecord (and trace
// rows into obs::TraceRow) so the experiment's registered reporter renders
// from exactly the numbers the workers measured; %.17g round-tripping makes
// that stdout byte-identical to the single-process report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dispatch/row_parse.hpp"
#include "exp/experiment.hpp"
#include "obs/trace.hpp"

namespace cebinae::dispatch {

// One worker shard loaded into memory: job_index -> verbatim line(s).
// A job appears at most once per claim; a wedged worker whose lease was
// stolen can leave the same job in TWO shards, which the merge resolves by
// reading only the done-marker owner's shard.
struct Shard {
  std::string worker;
  std::map<std::uint64_t, std::string> result_by_job;           // one row per job
  std::map<std::uint64_t, std::vector<std::string>> trace_by_job;  // time-ordered
};

// Parse a shard pair from disk. Structurally incomplete lines (a worker
// killed mid-write) are skipped — their job has no done marker, so the
// re-executed copy is the one the merge will use.
[[nodiscard]] Shard load_shard(std::string_view worker, const std::string& results_path,
                               const std::string& trace_path);

// Rebuild the RunRecord a single-process run would have produced for this
// row. `custom` mirrors ExperimentJob::custom: custom rows carry their
// metrics as free-form numeric fields, scenario rows carry the standard
// ScenarioResult echo.
[[nodiscard]] exp::RunRecord record_from_row(const ParsedRow& row, bool custom);

// Rebuild one obs::TraceRow from a trace-sidecar row (skips the job-context
// fields the runner prepended: label / job_index / seed).
[[nodiscard]] obs::TraceRow trace_from_row(const ParsedRow& row);

}  // namespace cebinae::dispatch
