#include "dispatch/ledger.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "dispatch/row_parse.hpp"
#include "exp/jsonl_writer.hpp"

namespace fs = std::filesystem;

namespace cebinae::dispatch {

namespace {

// Small file helpers. Reads tolerate concurrent writers because every write
// in the protocol is publish-by-rename/link: a path either resolves to a
// complete previous version or a complete new one, never a partial file.

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_fd_all(int fd, std::string_view content, const std::string& what) {
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("ledger: write " + what + ": " + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

JobLedger::JobLedger(Options opts)
    : opts_(std::move(opts)),
      clock_(opts_.clock != nullptr ? opts_.clock : &SystemClock::instance()) {
  if (opts_.dir.empty()) throw std::invalid_argument("JobLedger: empty dir");
  if (opts_.worker.empty()) throw std::invalid_argument("JobLedger: empty worker id");
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);  // ok if it already exists
}

std::string JobLedger::lease_path(std::uint64_t i) const {
  return opts_.dir + "/job_" + std::to_string(i) + ".lease";
}

std::string JobLedger::done_path(std::uint64_t i) const {
  return opts_.dir + "/job_" + std::to_string(i) + ".done";
}

std::string JobLedger::fail_path(std::uint64_t i, std::string_view worker) const {
  return opts_.dir + "/job_" + std::to_string(i) + ".fail." + std::string(worker);
}

std::string JobLedger::results_shard(std::string_view worker) const {
  return opts_.dir + "/" + std::string(worker) + ".results.jsonl";
}

std::string JobLedger::trace_shard(std::string_view worker) const {
  return opts_.dir + "/" + std::string(worker) + ".trace.jsonl";
}

std::string JobLedger::stderr_path(std::string_view worker) const {
  return opts_.dir + "/" + std::string(worker) + ".stderr";
}

std::string JobLedger::write_temp(std::string_view content) const {
  // Worker-private AND call-private name: the worker id keeps clients from
  // colliding across processes, the counter keeps a worker's heartbeat
  // thread from colliding with its claim loop within one process.
  static std::atomic<unsigned long> counter{0};
  const std::string path =
      opts_.dir + "/.tmp." + opts_.worker + "." + std::to_string(counter.fetch_add(1));
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("ledger: open " + path + ": " + std::strerror(errno));
  }
  write_fd_all(fd, content, path);
  ::fsync(fd);
  ::close(fd);
  return path;
}

bool JobLedger::link_claim(std::uint64_t i) {
  exp::JsonObject lease;
  lease.set("worker", opts_.worker);
  lease.set("t", clock_->now());
  const std::string tmp = write_temp(lease.str());
  // link(2): the lease appears atomically WITH its content, or EEXIST.
  const int rc = ::link(tmp.c_str(), lease_path(i).c_str());
  ::unlink(tmp.c_str());
  return rc == 0;
}

JobLedger::ClaimResult JobLedger::try_claim(std::uint64_t i) {
  if (is_done(i)) return ClaimResult::kDone;
  if (quarantined(i)) return ClaimResult::kQuarantined;
  if (fs::exists(fail_path(i, opts_.worker))) return ClaimResult::kOwnFailure;

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (link_claim(i)) {
      // Re-check AFTER winning the link: the slot may be empty because the
      // previous holder finished and released between our is_done() probe
      // above and the link. Done markers are published before release, so
      // if that is how we got the slot, the marker is visible by now.
      if (is_done(i)) {
        release(i);
        return ClaimResult::kDone;
      }
      return ClaimResult::kClaimed;
    }

    // Lease exists. Completed in the meantime?
    if (is_done(i)) return ClaimResult::kDone;

    const std::string raw = slurp(lease_path(i));
    if (!raw.empty()) {
      const std::optional<ParsedRow> row = parse_row(raw);
      if (row.has_value() && clock_->now() - row->num("t") <= opts_.lease_ttl_s) {
        return ClaimResult::kHeld;  // live heartbeat
      }
    } else if (!fs::exists(lease_path(i))) {
      continue;  // holder released between our link and read; retry claim
    }

    // Stale (or unreadable, which only a stale crashed write could leave):
    // steal by renaming it to a worker-private name. Exactly one concurrent
    // stealer's rename succeeds; losers observe ENOENT and retry the claim.
    const std::string stolen = opts_.dir + "/.steal." + opts_.worker;
    if (::rename(lease_path(i).c_str(), stolen.c_str()) == 0) {
      ::unlink(stolen.c_str());
    }
    // Loop: re-attempt the link-claim against the now-empty slot (another
    // claimer may still beat us, which the second iteration reports as
    // kHeld — correct either way).
  }
  return ClaimResult::kHeld;
}

void JobLedger::heartbeat(std::uint64_t i) {
  exp::JsonObject lease;
  lease.set("worker", opts_.worker);
  lease.set("t", clock_->now());
  const std::string tmp = write_temp(lease.str());
  // rename over the lease refreshes the stamp atomically. If a stealer
  // removed our lease a heartbeat recreates it; the double-execution that
  // implies is resolved at merge time by the done marker's owner.
  ::rename(tmp.c_str(), lease_path(i).c_str());
}

void JobLedger::release(std::uint64_t i) { ::unlink(lease_path(i).c_str()); }

void JobLedger::mark_done(std::uint64_t i) {
  const std::string tmp = write_temp(opts_.worker);
  ::rename(tmp.c_str(), done_path(i).c_str());
}

bool JobLedger::is_done(std::uint64_t i) const { return fs::exists(done_path(i)); }

std::string JobLedger::done_worker(std::uint64_t i) const { return slurp(done_path(i)); }

void JobLedger::record_failure(std::uint64_t i, std::string_view error) {
  exp::JsonObject o;
  o.set("worker", opts_.worker);
  o.set("error", error);
  o.set("t", clock_->now());
  const std::string tmp = write_temp(o.str());
  ::rename(tmp.c_str(), fail_path(i, opts_.worker).c_str());
}

std::vector<JobFailure> JobLedger::failures(std::uint64_t i) const {
  std::vector<JobFailure> out;
  const std::string prefix = "job_" + std::to_string(i) + ".fail.";
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0) continue;
    JobFailure f;
    f.worker = name.substr(prefix.size());
    if (const std::optional<ParsedRow> row = parse_row(slurp(entry.path().string()))) {
      f.error = row->str("error");
    }
    out.push_back(std::move(f));
  }
  // directory_iterator order is filesystem-dependent; sort for determinism.
  std::sort(out.begin(), out.end(),
            [](const JobFailure& a, const JobFailure& b) { return a.worker < b.worker; });
  return out;
}

bool JobLedger::quarantined(std::uint64_t i) const {
  return failures(i).size() > static_cast<std::size_t>(opts_.max_retries);
}

std::uint64_t JobLedger::done_count(std::uint64_t n_jobs) const {
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < n_jobs; ++i) n += is_done(i) ? 1 : 0;
  return n;
}

std::uint64_t JobLedger::settled_count(std::uint64_t n_jobs) const {
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < n_jobs; ++i) n += (is_done(i) || quarantined(i)) ? 1 : 0;
  return n;
}

void JobLedger::write_manifest(const Manifest& m) const {
  exp::JsonObject o;
  o.set("experiment", m.experiment);
  o.set("n_jobs", m.n_jobs);
  o.set("base_seed", m.base_seed);
  o.set("trials", m.trials);
  o.set("full", m.full);
  o.set("smoke", m.smoke);
  const std::string tmp = write_temp(o.str());
  if (::rename(tmp.c_str(), (opts_.dir + "/manifest.json").c_str()) != 0) {
    throw std::runtime_error("ledger: cannot publish manifest: " +
                             std::string(std::strerror(errno)));
  }
}

std::optional<Manifest> JobLedger::read_manifest() const {
  const std::optional<ParsedRow> row = parse_row(slurp(opts_.dir + "/manifest.json"));
  if (!row.has_value()) return std::nullopt;
  Manifest m;
  m.experiment = row->str("experiment");
  m.n_jobs = row->u64("n_jobs");
  m.base_seed = row->u64("base_seed");
  m.trials = static_cast<int>(row->num("trials"));
  const JsonField* full = row->find("full");
  const JsonField* smoke = row->find("smoke");
  m.full = full != nullptr && full->kind == JsonField::Kind::kBool && full->b;
  m.smoke = smoke != nullptr && smoke->kind == JsonField::Kind::kBool && smoke->b;
  return m;
}

}  // namespace cebinae::dispatch
