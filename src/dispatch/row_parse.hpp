// Minimal parser for the JSONL rows this repo itself emits (JsonObject
// serialization): flat objects whose values are numbers, strings, booleans,
// null, arrays of numbers/nulls, and one level of nested object ("params").
//
// This is NOT a general JSON parser — it exists so the dispatch coordinator
// can read worker result/trace shards and lease/manifest files back into
// memory without an external dependency. Field order is preserved, because
// TraceRow reconstruction and metric-sample ordering both depend on
// encounter order. Numbers round-trip exactly: JsonObject prints %.17g and
// strtod parses it back to the identical double, which is what makes the
// coordinator's re-rendered report byte-identical to a single-process run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cebinae::dispatch {

struct JsonField {
  enum class Kind { kNumber, kString, kBool, kNull, kArray, kObject };
  Kind kind = Kind::kNull;
  double num = 0.0;              // kNumber
  bool is_uint = false;          // kNumber whose token was a bare integer...
  std::uint64_t uint = 0;        // ...kept exactly (doubles drop bits > 2^53)
  bool b = false;                // kBool
  std::string str;               // kString (unescaped) / kObject (raw text)
  std::vector<double> arr;       // kArray; null elements parse as NaN
};

class ParsedRow {
 public:
  std::vector<std::pair<std::string, JsonField>> fields;

  [[nodiscard]] const JsonField* find(std::string_view name) const;
  // Typed accessors with fallbacks for absent/mistyped fields.
  [[nodiscard]] double num(std::string_view name, double dflt = 0.0) const;
  [[nodiscard]] std::uint64_t u64(std::string_view name, std::uint64_t dflt = 0) const;
  [[nodiscard]] std::string str(std::string_view name) const;
  [[nodiscard]] const std::vector<double>* arr(std::string_view name) const;
};

// Parse one JSONL line. Returns nullopt for anything malformed or truncated
// (callers treat such lines as "row never happened", mirroring
// exp::is_complete_row's crash-tolerance contract).
[[nodiscard]] std::optional<ParsedRow> parse_row(std::string_view line);

}  // namespace cebinae::dispatch
