#include "obs/probe.hpp"

#include <cassert>

namespace cebinae::obs {

void Probe::add_scalar(std::string name, std::function<double(Time)> fn) {
  add_sampler([name = std::move(name), fn = std::move(fn)](Time now, TraceRow& row) {
    row.set(name, fn(now));
  });
}

void Probe::add_array(std::string name, std::function<std::vector<double>(Time)> fn) {
  add_sampler([name = std::move(name), fn = std::move(fn)](Time now, TraceRow& row) {
    row.set(name, fn(now));
  });
}

void Probe::sample_registry(const MetricsRegistry& reg) {
  add_sampler([&reg](Time, TraceRow& row) { reg.sample_into(row); });
}

void Probe::start() {
  assert(period_ > Time::zero() && "probe period must be positive");
  if (running_) return;
  running_ = true;
  pending_ = sched_.schedule(period_, [this] { tick(); });
}

void Probe::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_);
  pending_ = EventId();
}

void Probe::tick() {
  const Time now = sched_.now();
  TraceRow row(now.seconds());
  for (const auto& sampler : samplers_) sampler(now, row);
  sink_.push(std::move(row));
  ++ticks_;
  pending_ = sched_.schedule(period_, [this] { tick(); });
}

}  // namespace cebinae::obs
