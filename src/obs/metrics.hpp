// Per-scenario metrics registry: named counters, gauges, and histogram
// accumulators for the observability layer.
//
// Ownership and threading: a MetricsRegistry is owned by a Network (one per
// Scenario) — there is deliberately NO process-global registry, preserving
// the one-Scenario-per-thread contract documented in src/sim/logging.hpp.
// Instrumented components hold plain pointers into their Network's registry,
// so the hot-path cost of a counter is one null check plus one add; nothing
// is ever locked. Sampling (reading every metric into a trace row) is done
// only by scheduler-driven probes, on the simulation thread.
//
// Metric cells are deque-backed, so a Counter&/Histogram& returned by the
// registry stays valid for the registry's lifetime regardless of how many
// metrics are registered afterwards.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cebinae::obs {

class TraceRow;

// Monotonic event count (packets dropped, retransmissions, rotations...).
class Counter {
 public:
  void add(std::uint64_t n) { v_ += n; }
  void inc() { ++v_; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

// Streaming summary of observed samples (count/sum/min/max); cheap enough to
// sit on a per-ACK path. Probes export n, mean, and max.
class Histogram {
 public:
  void observe(double x) {
    ++n_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

class MetricsRegistry {
 public:
  // Get-or-create: repeated lookups of the same name return the same cell,
  // so multiple instances (e.g. every Device in the network) can share one
  // aggregate counter.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Register (or replace) a gauge: a callback evaluated at sample time.
  // Gauges are for values that are cheap to read but change continuously
  // (queue depth, cwnd); nothing is paid on the datapath.
  void gauge(std::string_view name, std::function<double()> fn);

  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;
  [[nodiscard]] bool has_gauge(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return order_.size(); }

  // Snapshot every metric into `row`, in registration order (deterministic
  // key order is what keeps trace files byte-stable). Counters and gauges
  // emit one scalar; a histogram `h` emits `h.n`, `h.mean`, and `h.max`.
  void sample_into(TraceRow& row) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind;
    std::size_t index;  // into the kind's storage
  };

  std::vector<Entry> order_;
  std::unordered_map<std::string, std::size_t> by_name_;  // -> order_ index
  std::deque<Counter> counters_;
  std::deque<Histogram> histograms_;
  std::vector<std::function<double()>> gauges_;
};

}  // namespace cebinae::obs
