// Time-series rows sampled by probes, and the per-scenario sink that
// collects them.
//
// A TraceRow is one sample instant: the simulation time plus named scalars
// and named arrays (per-flow / per-link series). Field order is insertion
// order, and serialization reuses exp::JsonObject's exact %.17g formatting,
// so two runs that sample the same values produce byte-identical JSONL —
// the property the trace determinism test asserts across --jobs counts.
//
// A TraceSink buffers the rows of ONE scenario in memory (single-threaded,
// like everything a Scenario owns). Streaming to the per-job sidecar file is
// the ExperimentRunner's job: it serializes each completed job's rows in job
// order, which is what keeps the sidecar stable across worker counts.
#pragma once

#include <cmath>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "exp/jsonl_writer.hpp"

namespace cebinae::obs {

class TraceRow {
 public:
  explicit TraceRow(double t_s = 0.0) : t_s_(t_s) {}

  [[nodiscard]] double t_s() const { return t_s_; }

  void set(std::string name, double v) { scalars_.emplace_back(std::move(name), v); }
  void set(std::string name, std::vector<double> v) {
    arrays_.emplace_back(std::move(name), std::move(v));
  }

  // NaN when absent (json-serialized as null, and easy to filter).
  [[nodiscard]] double scalar(std::string_view name) const;
  [[nodiscard]] const std::vector<double>* array(std::string_view name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& scalars() const {
    return scalars_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::vector<double>>>& arrays() const {
    return arrays_;
  }

  // Append t_s + every field to a JSON object under construction (used by
  // the runner to prepend job context before the sample fields).
  void write_fields(exp::JsonObject& obj) const;
  [[nodiscard]] exp::JsonObject to_json() const;

 private:
  double t_s_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::vector<double>>> arrays_;
};

class TraceSink {
 public:
  void push(TraceRow row) { rows_.push_back(std::move(row)); }

  [[nodiscard]] const std::vector<TraceRow>& rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] bool empty() const { return rows_.empty(); }
  [[nodiscard]] std::vector<TraceRow> take_rows() { return std::move(rows_); }

  // Column extraction for benches that print tables from a finished run.
  // The static forms work on rows already moved out (e.g. RunRecord::trace).
  [[nodiscard]] static std::vector<double> series_of(const std::vector<TraceRow>& rows,
                                                     std::string_view scalar_name);
  // Element `index` of a named array in every row (NaN where missing/short).
  [[nodiscard]] static std::vector<double> array_series_of(const std::vector<TraceRow>& rows,
                                                           std::string_view array_name,
                                                           std::size_t index);
  [[nodiscard]] std::vector<double> series(std::string_view scalar_name) const {
    return series_of(rows_, scalar_name);
  }
  [[nodiscard]] std::vector<double> array_series(std::string_view array_name,
                                                 std::size_t index) const {
    return array_series_of(rows_, array_name, index);
  }

 private:
  std::vector<TraceRow> rows_;
};

}  // namespace cebinae::obs
