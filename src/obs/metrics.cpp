#include "obs/metrics.hpp"

#include <cassert>

#include "obs/trace.hpp"

namespace cebinae::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const Entry& e = order_[it->second];
    assert(e.kind == Kind::kCounter && "metric name reused with a different kind");
    return counters_[e.index];
  }
  counters_.emplace_back();
  by_name_.emplace(std::string(name), order_.size());
  order_.push_back(Entry{std::string(name), Kind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const Entry& e = order_[it->second];
    assert(e.kind == Kind::kHistogram && "metric name reused with a different kind");
    return histograms_[e.index];
  }
  histograms_.emplace_back();
  by_name_.emplace(std::string(name), order_.size());
  order_.push_back(Entry{std::string(name), Kind::kHistogram, histograms_.size() - 1});
  return histograms_.back();
}

void MetricsRegistry::gauge(std::string_view name, std::function<double()> fn) {
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    const Entry& e = order_[it->second];
    assert(e.kind == Kind::kGauge && "metric name reused with a different kind");
    gauges_[e.index] = std::move(fn);
    return;
  }
  gauges_.push_back(std::move(fn));
  by_name_.emplace(std::string(name), order_.size());
  order_.push_back(Entry{std::string(name), Kind::kGauge, gauges_.size() - 1});
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || order_[it->second].kind != Kind::kCounter) return nullptr;
  return &counters_[order_[it->second].index];
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end() || order_[it->second].kind != Kind::kHistogram) return nullptr;
  return &histograms_[order_[it->second].index];
}

bool MetricsRegistry::has_gauge(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  return it != by_name_.end() && order_[it->second].kind == Kind::kGauge;
}

void MetricsRegistry::sample_into(TraceRow& row) const {
  for (const Entry& e : order_) {
    switch (e.kind) {
      case Kind::kCounter:
        row.set(e.name, static_cast<double>(counters_[e.index].value()));
        break;
      case Kind::kGauge:
        row.set(e.name, gauges_[e.index]());
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        row.set(e.name + ".n", static_cast<double>(h.count()));
        row.set(e.name + ".mean", h.mean());
        row.set(e.name + ".max", h.max());
        break;
      }
    }
  }
}

}  // namespace cebinae::obs
