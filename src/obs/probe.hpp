// Scheduler-driven telemetry probe.
//
// A Probe fires on the deterministic event scheduler every `period`,
// starting at now + period. Each tick builds one TraceRow stamped with the
// simulation time and runs the registered samplers over it in registration
// order, then pushes the row into the sink. Because ticks are ordinary
// scheduler events, sampling is exactly reproducible: the same seed and
// schedule yield the same rows regardless of host threads or wall clock.
//
// Probe ticks scheduled at time T run before same-timestamp packet events
// that were scheduled later (FIFO tie-break), so a tick at T observes the
// simulation state as of "just before T" — a half-open [T-period, T) sample
// window for windowed rates.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace cebinae::obs {

class Probe {
 public:
  Probe(Scheduler& sched, Time period, TraceSink& sink)
      : sched_(sched), period_(period), sink_(sink) {}

  ~Probe() { stop(); }
  Probe(const Probe&) = delete;
  Probe& operator=(const Probe&) = delete;

  // Samplers run in registration order on every tick.
  void add_sampler(std::function<void(Time now, TraceRow& row)> fn) {
    samplers_.push_back(std::move(fn));
  }
  void add_scalar(std::string name, std::function<double(Time now)> fn);
  void add_array(std::string name, std::function<std::vector<double>(Time now)> fn);

  // Snapshot every registered metric of `reg` on each tick. The registry
  // must outlive the probe (it does: both are owned by the scenario's
  // Network / Scenario).
  void sample_registry(const MetricsRegistry& reg);

  // First tick at now + period, then every period until stop().
  void start();
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Time period() const { return period_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] TraceSink& sink() { return sink_; }

 private:
  void tick();

  Scheduler& sched_;
  Time period_;
  TraceSink& sink_;
  std::vector<std::function<void(Time, TraceRow&)>> samplers_;
  EventId pending_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace cebinae::obs
