#include "obs/trace.hpp"

#include <limits>

namespace cebinae::obs {

double TraceRow::scalar(std::string_view name) const {
  for (const auto& [k, v] : scalars_) {
    if (k == name) return v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

const std::vector<double>* TraceRow::array(std::string_view name) const {
  for (const auto& [k, v] : arrays_) {
    if (k == name) return &v;
  }
  return nullptr;
}

void TraceRow::write_fields(exp::JsonObject& obj) const {
  obj.set("t_s", t_s_);
  for (const auto& [k, v] : scalars_) obj.set(k, v);
  for (const auto& [k, v] : arrays_) obj.set(k, v);
}

exp::JsonObject TraceRow::to_json() const {
  exp::JsonObject obj;
  write_fields(obj);
  return obj;
}

std::vector<double> TraceSink::series_of(const std::vector<TraceRow>& rows,
                                         std::string_view scalar_name) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const TraceRow& row : rows) out.push_back(row.scalar(scalar_name));
  return out;
}

std::vector<double> TraceSink::array_series_of(const std::vector<TraceRow>& rows,
                                               std::string_view array_name,
                                               std::size_t index) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const TraceRow& row : rows) {
    const std::vector<double>* arr = row.array(array_name);
    out.push_back(arr != nullptr && index < arr->size()
                      ? (*arr)[index]
                      : std::numeric_limits<double>::quiet_NaN());
  }
  return out;
}

}  // namespace cebinae::obs
