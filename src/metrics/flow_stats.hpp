// Per-flow goodput accounting with bucketed time series.
//
// Receivers report in-order application deliveries here; benches and
// examples read back total and windowed goodputs and per-bucket series
// (for the paper's time-series figures).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace cebinae {

class FlowStatsCollector {
 public:
  explicit FlowStatsCollector(Time bucket_width = Seconds(1)) : bucket_width_(bucket_width) {}

  // Fix a flow's position in the output ordering (call in scenario order).
  void register_flow(const FlowId& flow);

  // Matches TcpReceiver::DeliveryCallback.
  void on_delivery(const FlowId& flow, std::uint64_t bytes, Time now);

  [[nodiscard]] std::size_t flow_count() const { return order_.size(); }
  [[nodiscard]] const std::vector<FlowId>& flows() const { return order_; }

  [[nodiscard]] std::uint64_t total_bytes(const FlowId& flow) const;

  // Average goodput in bytes/second over [from, to], measured from bucketed
  // deliveries (partial edge buckets are included wholly; choose window
  // boundaries on bucket edges for exact results).
  [[nodiscard]] double goodput_Bps(const FlowId& flow, Time from, Time to) const;

  // All registered flows, in registration order.
  [[nodiscard]] std::vector<double> goodputs_Bps(Time from, Time to) const;

  // Bytes delivered in bucket `i` (bucket i covers [i*w, (i+1)*w)).
  [[nodiscard]] std::vector<std::uint64_t> series(const FlowId& flow) const;

  [[nodiscard]] Time bucket_width() const { return bucket_width_; }

 private:
  struct Record {
    std::uint64_t total = 0;
    std::vector<std::uint64_t> buckets;
  };

  Time bucket_width_;
  std::vector<FlowId> order_;
  std::unordered_map<FlowId, Record, FlowIdHash> records_;
};

}  // namespace cebinae
