// Jain's Fairness Index (Jain, Chiu, Hawe 1984) and the normalized variant
// the paper uses for multi-bottleneck scenarios (Fig. 11), where each rate is
// first divided by its ideal max-min allocation.
#pragma once

#include <cstddef>
#include <span>

namespace cebinae {

// JFI = (Σx)^2 / (n·Σx^2); 1.0 is perfectly fair, 1/n is maximally unfair.
[[nodiscard]] inline double jain_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sum_sq);
}

// JFI over x_i = actual_i / ideal_i (the paper's distance-to-max-min metric).
[[nodiscard]] inline double normalized_jain_index(std::span<const double> actual,
                                                  std::span<const double> ideal) {
  if (actual.size() != ideal.size() || actual.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double x = ideal[i] > 0 ? actual[i] / ideal[i] : 0.0;
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(actual.size()) * sum_sq);
}

}  // namespace cebinae
