#include "metrics/flow_stats.hpp"

#include <algorithm>

namespace cebinae {

void FlowStatsCollector::register_flow(const FlowId& flow) {
  if (records_.find(flow) == records_.end()) {
    order_.push_back(flow);
    records_.emplace(flow, Record{});
  }
}

void FlowStatsCollector::on_delivery(const FlowId& flow, std::uint64_t bytes, Time now) {
  auto it = records_.find(flow);
  if (it == records_.end()) {
    order_.push_back(flow);
    it = records_.emplace(flow, Record{}).first;
  }
  Record& rec = it->second;
  rec.total += bytes;
  const auto bucket = static_cast<std::size_t>(now / bucket_width_);
  if (rec.buckets.size() <= bucket) rec.buckets.resize(bucket + 1, 0);
  rec.buckets[bucket] += bytes;
}

std::uint64_t FlowStatsCollector::total_bytes(const FlowId& flow) const {
  auto it = records_.find(flow);
  return it == records_.end() ? 0 : it->second.total;
}

double FlowStatsCollector::goodput_Bps(const FlowId& flow, Time from, Time to) const {
  if (to <= from) return 0.0;
  auto it = records_.find(flow);
  if (it == records_.end()) return 0.0;
  const auto& buckets = it->second.buckets;
  const auto first = static_cast<std::size_t>(from / bucket_width_);
  const auto last = static_cast<std::size_t>((to - Time(1)) / bucket_width_);
  std::uint64_t bytes = 0;
  for (std::size_t i = first; i <= last && i < buckets.size(); ++i) bytes += buckets[i];
  return static_cast<double>(bytes) / (to - from).seconds();
}

std::vector<double> FlowStatsCollector::goodputs_Bps(Time from, Time to) const {
  std::vector<double> out;
  out.reserve(order_.size());
  for (const FlowId& f : order_) out.push_back(goodput_Bps(f, from, to));
  return out;
}

std::vector<std::uint64_t> FlowStatsCollector::series(const FlowId& flow) const {
  auto it = records_.find(flow);
  return it == records_.end() ? std::vector<std::uint64_t>{} : it->second.buckets;
}

}  // namespace cebinae
