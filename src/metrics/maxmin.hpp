// Water-filling computation of the max-min fair allocation (the paper's
// §3.1), used as the "Ideal" reference in Fig. 11 and by the normalized JFI.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace cebinae {

struct MaxMinProblem {
  // capacity per link, in any consistent rate unit (e.g., bytes/second).
  std::vector<double> link_capacity;
  // For each flow, the indices of the links it traverses.
  std::vector<std::vector<std::size_t>> flow_links;
  // Optional per-flow demand cap; empty means infinite demand for all.
  std::vector<double> demand;
};

// Iterative water-filling: raise all unconstrained flows' rates uniformly
// until a link saturates (or a flow's demand is met); freeze the affected
// flows; repeat. Returns per-flow rates in the problem's flow order.
[[nodiscard]] std::vector<double> maxmin_rates(const MaxMinProblem& problem);

}  // namespace cebinae
