#include "metrics/maxmin.hpp"

#include <algorithm>
#include <cassert>

namespace cebinae {

std::vector<double> maxmin_rates(const MaxMinProblem& problem) {
  const std::size_t num_flows = problem.flow_links.size();
  const std::size_t num_links = problem.link_capacity.size();
  std::vector<double> rate(num_flows, 0.0);
  std::vector<bool> frozen(num_flows, false);
  std::vector<double> used(num_links, 0.0);

  constexpr double kEps = 1e-9;
  std::size_t active = num_flows;

  while (active > 0) {
    // Count active flows per link.
    std::vector<std::size_t> active_on_link(num_links, 0);
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      for (std::size_t l : problem.flow_links[f]) {
        assert(l < num_links);
        ++active_on_link[l];
      }
    }

    // Largest uniform increment every active flow can take.
    double inc = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_on_link[l] == 0) continue;
      inc = std::min(inc, (problem.link_capacity[l] - used[l]) /
                              static_cast<double>(active_on_link[l]));
    }
    if (!problem.demand.empty()) {
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (!frozen[f]) inc = std::min(inc, problem.demand[f] - rate[f]);
      }
    }
    if (inc == std::numeric_limits<double>::infinity()) {
      // Flows that traverse no links have unbounded rates; freeze them at 0
      // increments beyond demand (treat as satisfied).
      break;
    }
    inc = std::max(inc, 0.0);

    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      rate[f] += inc;
      for (std::size_t l : problem.flow_links[f]) used[l] += inc;
    }

    // Freeze flows on saturated links and flows whose demand is met.
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (frozen[f]) continue;
      bool freeze = false;
      for (std::size_t l : problem.flow_links[f]) {
        if (used[l] >= problem.link_capacity[l] - kEps) {
          freeze = true;
          break;
        }
      }
      if (!problem.demand.empty() && rate[f] >= problem.demand[f] - kEps) freeze = true;
      if (problem.flow_links[f].empty() && inc == 0.0) freeze = true;
      if (freeze) {
        frozen[f] = true;
        --active;
      }
    }

    if (inc <= kEps) {
      // No progress possible (all remaining links saturated): freeze rest.
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (!frozen[f]) {
          frozen[f] = true;
          --active;
        }
      }
    }
  }
  return rate;
}

}  // namespace cebinae
