#include "workload/bulk_app.hpp"

namespace cebinae {

BulkFlow::BulkFlow(Network& net, Node& src, Node& dst, const Spec& spec,
                   FlowStatsCollector* stats) {
  FlowId flow{src.id(), dst.id(), spec.port, spec.port};

  TcpSender::Config cfg;
  cfg.flow = flow;
  cfg.start_time = spec.start_time;
  cfg.stop_time = spec.stop_time;
  cfg.bytes_to_send = spec.bytes_to_send;
  cfg.ecn_capable = spec.ecn;
  cfg.metrics = &net.metrics();

  sender_ = std::make_unique<TcpSender>(net.scheduler(), src, make_cc(spec.cca), cfg);
  receiver_ = std::make_unique<TcpReceiver>(net.scheduler(), dst, flow);

  if (stats != nullptr) {
    stats->register_flow(flow);
    receiver_->set_delivery_callback(
        [stats](const FlowId& f, std::uint64_t bytes, Time now) {
          stats->on_delivery(f, bytes, now);
        });
  }
}

}  // namespace cebinae
