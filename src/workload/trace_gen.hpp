// Synthetic backbone-trace generator (substitution for the CAIDA traces of
// Fig. 13).
//
// Emits a time-ordered packet stream with the statistical properties that
// drive heavy-hitter detection accuracy on an ISP backbone link: Poisson
// flow arrivals at a configurable rate, heavy-tailed (bounded-Pareto)
// per-flow rates, exponential flow lifetimes, and bimodal packet sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace cebinae {

struct TracePacket {
  Time time;
  FlowId flow;
  std::uint32_t bytes = 0;
};

struct TraceConfig {
  Time duration = Seconds(5);
  double flow_arrivals_per_sec = 7000;  // ~420k flows/min, as in Fig. 13
  double mean_flow_lifetime_s = 0.5;
  double pareto_shape = 1.2;            // flow-rate heavy tail
  double min_flow_rate_bps = 20e3;
  double max_flow_rate_bps = 2e9;       // cap so one flow can't exceed the link
  std::uint64_t seed = 42;
};

struct TraceSummary {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t flows = 0;
};

class SyntheticTrace {
 public:
  // Generates the full stream, sorted by timestamp.
  [[nodiscard]] static std::vector<TracePacket> generate(const TraceConfig& config);

  [[nodiscard]] static TraceSummary summarize(const std::vector<TracePacket>& trace);
};

}  // namespace cebinae
