#include "workload/trace_gen.hpp"

#include <algorithm>
#include <unordered_set>

namespace cebinae {

std::vector<TracePacket> SyntheticTrace::generate(const TraceConfig& config) {
  RandomStream rng(config.seed);
  std::vector<TracePacket> trace;

  const double duration_s = config.duration.seconds();
  // Rough pre-reservation: arrivals x average packets per flow (guessed
  // small; vector growth handles the tail).
  trace.reserve(static_cast<std::size_t>(config.flow_arrivals_per_sec * duration_s * 8));

  double arrival_s = 0.0;
  std::uint32_t next_flow = 1;

  while (true) {
    arrival_s += rng.exponential(1.0 / config.flow_arrivals_per_sec);
    if (arrival_s >= duration_s) break;

    // One flow: CBR at a heavy-tailed rate for an exponential lifetime.
    const double rate_bps = std::min(
        rng.pareto(config.min_flow_rate_bps, config.pareto_shape), config.max_flow_rate_bps);
    const double lifetime_s =
        std::min(rng.exponential(config.mean_flow_lifetime_s), duration_s - arrival_s);

    FlowId flow;
    flow.src = next_flow;
    flow.dst = static_cast<NodeId>(rng.uniform_int(1, 1 << 24));
    flow.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
    flow.dst_port = static_cast<std::uint16_t>(rng.uniform_int(1, 1023));
    ++next_flow;

    // Bimodal packet sizes: mostly MTU for bulk flows, small for the rest.
    const std::uint32_t pkt_bytes =
        rate_bps > 1e6 ? kMtuBytes : static_cast<std::uint32_t>(rng.uniform_int(64, 600));

    const double pkt_interval_s = static_cast<double>(pkt_bytes) * 8.0 / rate_bps;
    double t = arrival_s;
    // Cap the per-flow packet count so one pathological draw cannot blow up
    // the trace size; the cap is far above any realistic interval content.
    const std::size_t max_pkts = 2'000'000;
    std::size_t count = 0;
    while (t < arrival_s + lifetime_s && count < max_pkts) {
      trace.push_back(TracePacket{SecondsF(t), flow, pkt_bytes});
      t += pkt_interval_s;
      ++count;
    }
  }

  std::sort(trace.begin(), trace.end(),
            [](const TracePacket& a, const TracePacket& b) { return a.time < b.time; });
  return trace;
}

TraceSummary SyntheticTrace::summarize(const std::vector<TracePacket>& trace) {
  TraceSummary s;
  std::unordered_set<FlowId, FlowIdHash> flows;
  for (const TracePacket& p : trace) {
    ++s.packets;
    s.bytes += p.bytes;
    flows.insert(p.flow);
  }
  s.flows = flows.size();
  return s;
}

}  // namespace cebinae
