#include "workload/udp_app.hpp"

#include <cassert>

namespace cebinae {

OnOffUdpSender::OnOffUdpSender(Scheduler& sched, Node& local, Spec spec)
    : sched_(sched), local_(local), spec_(spec) {
  assert(spec_.rate_bps > 0);
  interval_ = Time(static_cast<std::int64_t>(static_cast<double>(spec_.packet_bytes) * 8.0 *
                                             1e9 / spec_.rate_bps));
}

OnOffUdpSender::~OnOffUdpSender() {
  sched_.cancel(send_event_);
  sched_.cancel(toggle_event_);
}

void OnOffUdpSender::start() {
  sched_.schedule_at(spec_.start_time, [this] {
    on_ = true;
    send_one();
    if (spec_.on_duration != Time::max()) {
      toggle_event_ = sched_.schedule(spec_.on_duration, [this] { toggle(); });
    }
  });
}

void OnOffUdpSender::toggle() {
  on_ = !on_;
  const Time dwell = on_ ? spec_.on_duration : spec_.off_duration;
  if (on_) send_one();
  toggle_event_ = sched_.schedule(dwell, [this] { toggle(); });
}

void OnOffUdpSender::send_one() {
  if (!on_ || sched_.now() > spec_.stop_time) return;
  Packet pkt;
  pkt.flow = spec_.flow;
  pkt.kind = Packet::Kind::kUdp;
  pkt.size_bytes = spec_.packet_bytes;
  pkt.payload_bytes = spec_.packet_bytes - kHeaderBytes;
  pkt.ts_sent = sched_.now();
  ++packets_sent_;
  local_.send(std::move(pkt));
  send_event_ = sched_.schedule(interval_, [this] { send_one(); });
}

}  // namespace cebinae
