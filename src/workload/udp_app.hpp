// Constant-bit-rate / on-off UDP traffic sources and a counting sink.
//
// Used by unit tests to exercise queues with precisely controlled arrival
// patterns and by admission experiments as unresponsive background load.
#pragma once

#include <cstdint>
#include <limits>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

namespace cebinae {

class UdpSink final : public PacketSink {
 public:
  UdpSink(Node& local, std::uint16_t port) : local_(local), port_(port) {
    local_.bind(port_, *this);
  }
  ~UdpSink() override { local_.unbind(port_); }

  void deliver(const Packet& pkt) override {
    ++packets_;
    bytes_ += pkt.payload_bytes;
  }

  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  Node& local_;
  std::uint16_t port_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

class OnOffUdpSender {
 public:
  struct Spec {
    FlowId flow;
    double rate_bps = 1e6;          // sending rate while ON
    std::uint32_t packet_bytes = kMtuBytes;  // frame size
    Time on_duration = Time::max(); // CBR by default
    Time off_duration = Time::zero();
    Time start_time;
    Time stop_time = Time::max();
  };

  OnOffUdpSender(Scheduler& sched, Node& local, Spec spec);
  ~OnOffUdpSender();

  void start();

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void send_one();
  void toggle();

  Scheduler& sched_;
  Node& local_;
  Spec spec_;
  Time interval_;
  bool on_ = false;
  EventId send_event_;
  EventId toggle_event_;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace cebinae
