// Bulk-transfer TCP application: the paper's long-lived infinite-demand
// flow. Bundles a sender/receiver pair and wires goodput accounting.
#pragma once

#include <cstdint>
#include <memory>

#include "metrics/flow_stats.hpp"
#include "net/network.hpp"
#include "tcp/cc_factory.hpp"
#include "tcp/tcp_socket.hpp"

namespace cebinae {

class BulkFlow {
 public:
  struct Spec {
    CcaType cca = CcaType::kNewReno;
    Time start_time;
    Time stop_time = Time::max();
    std::uint64_t bytes_to_send = std::numeric_limits<std::uint64_t>::max();
    bool ecn = false;
    std::uint16_t port = 5000;
  };

  // Creates the endpoints on `src`/`dst` (which must already be routable)
  // and registers the flow with `stats` when provided. Call start() to arm.
  BulkFlow(Network& net, Node& src, Node& dst, const Spec& spec, FlowStatsCollector* stats);

  void start() { sender_->start(); }

  [[nodiscard]] const FlowId& id() const { return sender_->flow(); }
  [[nodiscard]] TcpSender& sender() { return *sender_; }
  [[nodiscard]] TcpReceiver& receiver() { return *receiver_; }

 private:
  std::unique_ptr<TcpSender> sender_;
  std::unique_ptr<TcpReceiver> receiver_;
};

}  // namespace cebinae
