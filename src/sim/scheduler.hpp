// Deterministic discrete-event scheduler.
//
// Events at the same timestamp fire in insertion order (FIFO tie-break via a
// monotonically increasing sequence number), which makes every simulation
// exactly reproducible for a given seed and schedule. The `--jobs=N` merge
// determinism of the experiment harness depends on this promise.
//
// Hot-path design (see DESIGN.md §12):
//   - Callbacks are InlineFunction<kEventInlineBytes>: captures up to 48
//     bytes live inside the event slot, so scheduling costs no allocation
//     once the slot/heap vectors reach their high-water marks.
//   - The ready queue is a 4-ary heap of 24-byte POD entries (when, seq,
//     slot); sift operations never move callbacks, only entries.
//   - Callbacks live in a slot table recycled through a free list. An
//     EventId names (slot, generation), so cancel() is one bounds check,
//     one generation compare, and a flag write — O(1), no tombstone set,
//     and ids that already fired (or were double-cancelled) are harmless
//     no-ops even after the slot has been reused.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"

namespace cebinae {

// Inline capture budget for scheduled callbacks. Large enough for every
// simulator event (the biggest, packet propagation, captures a device
// pointer plus a pooled-packet handle); a larger capture falls back to one
// heap allocation rather than failing, so this is a perf knob, not a limit.
inline constexpr std::size_t kEventInlineBytes = 48;

// Handle used to cancel a pending event. Cancellation is O(1): the handle
// names a slot and the generation the slot had when the event was
// scheduled, so stale handles (event already fired, slot reused) are
// detected exactly and ignored.
class EventId {
 public:
  EventId() = default;

  [[nodiscard]] bool valid() const { return slot_plus1_ != 0; }

 private:
  friend class Scheduler;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_plus1_(slot + 1), gen_(gen) {}
  std::uint32_t slot_plus1_ = 0;  // slot index + 1; 0 = default/invalid
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  using Callback = InlineFunction<kEventInlineBytes>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `cb` to run `delay` after the current time. `delay` must be
  // non-negative; a zero delay runs after all already-scheduled events at the
  // current timestamp.
  EventId schedule(Time delay, Callback cb);

  // Schedule at an absolute simulation time (>= now()).
  EventId schedule_at(Time when, Callback cb);

  // Cancel a pending event; a default-constructed, already-fired, or
  // already-cancelled id is a harmless no-op.
  void cancel(EventId id);

  // Run until the event queue is empty.
  void run();

  // Run events with timestamp <= `until`; afterwards now() == until.
  void run_until(Time until);

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  // 4-ary heap entry ordered by (when, seq); callbacks stay in slots_ so
  // sifting moves 24 bytes, not captured state.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.seq < b.seq;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_entry(Entry e);
  void pop_root();
  bool pop_one(Time limit);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace cebinae
