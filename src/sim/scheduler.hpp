// Deterministic discrete-event scheduler.
//
// Events at the same timestamp fire in insertion order (FIFO tie-break via a
// monotonically increasing sequence number), which makes every simulation
// exactly reproducible for a given seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace cebinae {

// Handle used to cancel a pending event. Cancellation is lazy: the event
// record stays in the heap but is skipped when popped.
class EventId {
 public:
  EventId() = default;

  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class Scheduler;
  explicit EventId(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `cb` to run `delay` after the current time. `delay` must be
  // non-negative; a zero delay runs after all already-scheduled events at the
  // current timestamp.
  EventId schedule(Time delay, Callback cb);

  // Schedule at an absolute simulation time (>= now()).
  EventId schedule_at(Time when, Callback cb);

  // Cancel a pending event; a default-constructed or already-fired id is a
  // harmless no-op.
  void cancel(EventId id);

  // Run until the event queue is empty.
  void run();

  // Run events with timestamp <= `until`; afterwards now() == until.
  void run_until(Time until);

  [[nodiscard]] std::size_t pending_events() const { return heap_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Record {
    Time when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Record& a, const Record& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Time limit);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Record, std::vector<Record>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace cebinae
