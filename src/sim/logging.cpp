#include "sim/logging.hpp"

namespace cebinae {
namespace {
LogLevel g_level = LogLevel::kOff;

constexpr std::string_view name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::set_level(LogLevel level) { g_level = level; }

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  std::clog << '[' << name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace cebinae
