#include "sim/logging.hpp"

#include <mutex>

namespace cebinae {
namespace {
// Serializes whole log lines when scenarios run in parallel worker threads.
std::mutex g_log_mutex;

constexpr std::string_view name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

std::atomic<LogLevel> Logger::g_level{LogLevel::kOff};

void Logger::log(LogLevel level, std::string_view component, std::string_view message) {
  std::ostringstream line;
  line << '[' << name(level) << "] " << component << ": " << message << '\n';
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::clog << line.str();
}

}  // namespace cebinae
