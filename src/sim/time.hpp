// Strong nanosecond time type for the discrete-event simulator.
//
// All simulation timestamps and durations are integral nanoseconds, which
// keeps event ordering exact (no floating-point drift) and matches the
// clock-precision granularity that Cebinae's virtual rounds (vdT) assume.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace cebinae {

class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t nanos) : ns_(nanos) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) * 1e-6; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns_) * 1e-3; }

  [[nodiscard]] static constexpr Time zero() { return Time(0); }
  [[nodiscard]] static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ns_ + b.ns_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ns_ - b.ns_); }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time(a.ns_ * k); }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time(a.ns_ * k); }
  friend constexpr std::int64_t operator/(Time a, Time b) { return a.ns_ / b.ns_; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time(a.ns_ / k); }
  friend constexpr Time operator%(Time a, Time b) { return Time(a.ns_ % b.ns_); }

 private:
  std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr Time Nanoseconds(std::int64_t v) { return Time(v); }
[[nodiscard]] constexpr Time Microseconds(std::int64_t v) { return Time(v * 1'000); }
[[nodiscard]] constexpr Time Milliseconds(std::int64_t v) { return Time(v * 1'000'000); }
[[nodiscard]] constexpr Time Seconds(std::int64_t v) { return Time(v * 1'000'000'000); }

// Fractional constructors used by configuration code (not hot paths).
[[nodiscard]] constexpr Time SecondsF(double v) {
  return Time(static_cast<std::int64_t>(v * 1e9));
}
[[nodiscard]] constexpr Time MillisecondsF(double v) {
  return Time(static_cast<std::int64_t>(v * 1e6));
}

inline std::ostream& operator<<(std::ostream& os, Time t) { return os << t.ns() << "ns"; }

}  // namespace cebinae
