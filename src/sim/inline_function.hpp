// Small-buffer-optimized move-only callable, the scheduler's event type.
//
// std::function heap-allocates any capture larger than ~2 pointers, which
// put one malloc/free pair on every scheduled event whose lambda carries
// real state (the packet-propagation event being the hot offender). An
// InlineFunction stores captures up to `Capacity` bytes inside the object
// itself; only captures that are larger (or throwing-move) fall back to the
// heap, and no hot-path event in the simulator does.
//
// Differences from std::function, on purpose:
//   - move-only (events are scheduled once and fired once; copyability is
//     what forces std::function to heap-allocate conservatively),
//   - no allocator/target-type machinery: one vtable pointer, three ops.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cebinae {

template <std::size_t Capacity>
class InlineFunction {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFunction>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::remove_cvref_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>);
    if constexpr (fits_inline<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = &inline_vtable<Fn>;
    } else {
      // Heap fallback: the buffer holds a single owning pointer.
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &heap_vtable<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(buf_, other.buf_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(buf_); }

  // True when callables of type F avoid the heap fallback (used by tests to
  // pin down the scheduler's allocation budget).
  template <typename F>
  static constexpr bool stores_inline() {
    return fits_inline<std::remove_cvref_t<F>>;
  }

 private:
  template <typename Fn>
  static constexpr bool fits_inline = sizeof(Fn) <= Capacity &&
                                      alignof(Fn) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<Fn>;

  struct VTable {
    void (*invoke)(void* buf);
    // Move-construct into `dst` from `src`, then destroy `src`'s object.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* buf) noexcept;
  };

  template <typename Fn>
  static constexpr VTable inline_vtable = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) noexcept { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTable heap_vtable = {
      [](void* buf) { (**std::launder(reinterpret_cast<Fn**>(buf)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* buf) noexcept { delete *std::launder(reinterpret_cast<Fn**>(buf)); },
  };

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace cebinae
