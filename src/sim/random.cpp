#include "sim/random.hpp"

#include <functional>

namespace cebinae {

RandomStream RandomStream::derive(std::string_view tag) const {
  // Combine the parent seed with the tag hash; the splitmix-style constant
  // decorrelates children whose tags share a prefix.
  const std::uint64_t h = std::hash<std::string_view>{}(tag);
  return RandomStream(seed_ ^ (h + 0x9e3779b97f4a7c15ULL + (seed_ << 6) + (seed_ >> 2)));
}

double RandomStream::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::uint64_t RandomStream::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double RandomStream::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double RandomStream::pareto(double xm, double alpha) {
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  // Inverse-CDF sampling; guard against u == 0 which would yield infinity.
  return xm / std::pow(std::max(u, 1e-12), 1.0 / alpha);
}

double RandomStream::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

bool RandomStream::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

}  // namespace cebinae
