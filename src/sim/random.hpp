// Seeded random streams for deterministic simulations.
//
// Each consumer derives an independent stream from the run's master seed so
// that adding a new random consumer does not perturb existing ones.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace cebinae {

class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  // Derive a child stream whose sequence is independent of this stream's
  // future draws (the tag is hashed into the child's seed).
  [[nodiscard]] RandomStream derive(std::string_view tag) const;

  [[nodiscard]] double uniform(double lo, double hi);
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);  // inclusive
  [[nodiscard]] double exponential(double mean);
  // Bounded Pareto with shape `alpha` and scale `xm` (minimum value).
  [[nodiscard]] double pareto(double xm, double alpha);
  [[nodiscard]] double normal(double mean, double stddev);
  [[nodiscard]] bool bernoulli(double p);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace cebinae
