#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace cebinae {

namespace {
// 4-ary layout: children of i are 4i+1 .. 4i+4. Shallower than a binary
// heap (fewer comparison levels per pop) and sift moves stay within one or
// two cache lines of 24-byte entries.
constexpr std::size_t kArity = 4;
}  // namespace

EventId Scheduler::schedule(Time delay, Callback cb) {
  assert(delay >= Time::zero() && "events cannot be scheduled in the past");
  return schedule_at(now_ + delay, std::move(cb));
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  s.cancelled = false;
  // The generation bump is what invalidates every outstanding EventId that
  // still names this slot.
  ++s.gen;
  free_slots_.push_back(slot);
}

void Scheduler::push_entry(Entry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Scheduler::pop_root() {
  const std::size_t n = heap_.size() - 1;
  heap_[0] = heap_[n];
  heap_.pop_back();
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, n);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

EventId Scheduler::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "events cannot be scheduled in the past");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].cb = std::move(cb);
  push_entry(Entry{when, seq, slot});
  ++live_;
  return EventId(slot, slots_[slot].gen);
}

void Scheduler::cancel(EventId id) {
  if (!id.valid()) return;
  const std::uint32_t slot = id.slot_plus1_ - 1;
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  // Generation mismatch = the event already fired (or was cancelled) and
  // the slot moved on; this exactness is what makes stale cancels safe.
  if (s.gen != id.gen_ || s.cancelled) return;
  s.cancelled = true;
  s.cb.reset();  // release captured state (e.g. pooled packets) eagerly
  --live_;
}

bool Scheduler::pop_one(Time limit) {
  while (!heap_.empty()) {
    const Entry top = heap_[0];
    if (top.when > limit) return false;
    pop_root();
    if (slots_[top.slot].cancelled) {
      release_slot(top.slot);
      continue;
    }
    // Move the callback out and retire the slot before invoking, so a
    // re-entrant schedule() may reuse it and a self-cancel from inside the
    // callback sees a bumped generation (harmless no-op).
    Callback cb = std::move(slots_[top.slot].cb);
    release_slot(top.slot);
    now_ = top.when;
    ++executed_;
    --live_;
    cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (pop_one(Time::max())) {
  }
}

void Scheduler::run_until(Time until) {
  while (pop_one(until)) {
  }
  if (now_ < until) now_ = until;
}

}  // namespace cebinae
