#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace cebinae {

EventId Scheduler::schedule(Time delay, Callback cb) {
  assert(delay >= Time::zero() && "events cannot be scheduled in the past");
  return schedule_at(now_ + delay, std::move(cb));
}

EventId Scheduler::schedule_at(Time when, Callback cb) {
  assert(when >= now_ && "events cannot be scheduled in the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Record{when, seq, std::move(cb)});
  return EventId(seq);
}

void Scheduler::cancel(EventId id) {
  if (id.valid()) cancelled_.insert(id.seq_);
}

bool Scheduler::pop_one(Time limit) {
  while (!heap_.empty()) {
    const Record& top = heap_.top();
    if (top.when > limit) return false;
    if (auto it = cancelled_.find(top.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    // Move the callback out before popping so re-entrant schedule() calls
    // cannot invalidate the reference mid-execution.
    Record rec{top.when, top.seq, std::move(const_cast<Record&>(top).cb)};
    heap_.pop();
    now_ = rec.when;
    ++executed_;
    rec.cb();
    return true;
  }
  return false;
}

void Scheduler::run() {
  while (pop_one(Time::max())) {
  }
}

void Scheduler::run_until(Time until) {
  while (pop_one(until)) {
  }
  if (now_ < until) now_ = until;
}

}  // namespace cebinae
