// Minimal leveled logger for the simulator.
//
// Logging is off by default (benches and tests stay quiet); examples enable
// it to narrate what the network is doing.
//
// Thread-safety contract (relied on by the src/exp experiment harness):
// the simulator itself is single-threaded, but the harness runs one
// independent Scenario per worker thread. Everything a Scenario touches is
// owned by its Network (scheduler, RNG, nodes); the ONLY process-global
// mutable state in the simulator is this logger's level. The level is
// therefore an atomic (set_level/level may race benignly with readers), and
// log() serializes whole lines under an internal mutex so concurrent
// scenarios cannot interleave output. Running one Scenario per thread is
// safe; sharing a Scenario/Network across threads is not.
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string_view>

namespace cebinae {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level() { return g_level.load(std::memory_order_relaxed); }
  static void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
  static void log(LogLevel level, std::string_view component, std::string_view message);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }

 private:
  static std::atomic<LogLevel> g_level;
};

}  // namespace cebinae

// Compile-time log floor: levels below CEBINAE_MIN_LOG_LEVEL are discarded by
// `if constexpr`, so the stream expression is never materialized and the call
// site compiles to nothing. The default (0 = kDebug) keeps every level; build
// with -DCEBINAE_MIN_LOG_LEVEL=2 (see the CMake cache variable of the same
// name) to strip debug/info sites from hot-path builds entirely. Levels at or
// above the floor still pay exactly one relaxed atomic load and a predicted
// branch when disabled at runtime — [[unlikely]] keeps the formatting code off
// the fall-through path.
#ifndef CEBINAE_MIN_LOG_LEVEL
#define CEBINAE_MIN_LOG_LEVEL 0
#endif

#define CEBINAE_LOG(lvl, component, expr)                                  \
  do {                                                                     \
    if constexpr (static_cast<int>(lvl) >= CEBINAE_MIN_LOG_LEVEL) {        \
      if (::cebinae::Logger::enabled(lvl)) [[unlikely]] {                  \
        std::ostringstream cebinae_log_oss_;                               \
        cebinae_log_oss_ << expr;                                          \
        ::cebinae::Logger::log(lvl, component, cebinae_log_oss_.str());    \
      }                                                                    \
    }                                                                      \
  } while (0)

#define CEBINAE_DEBUG(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kDebug, component, expr)
#define CEBINAE_INFO(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kInfo, component, expr)
#define CEBINAE_WARN(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kWarn, component, expr)
