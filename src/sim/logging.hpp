// Minimal leveled logger for the simulator.
//
// Logging is off by default (benches and tests stay quiet); examples enable
// it to narrate what the network is doing. Not thread-safe by design: the
// simulator is single-threaded.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace cebinae {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void log(LogLevel level, std::string_view component, std::string_view message);

  static bool enabled(LogLevel lvl) { return lvl >= level(); }
};

}  // namespace cebinae

#define CEBINAE_LOG(lvl, component, expr)                        \
  do {                                                           \
    if (::cebinae::Logger::enabled(lvl)) {                       \
      std::ostringstream cebinae_log_oss_;                       \
      cebinae_log_oss_ << expr;                                  \
      ::cebinae::Logger::log(lvl, component, cebinae_log_oss_.str()); \
    }                                                            \
  } while (0)

#define CEBINAE_DEBUG(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kDebug, component, expr)
#define CEBINAE_INFO(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kInfo, component, expr)
#define CEBINAE_WARN(component, expr) CEBINAE_LOG(::cebinae::LogLevel::kWarn, component, expr)
