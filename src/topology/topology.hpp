// Topology builders for the paper's evaluation scenarios.
//
// Both the dumbbell (single bottleneck) and the 'Parking Lot' of Fig. 11 are
// instances of a switch chain: N+1 switches joined by N bottleneck links,
// with sender/receiver host pairs attached at arbitrary entry/exit switches.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "queueing/queue_disc.hpp"

namespace cebinae {

struct ChainTopology {
  std::vector<Node*> switches;      // size = links + 1
  std::vector<Device*> bottlenecks; // device of switches[i] toward switches[i+1]
  Time link_delay;
};

// Builds the switch chain. `qdisc_factory(i)` supplies the egress queue disc
// for bottleneck link i (the forward direction); reverse directions get
// unlimited FIFOs (ACK paths are uncongested in all scenarios).
[[nodiscard]] ChainTopology build_chain(
    Network& net, int links, std::uint64_t rate_bps, Time link_delay,
    const std::function<std::unique_ptr<QueueDisc>(int link)>& qdisc_factory);

struct HostPair {
  Node* src = nullptr;
  Node* dst = nullptr;
};

// Attaches a host pair whose traffic enters the chain at switches[enter] and
// leaves at switches[exit] (exit > enter). Access-link delays control the
// flow's RTT.
[[nodiscard]] HostPair attach_hosts(Network& net, ChainTopology& topo, int enter, int exit,
                                    std::uint64_t access_rate_bps, Time src_access_delay,
                                    Time dst_access_delay);

// The two-way propagation delay of a path built by attach_hosts.
[[nodiscard]] Time chain_path_rtt(const ChainTopology& topo, int enter, int exit,
                                  Time src_access_delay, Time dst_access_delay);

}  // namespace cebinae
