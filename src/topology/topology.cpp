#include "topology/topology.hpp"

#include <cassert>

#include "queueing/fifo_queue.hpp"

namespace cebinae {

ChainTopology build_chain(
    Network& net, int links, std::uint64_t rate_bps, Time link_delay,
    const std::function<std::unique_ptr<QueueDisc>(int link)>& qdisc_factory) {
  assert(links >= 1);
  ChainTopology topo;
  topo.link_delay = link_delay;
  for (int i = 0; i <= links; ++i) topo.switches.push_back(&net.add_node());
  for (int i = 0; i < links; ++i) {
    auto devices = net.link(*topo.switches[i], *topo.switches[i + 1], rate_bps, link_delay,
                            qdisc_factory(i), /*q_ba=*/nullptr);
    topo.bottlenecks.push_back(&devices.ab);
  }
  return topo;
}

HostPair attach_hosts(Network& net, ChainTopology& topo, int enter, int exit,
                      std::uint64_t access_rate_bps, Time src_access_delay,
                      Time dst_access_delay) {
  assert(enter >= 0 && exit > enter &&
         exit < static_cast<int>(topo.switches.size()));
  HostPair pair;
  pair.src = &net.add_node();
  pair.dst = &net.add_node();
  net.link(*pair.src, *topo.switches[enter], access_rate_bps, src_access_delay,
           /*q_ab=*/nullptr, /*q_ba=*/nullptr);
  net.link(*topo.switches[exit], *pair.dst, access_rate_bps, dst_access_delay,
           /*q_ab=*/nullptr, /*q_ba=*/nullptr);
  return pair;
}

Time chain_path_rtt(const ChainTopology& topo, int enter, int exit, Time src_access_delay,
                    Time dst_access_delay) {
  const int hops = exit - enter;
  return 2 * (src_access_delay + hops * topo.link_delay + dst_access_delay);
}

}  // namespace cebinae
