#include "control/packet_generator.hpp"

namespace cebinae {

void PacketGenerator::start(Time first_delay) {
  if (running_) return;
  running_ = true;
  pending_ = sched_.schedule(first_delay, [this] { fire(); });
}

void PacketGenerator::stop() {
  if (!running_) return;
  running_ = false;
  sched_.cancel(pending_);
  pending_ = EventId();
}

void PacketGenerator::fire() {
  if (!running_) return;
  ++fired_;
  // Schedule the next tick before running the callback so a slow callback
  // cannot skew the period (the hardware generator never drifts).
  pending_ = sched_.schedule(period_, [this] { fire(); });
  on_fire_();
}

}  // namespace cebinae
