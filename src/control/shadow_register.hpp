// Mantis-style shadow register array (Yu et al. 2020).
//
// The paper's control plane reads data-plane registers through shadow copies
// so that a multi-register poll observes a consistent snapshot even while the
// data plane keeps writing (two-phase reads), and stages writes that commit
// atomically (two-phase writes). The simulator is single-threaded, so the
// value here is behavioral fidelity: the agent acts on the snapshot taken at
// poll time, not on values that changed while it "computed".
#pragma once

#include <cstddef>
#include <vector>

namespace cebinae {

template <typename T>
class ShadowRegisterArray {
 public:
  explicit ShadowRegisterArray(std::size_t size) : live_(size), shadow_(size) {}

  // Data-plane access (hot path).
  T& at(std::size_t i) { return live_[i]; }
  const T& at(std::size_t i) const { return live_[i]; }
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  // Control-plane phase 1: capture a consistent snapshot of all registers.
  void snapshot() { shadow_ = live_; }

  // Control-plane reads against the snapshot.
  [[nodiscard]] const T& shadow_at(std::size_t i) const { return shadow_[i]; }
  [[nodiscard]] const std::vector<T>& shadow() const { return shadow_; }

  // Control-plane phase 2: stage writes, then commit them all at once.
  void stage_write(std::size_t i, T value) { staged_.emplace_back(i, std::move(value)); }
  void commit() {
    for (auto& [i, v] : staged_) live_[i] = std::move(v);
    staged_.clear();
  }
  void abort() { staged_.clear(); }
  [[nodiscard]] std::size_t staged_count() const { return staged_.size(); }

 private:
  std::vector<T> live_;
  std::vector<T> shadow_;
  std::vector<std::pair<std::size_t, T>> staged_;
};

}  // namespace cebinae
