// Model of the hardware packet generator found on programmable switches.
//
// Tofino's packet generator emits precisely timed packets; Cebinae uses it
// to trigger ROTATE events every dT (paper §4.3, "strict-real-time queue
// rotation"). In the simulator this is a precise periodic event source.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"

namespace cebinae {

class PacketGenerator {
 public:
  PacketGenerator(Scheduler& sched, Time period, std::function<void()> on_fire)
      : sched_(sched), period_(period), on_fire_(std::move(on_fire)) {}

  ~PacketGenerator() { stop(); }
  PacketGenerator(const PacketGenerator&) = delete;
  PacketGenerator& operator=(const PacketGenerator&) = delete;

  // Begin firing, first at now + first_delay, then every `period`.
  void start(Time first_delay);
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] Time period() const { return period_; }

 private:
  void fire();

  Scheduler& sched_;
  Time period_;
  std::function<void()> on_fire_;
  EventId pending_;
  bool running_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace cebinae
